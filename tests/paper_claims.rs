//! The paper's headline experimental claims, asserted as tests on the
//! (scaled-down) evaluation suite. These are the *shape* claims of Sec. 6;
//! absolute numbers live in EXPERIMENTS.md.

use natix_bench::{natix_core, natix_datagen, natix_store, natix_tree, natix_xpath};
use natix_core::{Bfs, Dfs, Dhw, Ekm, Ghdw, Km, Lukes, Partitioner, Rs};
use natix_datagen::GenConfig;
use natix_store::{MemPager, StoreConfig, XmlStore};
use natix_tree::{validate, Tree};
use natix_xpath::{eval_query, xpathmark, StoreNavigator};

const K: u64 = 256;

fn cardinality_at(alg: &dyn Partitioner, tree: &Tree, k: u64) -> usize {
    let p = alg.partition(tree, k).unwrap();
    validate(tree, k, &p).unwrap().cardinality
}

fn cardinality(alg: &dyn Partitioner, tree: &Tree) -> usize {
    cardinality_at(alg, tree, K)
}

/// Claim (abstract/Sec. 6.2): "compared to partitioning that exclusively
/// considers parent-child partitions, including sibling partitioning as
/// well can decrease the total number of partitions by more than 90%" —
/// measured on the relational documents.
#[test]
fn sibling_partitioning_beats_km_by_90_percent_on_relational_data() {
    for gen in [natix_datagen::partsupp, natix_datagen::orders] {
        let doc = gen(GenConfig {
            scale: 0.05,
            seed: 1,
        });
        let tree = doc.tree();
        let km = cardinality(&Km, tree);
        let dhw = cardinality(&Dhw, tree);
        assert!(
            (dhw as f64) < 0.15 * km as f64,
            "sibling optimum {dhw} should be <15% of KM {km}"
        );
    }
}

/// Claim (Sec. 6.2): GHDW is within a few percent of the optimum; "the
/// difference between GHDW and the optimal result ... is always below 4%".
#[test]
fn ghdw_is_within_4_percent_of_optimal() {
    for (name, doc) in natix_datagen::evaluation_suite(0.02, 2) {
        let tree = doc.tree();
        let dhw = cardinality(&Dhw, tree);
        let ghdw = cardinality(&Ghdw, tree);
        assert!(
            ghdw as f64 <= dhw as f64 * 1.04 + 1.0,
            "{name}: GHDW {ghdw} vs optimal {dhw}"
        );
    }
}

/// Claim (Sec. 6.2): EKM is near-optimal — "always the third-best
/// algorithm" or better, far ahead of KM/DFS/BFS.
#[test]
fn ekm_is_near_optimal_and_beats_the_naive_heuristics() {
    for (name, doc) in natix_datagen::evaluation_suite(0.02, 3) {
        let tree = doc.tree();
        let dhw = cardinality(&Dhw, tree);
        let ekm = cardinality(&Ekm, tree);
        let km = cardinality(&Km, tree);
        let bfs = cardinality(&Bfs, tree);
        assert!(
            (ekm as f64) <= dhw as f64 * 1.10 + 2.0,
            "{name}: EKM {ekm} vs optimal {dhw}"
        );
        assert!(ekm < km, "{name}: EKM {ekm} vs KM {km}");
        assert!(ekm < bfs, "{name}: EKM {ekm} vs BFS {bfs}");
    }
}

/// Claim (Sec. 6.2, Table 1): DFS and BFS "perform sometimes even worse
/// than KM" and are "not very robust" — on the relational documents both
/// lose badly to every sibling partitioner.
#[test]
fn top_down_heuristics_are_not_robust() {
    let doc = natix_datagen::partsupp(GenConfig {
        scale: 0.05,
        seed: 4,
    });
    let tree = doc.tree();
    let rs = cardinality(&Rs, tree);
    let dfs = cardinality(&Dfs, tree);
    let bfs = cardinality(&Bfs, tree);
    assert!(dfs > rs, "DFS {dfs} should lose to RS {rs} on partsupp");
    assert!(bfs > rs, "BFS {bfs} should lose to RS {rs} on partsupp");
}

/// Claim (Sec. 6.4, Table 3): the EKM layout produces fewer records, at a
/// slightly larger disk footprint, and crosses fewer storage-unit borders
/// on sibling-heavy navigation.
#[test]
fn ekm_layout_beats_km_layout_on_navigation() {
    let doc = natix_datagen::xmark(GenConfig {
        scale: 0.02,
        seed: 5,
    });
    let load = |alg: &dyn Partitioner| -> XmlStore {
        let p = alg.partition(doc.tree(), K).unwrap();
        XmlStore::bulkload(&doc, &p, Box::new(MemPager::new()), StoreConfig::default()).unwrap()
    };
    let mut km = load(&Km);
    let mut ekm = load(&Ekm);
    // Paper Table 1 at full scale: KM has ~2.8x the records of EKM; our
    // scaled-down generated documents land around 1.5x.
    assert!(ekm.record_count() < km.record_count());

    for (qname, q) in xpathmark::all() {
        km.reset_nav_stats();
        ekm.reset_nav_stats();
        let km_hits = {
            let mut nav = StoreNavigator::new(&mut km);
            eval_query(&mut nav, q).unwrap().len()
        };
        let ekm_hits = {
            let mut nav = StoreNavigator::new(&mut ekm);
            eval_query(&mut nav, q).unwrap().len()
        };
        assert_eq!(km_hits, ekm_hits, "{qname}");
        assert!(
            ekm.nav_stats().record_switches <= km.nav_stats().record_switches,
            "{qname}: EKM crossed {} > KM {}",
            ekm.nav_stats().record_switches,
            km.nav_stats().record_switches
        );
    }
}

/// The Fig. 1/Fig. 2 motivating example: a parent whose children cannot
/// share its storage unit. Parent-child partitioning needs one unit per
/// child; sibling partitioning packs consecutive children together.
#[test]
fn fig1_fig2_motivation() {
    let spec = "p:6(c1:2 c2:2(c21:1 c22:1 c23:1) c3:2 c4:2(c41:1 c42:1) c5:2(c51:1 c52:1))";
    let tree = natix_tree::parse_spec(spec).unwrap();
    let k = 7;
    // KM: every child subtree becomes its own partition (6 partitions: the
    // root plus five children).
    let km = cardinality_at(&Km, &tree, k);
    // Sibling partitioning merges adjacent child subtrees.
    let dhw = cardinality_at(&Dhw, &tree, k);
    assert!(dhw < km, "sibling {dhw} vs parent-child {km}");
    assert_eq!(km, 6);
    assert_eq!(dhw, 4); // root + three sibling groups (paper Fig. 2 shows 1+3)
}

/// Claim (Sec. 6.2, Table 2): DHW computes the optimum — its partition
/// count is the minimum over every algorithm on every evaluation
/// document at every K — and the two parent-child optima (KM and the
/// adapted Lukes algorithm) coincide exactly.
#[test]
fn table2_dhw_partition_counts_are_the_minimum_everywhere() {
    for k in [128u64, 256] {
        for (name, doc) in natix_datagen::evaluation_suite(0.02, 7) {
            let tree = doc.tree();
            let dhw = cardinality_at(&Dhw, tree, k);
            for alg in [
                &Ghdw as &dyn Partitioner,
                &Ekm,
                &Km,
                &Rs,
                &Dfs,
                &Bfs,
                &Lukes,
            ] {
                let c = cardinality_at(alg, tree, k);
                assert!(
                    dhw <= c,
                    "{name} K={k}: optimal DHW {dhw} beaten by {} {c}",
                    alg.name()
                );
            }
            let km = cardinality_at(&Km, tree, k);
            let lukes = cardinality_at(&Lukes, tree, k);
            assert_eq!(km, lukes, "{name} K={k}: parent-child optima disagree");
        }
    }
}

/// Claim (Sec. 6.4, Table 3): on every evaluation document the EKM
/// layout stores the tree in fewer records than the KM layout, the
/// optimal DHW layout needs at most EKM's record count, and EKM pays at
/// most a slightly larger disk footprint (the paper reports "a slightly
/// higher disk memory usage" for the sibling layouts).
#[test]
fn table3_ekm_layout_uses_fewer_records_at_similar_footprint() {
    for (name, doc) in natix_datagen::evaluation_suite(0.02, 7) {
        let load = |alg: &dyn Partitioner| -> XmlStore {
            let p = alg.partition(doc.tree(), K).unwrap();
            XmlStore::bulkload(&doc, &p, Box::new(MemPager::new()), StoreConfig::default()).unwrap()
        };
        let km = load(&Km);
        let ekm = load(&Ekm);
        let dhw = load(&Dhw);
        assert!(
            ekm.record_count() < km.record_count(),
            "{name}: EKM {} records vs KM {}",
            ekm.record_count(),
            km.record_count()
        );
        assert!(
            dhw.record_count() <= ekm.record_count(),
            "{name}: optimal {} records vs EKM {}",
            dhw.record_count(),
            ekm.record_count()
        );
        assert!(
            ekm.occupied_bytes() >= km.occupied_bytes(),
            "{name}: EKM footprint {} below KM {} — Table 3 trades bytes for records",
            ekm.occupied_bytes(),
            km.occupied_bytes()
        );
        assert!(
            ekm.occupied_bytes() as f64 <= km.occupied_bytes() as f64 * 1.25,
            "{name}: EKM footprint {} not 'slightly' larger than KM {}",
            ekm.occupied_bytes(),
            km.occupied_bytes()
        );
    }
}
