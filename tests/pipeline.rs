//! Cross-crate integration tests: the full pipeline
//! generate → weight → partition → validate → bulkload → query,
//! exercised for every partitioning algorithm.

use natix_bench::{natix_core, natix_datagen, natix_store, natix_xml, natix_xpath};
use natix_core::{evaluation_algorithms, Dhw, Ekm, Partitioner};
use natix_datagen::GenConfig;
use natix_store::{MemPager, StoreConfig, XmlStore};
use natix_tree::validate;
use natix_xpath::{eval_query, xpathmark, MemNavigator, StoreNavigator};

use natix_bench::natix_tree;

const K: u64 = 256;

#[test]
fn full_pipeline_all_algorithms() {
    let doc = natix_datagen::xmark(GenConfig {
        scale: 0.005,
        seed: 77,
    });
    // Oracle counts from the in-memory evaluator.
    let expected: Vec<usize> = xpathmark::all()
        .iter()
        .map(|&(_, q)| {
            let mut nav = MemNavigator::new(&doc);
            eval_query(&mut nav, q).unwrap().len()
        })
        .collect();

    for alg in evaluation_algorithms() {
        let p = alg.partition(doc.tree(), K).unwrap();
        let stats = validate(doc.tree(), K, &p).unwrap();
        assert!(stats.cardinality >= 1);
        let mut store =
            XmlStore::bulkload(&doc, &p, Box::new(MemPager::new()), StoreConfig::default())
                .unwrap();
        assert_eq!(store.record_count(), stats.cardinality);
        for ((qname, q), want) in xpathmark::all().iter().zip(&expected) {
            let got = {
                let mut nav = StoreNavigator::new(&mut store);
                eval_query(&mut nav, q).unwrap().len()
            };
            assert_eq!(got, *want, "{} on {qname}", alg.name());
        }
    }
}

#[test]
fn xml_roundtrip_through_every_layer() {
    // Document -> XML text -> parse -> partition -> store -> document.
    let doc = natix_datagen::sigmod(GenConfig {
        scale: 0.01,
        seed: 78,
    });
    let xml = doc.to_xml();
    let reparsed = natix_xml::parse(&xml).expect("self-produced XML parses");
    assert_eq!(reparsed.len(), doc.len());
    assert_eq!(reparsed.total_weight(), doc.total_weight());

    let p = Ekm.partition(reparsed.tree(), K).unwrap();
    let mut store = XmlStore::bulkload(
        &reparsed,
        &p,
        Box::new(MemPager::new()),
        StoreConfig::default(),
    )
    .unwrap();
    let back = store.to_document().unwrap();
    assert_eq!(back.to_xml(), xml);
}

#[test]
fn every_document_generator_partitions_feasibly() {
    for (name, doc) in natix_datagen::evaluation_suite(0.003, 79) {
        for alg in evaluation_algorithms() {
            let p = alg
                .partition(doc.tree(), K)
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
            validate(doc.tree(), K, &p).unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
        }
    }
}

#[test]
fn dhw_is_optimal_on_generated_documents() {
    // DHW must never be beaten by any heuristic on real document shapes.
    for (name, doc) in natix_datagen::evaluation_suite(0.002, 80) {
        let opt = validate(doc.tree(), K, &Dhw.partition(doc.tree(), K).unwrap())
            .unwrap()
            .cardinality;
        let lb = doc.total_weight().div_ceil(K) as usize;
        assert!(opt >= lb, "{name}: optimal {opt} below weight bound {lb}");
        for alg in evaluation_algorithms() {
            let c = validate(doc.tree(), K, &alg.partition(doc.tree(), K).unwrap())
                .unwrap()
                .cardinality;
            assert!(c >= opt, "{} beat DHW on {name}: {c} < {opt}", alg.name());
        }
    }
}
