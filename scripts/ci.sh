#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q

echo "==> dp_speed --quick (DP engine smoke: cached == uncached, sharing + pruning active)"
cargo run --release -p natix-bench --bin dp_speed -- --quick

echo "==> store_speed --quick (buffer pool + group commit smoke: out-of-budget dump identical, evictions active, fsck clean after eviction, one flip per batch)"
cargo run --release -p natix-bench --bin store_speed -- --quick

echo "==> bulk_speed --quick (streaming sharded bulkload smoke: bounded memory at a fixed pool cap, docs/s per thread and shard count)"
cargo run --release -p natix-bench --bin bulk_speed -- --quick

echo "==> natix soak --quick (crash/update fuzz smoke: model oracle + power-cut sweeps; failures print replayable seeds/scripts)"
cargo run --release -p natix-cli -- soak --quick

echo "==> natix soak --quick --corruption (bit-rot sweep: every page class of every committed state must detect-or-correct)"
cargo run --release -p natix-cli -- soak --quick --corruption

echo "==> natix soak --quick --group-commit (crash-prefix smoke: a power cut inside a batch must recover to an exact prefix of the acked commits, fsck clean at every crash point)"
cargo run --release -p natix-cli -- soak --quick --group-commit

echo "==> natix soak --quick --bulkload (power cuts during a sharded bulkload: every shard independently recoverable, catalog never references uncommitted state)"
cargo run --release -p natix-cli -- soak --quick --bulkload

echo "==> natix soak --quick --diskfull (disk-full degradation sweep: a storage-full window at write events of every step; atomic rollback, reads keep serving while read-only, space probe re-enables writes, fsck clean)"
cargo run --release -p natix-cli -- soak --quick --diskfull

echo "==> natix stress --quick (chaos smoke: seeded reader/writer/fsck interleavings over the concurrent store; snapshot-vs-oracle, exactly-once commits, pin-safe reclamation, eviction active under a 2-page pool)"
cargo run --release -p natix-cli -- stress --quick

echo "==> natix fsck smoke (scrub a fresh store, destroy its header, repair, verify the dump round-trips)"
fsck_dir="$(mktemp -d)"
trap 'rm -rf "$fsck_dir"' EXIT
cat > "$fsck_dir/sample.xml" <<'XML'
<library><shelf id="s1"><book><title>Tree Partitioning</title><pages>120</pages></book><book><title>Records and Pages in Depth</title><pages>240</pages></book></shelf><shelf id="s2"><book><title>Sibling Intervals</title></book></shelf></library>
XML
natix() { cargo run --release -q -p natix-cli -- "$@"; }
natix load "$fsck_dir/sample.xml" "$fsck_dir/sample.natix" --k 16
natix fsck "$fsck_dir/sample.natix"
# Bulkload under a 2-page pool streams pages out by eviction; the file
# must still scrub clean and dump identically.
natix load "$fsck_dir/sample.xml" "$fsck_dir/tiny.natix" --k 16 --pool-pages 2
natix fsck "$fsck_dir/tiny.natix"
natix dump "$fsck_dir/tiny.natix" --pool-pages 2 > "$fsck_dir/tiny.xml"
natix dump "$fsck_dir/sample.natix" > "$fsck_dir/full.xml"
diff "$fsck_dir/tiny.xml" "$fsck_dir/full.xml"
natix dump "$fsck_dir/sample.natix" > "$fsck_dir/before.xml"
# Destroy the winning header slot (page 1); the store must refuse to open...
dd if=/dev/zero of="$fsck_dir/sample.natix" bs=8192 seek=1 count=1 conv=notrunc status=none
if natix dump "$fsck_dir/sample.natix" > /dev/null 2>&1; then
  echo "FAIL: store opened with a destroyed header" >&2; exit 1
fi
if natix fsck "$fsck_dir/sample.natix" > /dev/null; then
  echo "FAIL: fsck called a headerless store clean" >&2; exit 1
fi
# ...and fsck --repair must salvage it back to a byte-identical dump.
natix fsck "$fsck_dir/sample.natix" --repair
natix fsck "$fsck_dir/sample.natix"
natix dump "$fsck_dir/sample.natix" > "$fsck_dir/after.xml"
diff "$fsck_dir/before.xml" "$fsck_dir/after.xml"

echo "==> cross-shard fsck smoke (bulkload a collection, corrupt one shard, fsck must localize the damage)"
natix bulkload "$fsck_dir/coll" --docs 120 --shards 3 --threads 2 --seg-docs 10
natix collection stats "$fsck_dir/coll"
natix collection fsck "$fsck_dir/coll"
natix collection dump "$fsck_dir/coll" 5 > /dev/null
# Stomp live pages of shard 1 only; fsck must flag exactly that shard and
# still certify the other two clean (exit is nonzero while damage exists).
dd if=/dev/urandom of="$fsck_dir/coll/shard-0001.natix" bs=8192 seek=3 count=4 conv=notrunc status=none
if natix collection fsck "$fsck_dir/coll" > "$fsck_dir/collfsck.out" 2>&1; then
  echo "FAIL: collection fsck missed a corrupted shard" >&2; exit 1
fi
grep -q "shard 0: clean" "$fsck_dir/collfsck.out"
grep -q "shard 2: clean" "$fsck_dir/collfsck.out"
if grep -q "shard 1: clean" "$fsck_dir/collfsck.out"; then
  echo "FAIL: collection fsck called the corrupted shard clean" >&2; exit 1
fi

echo "==> natix serve smoke (daemon on an ephemeral port: one of each verb over the wire, a deterministic shed + honored retry-after, structured exit codes, clean drain)"
serve_dir="$fsck_dir/serve"
mkdir -p "$serve_dir"
natix load "$fsck_dir/sample.xml" "$serve_dir/store.natix" --k 16
natix serve "$serve_dir/store.natix" --addr 127.0.0.1:0 --max-pins 4 > "$serve_dir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$fsck_dir"' EXIT
for _ in $(seq 1 200); do
  grep -q "listening on" "$serve_dir/serve.log" && break
  sleep 0.05
done
addr="$(sed -n 's/.*listening on //p' "$serve_dir/serve.log" | head -n 1)"
[ -n "$addr" ] || { echo "FAIL: serve printed no listen banner" >&2; exit 1; }
natix net "$addr" ping
test "$(natix net "$addr" query '//book/title' --count)" = 3
# The wire dump must match a local dump of the same source, byte for byte.
natix net "$addr" dump > "$serve_dir/wire.xml"
diff "$serve_dir/wire.xml" "$fsck_dir/full.xml"
natix net "$addr" update '//library' append-element annex
test "$(natix net "$addr" query '//annex' --count)" = 1
natix net "$addr" stats > "$serve_dir/stats.out"
grep -q "live records" "$serve_dir/stats.out"
# Resource observability: pin/lease/backlog/read-only gauges are served.
grep -q "session-pinned" "$serve_dir/stats.out"
grep -q "read-only    : no" "$serve_dir/stats.out"
grep -q "superseded pages" "$serve_dir/stats.out"
natix net "$addr" fsck > /dev/null
# Deterministic backpressure round trip: saturate the 4 session pins,
# observe a typed retry-after, release one, get admitted.
natix net "$addr" shed-probe --pins 4 > "$serve_dir/shed.out"
grep -q "shed observed" "$serve_dir/shed.out"
grep -q "retry honored" "$serve_dir/shed.out"
# Structured exit codes: usage errors are 2, transport failures are 5.
rc=0; natix net "$addr" frobnicate 2> /dev/null || rc=$?
test "$rc" -eq 2 || { echo "FAIL: unknown net verb exited $rc, want 2" >&2; exit 1; }
rc=0; natix query "$serve_dir/no-such.natix" '//x' 2> /dev/null || rc=$?
test "$rc" -eq 5 || { echo "FAIL: missing store exited $rc, want 5" >&2; exit 1; }
# Clean drain: the shutdown verb must stop the daemon with exit 0.
natix net "$addr" shutdown
wait "$serve_pid"
grep -q "drained and stopped" "$serve_dir/serve.log"
trap 'rm -rf "$fsck_dir"' EXIT

echo "==> natix stress --net --quick (network load smoke: closed-loop client sweep against a live server; epoch-consistent reads, zero protocol errors, latency histogram written as JSON)"
cargo run --release -p natix-cli -- stress --net --quick --json "$serve_dir/bench_serve_quick.json"

echo "==> natix stress --net --proxy --quick (fault-proxy smoke: one seeded stall/partial-write/reset plan between the fleet and a live daemon; zero protocol errors, no wedged workers, clean drain)"
cargo run --release -p natix-cli -- stress --net --proxy --quick

echo "==> natix stress --net --leak --quick (pin-lease starvation smoke: a silent leaker must be reaped within one TTL; shed rate back to 0, reclamation backlog drains, typed session-expired answer)"
cargo run --release -p natix-cli -- stress --net --leak --quick

echo "==> natix serve replication smoke (primary + hot standby: update storm, lag drains to 0, same-epoch dumps byte-identical, standby sheds writes read-only, SIGKILL primary, promote, promoted store serves writes)"
repl_dir="$fsck_dir/repl"
mkdir -p "$repl_dir"
natix load "$fsck_dir/sample.xml" "$repl_dir/primary.natix" --k 16
natix serve "$repl_dir/primary.natix" --addr 127.0.0.1:0 > "$repl_dir/primary.log" &
primary_pid=$!
trap 'kill -9 "$primary_pid" 2>/dev/null; rm -rf "$fsck_dir"' EXIT
for _ in $(seq 1 200); do
  grep -q "listening on" "$repl_dir/primary.log" && break
  sleep 0.05
done
primary_addr="$(sed -n 's/.*listening on //p' "$repl_dir/primary.log" | head -n 1)"
[ -n "$primary_addr" ] || { echo "FAIL: primary printed no listen banner" >&2; exit 1; }
natix serve "$repl_dir/standby.natix" --addr 127.0.0.1:0 --replica-of "$primary_addr" \
  > "$repl_dir/standby.log" &
standby_pid=$!
trap 'kill -9 "$primary_pid" "$standby_pid" 2>/dev/null; rm -rf "$fsck_dir"' EXIT
for _ in $(seq 1 200); do
  grep -q "listening on" "$repl_dir/standby.log" && break
  sleep 0.05
done
standby_addr="$(sed -n 's/.*listening on //p' "$repl_dir/standby.log" | head -n 1)"
[ -n "$standby_addr" ] || { echo "FAIL: standby printed no listen banner" >&2; exit 1; }
# A short update storm on the primary while the standby follows live.
for i in $(seq 1 8); do
  natix net "$primary_addr" update '//library' append-element "wing$i"
done
# The primary's lag gauge must drain to 0 (every committed epoch acked);
# "1 followers" guards against matching the vacuous 0-follower line
# during a follower reconnect.
caught_up=0
for _ in $(seq 1 200); do
  if natix net "$primary_addr" stats | grep -q "1 followers, lag 0 epochs"; then caught_up=1; break; fi
  sleep 0.05
done
test "$caught_up" -eq 1 || { echo "FAIL: standby never reached lag 0" >&2; exit 1; }
# ...at which point same-epoch dumps must be byte-identical.
natix net "$primary_addr" dump > "$repl_dir/primary.xml"
natix net "$standby_addr" dump > "$repl_dir/standby.xml"
diff "$repl_dir/primary.xml" "$repl_dir/standby.xml"
natix net "$standby_addr" stats | grep -q "role         : replica"
# Writes to the standby shed with the typed read-only retry-after (exit 3).
rc=0; natix net "$standby_addr" update '//library' append-element nope --retries 0 2> /dev/null || rc=$?
test "$rc" -eq 3 || { echo "FAIL: standby write exited $rc, want 3 (read-only shed)" >&2; exit 1; }
# Failover: SIGKILL the primary, promote the standby, verify it went writable.
kill -9 "$primary_pid"
wait "$primary_pid" 2> /dev/null || true
natix net "$standby_addr" promote
natix net "$standby_addr" fsck > /dev/null
# The promoted store holds exactly the acked history (lag was 0 at the
# kill, so that is the full storm) and now accepts writes.
natix net "$standby_addr" dump > "$repl_dir/promoted.xml"
diff "$repl_dir/primary.xml" "$repl_dir/promoted.xml"
natix net "$standby_addr" update '//library' append-element promoted
test "$(natix net "$standby_addr" query '//promoted' --count)" = 1
natix net "$standby_addr" shutdown
wait "$standby_pid"
grep -q "drained and stopped" "$repl_dir/standby.log"
trap 'rm -rf "$fsck_dir"' EXIT

echo "==> natix soak --repl --quick (failover campaign smoke: primary + standby through the fault proxy, seeded update storm, SIGKILL at swept points, promote; acked-prefix content, clean fsck, chain-mismatch and fencing refusals, clean drain)"
cargo run --release -p natix-cli -- soak --repl --quick

echo "CI OK"
