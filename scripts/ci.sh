#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q

echo "==> dp_speed --quick (DP engine smoke: cached == uncached, sharing + pruning active)"
cargo run --release -p natix-bench --bin dp_speed -- --quick

echo "==> natix soak --quick (crash/update fuzz smoke: model oracle + power-cut sweeps; failures print replayable seeds/scripts)"
cargo run --release -p natix-cli -- soak --quick

echo "CI OK"
