//! Offline API-subset shim for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the surface the workspace's
//! `benches/` files use — [`Criterion`], benchmark groups,
//! [`BenchmarkId::from_parameter`], [`Throughput::Elements`],
//! `bench_with_input` / `bench_function` / `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from upstream, by design: no statistical regression analysis,
//! no HTML reports, no persisted baselines. Each benchmark is auto-calibrated
//! to a ~300 ms measurement window and reports the median per-iteration time
//! (plus throughput when configured) on stdout. Command-line arguments that
//! `cargo bench` forwards (e.g. `--bench`) are accepted and ignored, except
//! for an optional positional filter substring matched against benchmark ids.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value (upstream: `group/parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Full `function/parameter` form.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (nodes, records, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, timing the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate an iteration count, then measure several samples and report
/// the median per-iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration: find an iteration count taking >= ~30 ms.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(30) || iters >= 1 << 24 {
            break b.elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    // Aim for ~10 samples of ~30 ms each (~300 ms total measurement).
    let iters = ((30e6 / per_iter.max(1.0)).ceil() as u64).max(1);
    let mut samples: Vec<f64> = (0..10)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let spread = (samples[samples.len() - 1] - samples[0]) / median * 100.0;
    let mut line = format!("{id:<48} {:>14}/iter (±{spread:.0}%)", fmt_ns(median));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (median / 1e9);
        line.push_str(&format!("  {:.3e} {unit}/s", rate));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Benchmark registry/driver; one per `criterion_main!` run.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards extra args; the only one honoured is a
        // positional substring filter (upstream behaves the same way).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion { filter }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        if self.enabled(&id.id) {
            run_benchmark(&id.id, None, f);
        }
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    c: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Benchmark a routine parameterised by a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.c.enabled(&full) {
            run_benchmark(&full, self.throughput, |b| f(b, input));
        }
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.c.enabled(&full) {
            run_benchmark(&full, self.throughput, f);
        }
        self
    }

    /// End the group (upstream flushes reports here; the shim prints live).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 100);
        assert!(b.elapsed > Duration::ZERO || calls == 100);
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::from_parameter("dhw").id, "dhw");
        assert_eq!(BenchmarkId::new("scan", 42).id, "scan/42");
    }

    #[test]
    fn groups_run_benchmarks() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim-test");
        g.throughput(Throughput::Elements(8));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::from_parameter("noop"), &3u32, |b, &x| {
            ran = true;
            b.iter(|| x + 1)
        });
        g.finish();
        assert!(ran);
    }
}
