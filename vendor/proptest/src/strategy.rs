//! Strategies: composable random-value generators.
//!
//! The shim's [`Strategy`] is generation-only (no shrink trees): a strategy
//! is a cloneable recipe that produces one value per call from a seeded
//! [`StdRng`]. Combinators mirror upstream: `prop_map`, `prop_filter`,
//! tuples, ranges, [`WeightedUnion`] (behind `prop_oneof!`) and string
//! strategies compiled from a small regex subset.

use rand::{rngs::StdRng, Rng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O + 'static>(self, f: F) -> Map<Self, F> {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Reject generated values failing `pred` (counts as a case rejection;
    /// `whence` labels the filter in diagnostics).
    fn prop_filter<F: Fn(&Self::Value) -> bool + 'static>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F> {
        Filter {
            inner: self,
            whence,
            pred: Rc::new(pred),
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F: ?Sized> {
    inner: S,
    whence: &'static str,
    pred: Rc<F>,
}

impl<S: Clone, F: ?Sized> Clone for Filter<S, F> {
    fn clone(&self) -> Self {
        Filter {
            inner: self.inner.clone(),
            whence: self.whence,
            pred: Rc::clone(&self.pred),
        }
    }
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        // Local retry keeps filters cheap; a persistently failing filter
        // panics with its label rather than looping forever.
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Type-erased strategy (`Rc`-shared, cheaply cloneable).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen)(rng)
    }
}

/// Weighted choice among same-typed strategies; built by `prop_oneof!`.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for WeightedUnion<T> {
    fn clone(&self) -> Self {
        WeightedUnion {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T: Debug> WeightedUnion<T> {
    /// Union over `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        WeightedUnion { arms, total }
    }
}

impl<T: Debug> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut ticket = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if ticket < *w as u64 {
                return strat.generate(rng);
            }
            ticket -= *w as u64;
        }
        unreachable!("ticket below total weight always lands in an arm");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `&str` regex-subset strategies: `"<atom><atom>..."` where an atom is a
/// character class `[...]` (ranges, escapes, literals) or a literal char,
/// optionally followed by `{m,n}` / `{n}` / `*` / `+` / `?`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let compiled = compile_regex(self);
        let mut out = String::new();
        for atom in &compiled {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                let idx = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Compile the supported regex subset into repetition atoms. Panics on
/// unsupported syntax — better a loud failure than silently wrong data.
fn compile_regex(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(ch) = it.next() {
        let chars = match ch {
            '[' => parse_class(&mut it, pattern),
            '\\' => {
                let esc = it
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                vec![unescape(esc)]
            }
            '.' => (' '..='~').collect(),
            '(' | ')' | '|' => {
                panic!("regex feature {ch:?} not supported by the proptest shim: {pattern:?}")
            }
            c => vec![c],
        };
        let (min, max) = parse_repeat(&mut it, pattern);
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut chars = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = it
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in regex {pattern:?}"));
        match c {
            ']' => return chars,
            '\\' => {
                let esc = it
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                let lit = unescape(esc);
                chars.push(lit);
                prev = Some(lit);
            }
            '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().unwrap();
                let mut hi = it.next().unwrap();
                if hi == '\\' {
                    hi = unescape(
                        it.next()
                            .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}")),
                    );
                }
                assert!(lo < hi, "inverted range {lo:?}-{hi:?} in regex {pattern:?}");
                // `lo` itself is already in `chars`.
                let lo_next = char::from_u32(lo as u32 + 1).unwrap();
                chars.extend(lo_next..=hi);
            }
            c => {
                chars.push(c);
                prev = Some(c);
            }
        }
    }
}

fn unescape(esc: char) -> char {
    match esc {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        c => c,
    }
}

fn parse_repeat(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> (u32, u32) {
    match it.peek() {
        Some('{') => {
            it.next();
            let mut spec = String::new();
            for c in it.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition {spec:?} in regex {pattern:?}"))
            };
            match spec.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&spec);
                    (n, n)
                }
            }
        }
        Some('*') => {
            it.next();
            (0, 8)
        }
        Some('+') => {
            it.next();
            (1, 8)
        }
        Some('?') => {
            it.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_ranges_and_escapes() {
        let atoms = compile_regex("[ -~<>&;!\\[\\]\"']{0,200}");
        assert_eq!(atoms.len(), 1);
        assert_eq!((atoms[0].min, atoms[0].max), (0, 200));
        for needed in ['[', ']', '"', '\'', ' ', '~', 'a', 'Z'] {
            assert!(atoms[0].chars.contains(&needed), "missing {needed:?}");
        }
    }

    #[test]
    fn leading_class_then_quantified_class() {
        let atoms = compile_regex("[a-z][a-z0-9_.-]{0,8}");
        assert_eq!(atoms.len(), 2);
        assert_eq!((atoms[0].min, atoms[0].max), (1, 1));
        assert_eq!(atoms[0].chars.len(), 26);
        assert!(atoms[1].chars.contains(&'-') && atoms[1].chars.contains(&'.'));
        assert!(!atoms[1].chars.contains(&'['));
    }

    #[test]
    fn weighted_union_respects_weights() {
        let u = WeightedUnion::new(vec![
            (9, Strategy::boxed(0..1u32)),
            (1, Strategy::boxed(100..101u32)),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let big = (0..1000).filter(|_| u.generate(&mut rng) == 100).count();
        assert!((50..200).contains(&big), "weight-1 arm hit {big}/1000");
    }

    #[test]
    fn map_and_filter_compose() {
        let s = (0..100u32)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v != 0 && v < 200);
        }
    }
}
