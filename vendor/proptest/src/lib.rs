//! Offline API-subset shim for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate re-implements the slice of its API that the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter`,
//! * integer-range, tuple, [`collection::vec`] and `any::<T>()` strategies,
//! * string strategies from a small **regex subset** (character classes with
//!   ranges and `{m,n}` repetition — exactly what the test suites use),
//! * [`prop_oneof!`], [`prop_assume!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (via
//!   `Debug`) and the case seed instead of a minimized counterexample.
//! * **No persistence.** `*.proptest-regressions` files are ignored; runs are
//!   deterministic from a per-test seed, so failures reproduce by re-running.
//! * Generated-value streams differ from upstream.
//!
//! Limitation: parameter patterns in `proptest!` must be irrefutable
//! *binding* patterns (identifiers or tuples of identifiers) because the
//! macro also uses them as expressions to report failing inputs.

pub mod strategy;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: std::fmt::Debug + Clone + 'static {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    <$t>::MIN..=<$t>::MAX;
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )+};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    #[derive(Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    pub trait SizeRange: Clone {
        /// Sample a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test-case body did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count, try another.
        Reject,
        /// `prop_assert*!` failed with a message.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic per-(test, case) seed: FNV-1a over identity + index.
    pub fn case_seed(file: &str, line: u32, name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(file.as_bytes());
        eat(&line.to_le_bytes());
        eat(name.as_bytes());
        eat(&case.to_le_bytes());
        h
    }
}

/// What `proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module namespace used as `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run `cases` successful executions of a property body.
///
/// `body` generates inputs from `rng` and returns `Ok(())`, a rejection
/// (assume failure) or an assertion failure plus a rendered input dump.
#[doc(hidden)]
pub fn run_property<F>(
    cfg: &test_runner::ProptestConfig,
    file: &str,
    line: u32,
    name: &str,
    mut body: F,
) where
    F: FnMut(&mut rand::rngs::StdRng, u32) -> Result<(), (test_runner::TestCaseError, String)>,
{
    use rand::SeedableRng;
    let mut done: u32 = 0;
    let mut attempts: u32 = 0;
    let max_attempts = cfg.cases.saturating_mul(16).max(64);
    while done < cfg.cases {
        if attempts >= max_attempts {
            panic!(
                "property {name} ({file}:{line}): too many rejected cases \
                 ({done}/{} succeeded in {attempts} attempts)",
                cfg.cases
            );
        }
        let seed = test_runner::case_seed(file, line, name, attempts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        attempts += 1;
        match body(&mut rng, attempts - 1) {
            Ok(()) => done += 1,
            Err((test_runner::TestCaseError::Reject, _)) => {}
            Err((test_runner::TestCaseError::Fail(msg), inputs)) => {
                panic!(
                    "property {name} ({file}:{line}) failed at case #{attempts}:\n\
                     {msg}\ninputs: {inputs}"
                );
            }
        }
    }
}

/// The `proptest!` block macro: expands each contained `#[test] fn
/// name(pat in strategy, ..) { body }` into a seeded multi-case test.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::run_property(&__cfg, file!(), line!(), stringify!($name), |__rng, __case| {
                let _ = __case;
                let mut __inputs = String::new();
                $(
                    let $pat = {
                        let __v = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __inputs.push_str(stringify!($pat));
                        __inputs.push_str(" = ");
                        __inputs.push_str(&format!("{:?}; ", __v));
                        __v
                    };
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(r) => r.map_err(|e| (e, __inputs)),
                    Err(payload) => {
                        eprintln!(
                            "property {} panicked; inputs: {}",
                            stringify!($name),
                            __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Weighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::WeightedUnion::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::WeightedUnion::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Skip the current case without counting it as a success.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Property assertion; fails the case (with generated-input report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (1..=6u64, 10..20u64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in pair(), c in 0usize..5) {
            prop_assert!((1..=6).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert!(c < 5);
        }

        #[test]
        fn vec_and_any(v in prop::collection::vec((any::<u32>(), 1..4u64), 0..9)) {
            prop_assert!(v.len() < 9);
            for (_, w) in &v {
                prop_assert!((1..4).contains(w));
            }
        }

        #[test]
        fn regex_strings(s in "[a-c][a-c0-9_.-]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "bad len: {}", s);
            let mut chars = s.chars();
            prop_assert!(('a'..='c').contains(&chars.next().unwrap()));
            for ch in chars {
                prop_assert!(
                    ('a'..='c').contains(&ch)
                        || ch.is_ascii_digit()
                        || "_.-".contains(ch),
                    "bad char {:?} in {:?}", ch, s
                );
            }
        }

        #[test]
        fn oneof_map_filter(
            n in prop_oneof![
                3 => (0..10u32).prop_map(|v| v * 2),
                1 => (100..110u32).prop_filter("even", |v| v % 2 == 0),
            ],
        ) {
            prop_assert!(n % 2 == 0 && (n < 20 || (100..110).contains(&n)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0..10u32) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
