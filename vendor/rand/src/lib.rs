//! Offline API-subset shim for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This crate implements exactly the surface
//! the workspace uses — `rand::rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`] — on top of
//! the SplitMix64 generator. It is **not** a cryptographic RNG and makes no
//! attempt to match upstream `rand`'s value streams; everything in this
//! workspace only needs a *deterministic, seeded, well-mixed* sequence.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors the upstream `Rng: RngCore` design).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on empty ranges, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self.as_core())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 explicit mantissa bits give a uniform float in [0, 1).
        let unit = (self.as_core().next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    #[doc(hidden)]
    fn as_core(&mut self) -> &mut dyn RngCore;
}

impl<G: RngCore> Rng for G {
    fn as_core(&mut self) -> &mut dyn RngCore {
        self
    }
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    #[doc(hidden)]
    fn from_offset(lo: Self, offset: u64) -> Self;
    #[doc(hidden)]
    fn span(lo: Self, hi_inclusive: Self) -> Option<u64>;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn from_offset(lo: Self, offset: u64) -> Self {
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn span(lo: Self, hi_inclusive: Self) -> Option<u64> {
                if lo > hi_inclusive {
                    None
                } else {
                    Some((hi_inclusive as $wide).wrapping_sub(lo as $wide) as u64)
                }
            }
        }
    )+};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Uniform offset in `0..=span` by widening multiply rejection-free
/// approximation; a modulo would do for test workloads, but this has no
/// measurable bias for spans far below 2^64 and is just as cheap.
fn uniform_offset(rng: &mut dyn RngCore, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    // Widening-multiply map of a uniform u64 onto [0, bound).
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let span = T::span(self.start, self.end)
            .and_then(|s| s.checked_sub(1))
            .expect("cannot sample from empty range");
        T::from_offset(self.start, uniform_offset(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        let span = T::span(lo, hi).expect("cannot sample from empty range");
        T::from_offset(lo, uniform_offset(rng, span))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes BigCrush-level mixing for the purposes of test-data and
    /// synthetic-document generation; one `u64` of state, closed-form jump.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard the first output so nearby seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u32> = (0..8).map(|_| a.gen_range(0..u32::MAX)).collect();
        let other: Vec<u32> = (0..8).map(|_| c.gen_range(0..u32::MAX)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let s = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&s));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut seen = [false; 2];
        for _ in 0..1000 {
            match rng.gen_range(0..=1u8) {
                0 => seen[0] = true,
                _ => seen[1] = true,
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
