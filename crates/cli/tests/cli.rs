//! End-to-end tests for the `natix` command-line tool, driving the real
//! binary via `CARGO_BIN_EXE_natix`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn natix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_natix"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "natix-cli-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SAMPLE: &str = concat!(
    "<library><shelf id=\"s1\">",
    "<book><title>Tree Partitioning</title><pages>120</pages></book>",
    "<book><title>Records and Pages in Depth</title><pages>240</pages></book>",
    "</shelf><shelf id=\"s2\"><book><title>Sibling Intervals</title></book></shelf></library>",
);

#[test]
fn partition_reports_counts() {
    let dir = tmpdir();
    let xml = dir.join("lib.xml");
    std::fs::write(&xml, SAMPLE).unwrap();
    let out = natix(&[
        "partition",
        xml.to_str().unwrap(),
        "--alg",
        "dhw",
        "--k",
        "16",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // DHW resolves to the structure-sharing engine by default.
    assert!(stdout.contains("algorithm  : DHW-C (K = 16)"), "{stdout}");
    assert!(stdout.contains("partitions : 3"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_dag_cache_escape_hatch_is_identical() {
    let dir = tmpdir();
    let xml = dir.join("lib.xml");
    std::fs::write(&xml, SAMPLE).unwrap();
    let path = xml.to_str().unwrap();
    let cached = natix(&["partition", path, "--alg", "dhw", "--k", "16"]);
    let plain = natix(&[
        "partition",
        path,
        "--alg",
        "dhw",
        "--k",
        "16",
        "--no-dag-cache",
    ]);
    assert!(cached.status.success() && plain.status.success());
    let cached_out = String::from_utf8_lossy(&cached.stdout).to_string();
    let plain_out = String::from_utf8_lossy(&plain.stdout).to_string();
    assert!(
        plain_out.contains("algorithm  : DHW (K = 16)"),
        "{plain_out}"
    );
    // Same partitioning either way: every line but the algorithm name
    // matches.
    let strip = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.starts_with("algorithm"))
            .map(|l| l.to_string())
            .collect()
    };
    assert_eq!(strip(&cached_out), strip(&plain_out));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partition_stats_prints_cache_counters() {
    let dir = tmpdir();
    let xml = dir.join("lib.xml");
    std::fs::write(&xml, SAMPLE).unwrap();
    let path = xml.to_str().unwrap();
    let out = natix(&["partition", path, "--alg", "dhw", "--k", "16", "--stats"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dag shapes :"), "{stdout}");
    assert!(stdout.contains("distinct of"), "{stdout}");
    assert!(stdout.contains("cache hits :"), "{stdout}");
    assert!(stdout.contains("pruned     :"), "{stdout}");
    assert!(stdout.contains("dp tables  :"), "{stdout}");

    // The uncached engine reports its table counters and says why the
    // cache columns are empty.
    let out = natix(&[
        "partition",
        path,
        "--alg",
        "ghdw",
        "--k",
        "16",
        "--stats",
        "--no-dag-cache",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("disabled via --no-dag-cache"), "{stdout}");
    assert!(stdout.contains("dp tables  :"), "{stdout}");

    // --stats on a single-pass heuristic is a clear error.
    let out = natix(&["partition", path, "--alg", "ekm", "--k", "16", "--stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stats supports dhw/ghdw"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn load_query_dump_roundtrip() {
    let dir = tmpdir();
    let xml = dir.join("lib.xml");
    let store = dir.join("lib.natix");
    std::fs::write(&xml, SAMPLE).unwrap();

    let out = natix(&[
        "load",
        xml.to_str().unwrap(),
        store.to_str().unwrap(),
        "--alg",
        "ekm",
        "--k",
        "16",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = natix(&["query", store.to_str().unwrap(), "//book/title", "--count"]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");

    let out = natix(&[
        "query",
        store.to_str().unwrap(),
        "//shelf[@id='s2']/book",
        "--count",
    ]);
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1");

    let out = natix(&["dump", store.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), SAMPLE);

    let out = natix(&["stats", store.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("records"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

const PAGE_SIZE: usize = 8192;

/// Byte offset of the page-class tag inside the 12-byte page frame.
const CLASS_AT: usize = PAGE_SIZE - 10;

/// XOR-rot a 100-byte run of the highest record-class page of a store
/// file (never the first record page, which holds the root record).
/// Returns the page number hit.
fn rot_last_record_page(path: &std::path::Path) -> usize {
    let mut bytes = std::fs::read(path).unwrap();
    let mut target = None;
    for page in 2..bytes.len() / PAGE_SIZE {
        let p = &bytes[page * PAGE_SIZE..(page + 1) * PAGE_SIZE];
        if p.iter().any(|&b| b != 0) && p[CLASS_AT] == 2 {
            target = Some(page);
        }
    }
    let page = target.expect("a record page");
    for b in &mut bytes[page * PAGE_SIZE + 100..page * PAGE_SIZE + 200] {
        *b ^= 0x5A;
    }
    std::fs::write(path, bytes).unwrap();
    page
}

/// A document fat enough that its records spread over several pages, so
/// rotting one page leaves survivors to salvage.
fn fat_sample() -> String {
    let mut s = String::from("<site>");
    for i in 0..24 {
        s.push_str(&format!(
            "<item id=\"i{i}\"><name>object number {i}</name><note>{}</note></item>",
            format!("text content for padding {i} ").repeat(30)
        ));
    }
    s.push_str("</site>");
    s
}

#[test]
fn fsck_scrubs_clean_and_flags_damage() {
    let dir = tmpdir();
    let xml = dir.join("lib.xml");
    let store = dir.join("lib.natix");
    std::fs::write(&xml, SAMPLE).unwrap();
    let out = natix(&["load", xml.to_str().unwrap(), store.to_str().unwrap()]);
    assert!(out.status.success());

    let out = natix(&["fsck", store.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("fsck status=clean"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Destroy the winning header slot (bulkload publishes only slot 1):
    // opening fails, plain fsck reports damage with a non-zero exit.
    let mut bytes = std::fs::read(&store).unwrap();
    for b in &mut bytes[PAGE_SIZE..2 * PAGE_SIZE] {
        *b = 0xA5;
    }
    std::fs::write(&store, bytes).unwrap();
    assert!(!natix(&["dump", store.to_str().unwrap()]).status.success());
    let out = natix(&["fsck", store.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("fsck status=damaged"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // --repair rebuilds the catalog and headers from the surviving
    // records; afterwards the store scrubs clean and dumps byte-equal.
    let out = natix(&["fsck", store.to_str().unwrap(), "--repair"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("repair recovered="),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = natix(&["fsck", store.to_str().unwrap()]);
    assert!(out.status.success());
    let out = natix(&["dump", store.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), SAMPLE);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repair_quarantines_and_degraded_dump_reports_the_loss() {
    let dir = tmpdir();
    let xml = dir.join("site.xml");
    let store = dir.join("site.natix");
    std::fs::write(&xml, fat_sample()).unwrap();
    let out = natix(&[
        "load",
        xml.to_str().unwrap(),
        store.to_str().unwrap(),
        "--k",
        "160",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    rot_last_record_page(&store);
    let out = natix(&["fsck", store.to_str().unwrap(), "--repair"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("record-quarantined"), "{report}");

    // The repaired store scrubs clean, strict dump refuses (data IS
    // missing), and --degraded serves the survivors plus a damage report.
    assert!(natix(&["fsck", store.to_str().unwrap()]).status.success());
    assert!(!natix(&["dump", store.to_str().unwrap()]).status.success());
    let out = natix(&["dump", store.to_str().unwrap(), "--degraded"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.starts_with("<site>"), "{doc}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("damage"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn soak_corruption_quick_tier_passes() {
    let out = natix(&["soak", "--quick", "--corruption"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("soak (quick, corruption):"), "{stdout}");
    // A clean run must NOT print the failure banner.
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("reproduce with"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stress_quick_tier_passes_and_prints_no_banner() {
    // A trimmed quick campaign keeps the debug-binary test fast while
    // still covering transient- and permanent-fault interleavings.
    let out = natix(&["stress", "--quick", "--runs", "30"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stress (quick):"), "{stdout}");
    assert!(stdout.contains("30 interleavings"), "{stdout}");
    assert!(stdout.contains("0 failures"), "{stdout}");
    // A clean run must NOT print the failure banner.
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("reproduce with"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stress_is_seed_deterministic() {
    let a = natix(&["stress", "--quick", "--runs", "10", "--seed", "77"]);
    let b = natix(&["stress", "--quick", "--runs", "10", "--seed", "77"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout)
    );
}

#[test]
fn stress_rejects_unknown_flags() {
    let out = natix(&["stress", "--frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn soak_failure_banner_survives_bad_replay() {
    let dir = tmpdir();
    let script = dir.join("bad.soak");
    // A malformed script: the run cannot finish cleanly, so the drop
    // guard must print the reproduction banner.
    std::fs::write(&script, "workload nope.xml scale 0.001 gen-seed 1 k 24\n").unwrap();
    let out = natix(&["soak", "--replay", script.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("soak: reproduce with:"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown command.
    let out = natix(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = natix(&["partition", "/nonexistent/file.xml"]);
    assert!(!out.status.success());

    // Unknown algorithm.
    let dir = tmpdir();
    let xml = dir.join("x.xml");
    std::fs::write(&xml, "<a/>").unwrap();
    let out = natix(&["partition", xml.to_str().unwrap(), "--alg", "zzz"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    // Malformed XML.
    std::fs::write(&xml, "<a><b></a>").unwrap();
    let out = natix(&["partition", xml.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mismatched end tag"));

    // Opening garbage as a store.
    let garbage = dir.join("garbage.natix");
    std::fs::write(&garbage, vec![7u8; 16384]).unwrap();
    let out = natix(&["stats", garbage.to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_args_prints_usage() {
    let out = natix(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
