//! Regression tests for the structured exit codes (satellite of the
//! serve PR): 2 = usage, 3 = shed/overloaded, 4 = corruption, 5 = I/O.
//! Drives the real binary via `CARGO_BIN_EXE_natix`, including a live
//! `natix serve` daemon for the shed path.

use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn natix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_natix"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "natix-exitcodes-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn build_store(dir: &Path) -> String {
    let xml = dir.join("seed.xml");
    std::fs::write(&xml, "<list><e>alpha</e><e>beta</e><e>gamma</e></list>").unwrap();
    let store = dir.join("store.natix");
    let out = natix(&[
        "load",
        xml.to_str().unwrap(),
        store.to_str().unwrap(),
        "--k",
        "16",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    store.to_str().unwrap().to_string()
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(code(&natix(&[])), 2, "no arguments is a usage error");
    let out = natix(&["frobnicate"]);
    assert_eq!(code(&out), 2, "unknown command is a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn missing_store_exits_5() {
    let dir = tmpdir("io");
    let ghost = dir.join("does-not-exist.natix");
    let out = natix(&["query", ghost.to_str().unwrap(), "//e"]);
    assert_eq!(
        code(&out),
        5,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_store_exits_4() {
    let dir = tmpdir("corrupt");
    let store = build_store(&dir);
    // Zero out page 1 (the first data page after the header page) so
    // fsck trips a checksum failure.
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .open(&store)
        .unwrap();
    f.seek(SeekFrom::Start(8192)).unwrap();
    f.write_all(&[0u8; 8192]).unwrap();
    f.sync_all().unwrap();
    drop(f);
    let out = natix(&["fsck", &store]);
    assert_eq!(
        code(&out),
        4,
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

struct ServerGuard {
    child: Child,
    addr: String,
    // Keeps the stdout pipe's read end open so the daemon's own status
    // prints never hit a closed pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = natix(&["net", &self.addr, "shutdown"]);
        let _ = self.child.wait();
    }
}

fn spawn_server(store: &str, max_pins: &str) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_natix"))
        .args([
            "serve",
            store,
            "--addr",
            "127.0.0.1:0",
            "--max-pins",
            max_pins,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    let addr = line
        .rsplit("listening on ")
        .next()
        .expect("banner format")
        .trim()
        .to_string();
    assert!(addr.contains(':'), "bad banner line: {line:?}");
    ServerGuard {
        child,
        addr,
        _stdout: reader,
    }
}

#[test]
fn shed_with_exhausted_retries_exits_3() {
    let dir = tmpdir("shed");
    let store = build_store(&dir);
    let server = spawn_server(&store, "1");

    // A healthy request works over the wire (exit 0).
    let out = natix(&["net", &server.addr, "query", "//e", "--count"]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");

    // Success path of the backpressure round trip: the shed-probe verb
    // saturates the single pin, observes a retry-after, then releases
    // and is admitted.
    let probe = natix(&["net", &server.addr, "shed-probe", "--pins", "1"]);
    assert_eq!(
        code(&probe),
        0,
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&probe.stdout),
        String::from_utf8_lossy(&probe.stderr)
    );
    let probe_out = String::from_utf8_lossy(&probe.stdout);
    assert!(probe_out.contains("shed observed"), "{probe_out}");
    assert!(probe_out.contains("retry honored"), "{probe_out}");

    // Failure path: saturate the pin from a helper thread holding a raw
    // session open, then ask for another with a tiny retry budget.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let addr = server.addr.clone();
    let holder = std::thread::spawn(move || {
        // Sustained hold: keep a pinned session open until signalled.
        // The shed-probe process above may not have had its sessions
        // reaped yet, so honor retry-after hints while acquiring.
        let mut c = natix_server::Client::connect(addr.as_str()).expect("connect");
        let (resp, _) = c
            .request_retry(&natix_server::Request::Begin, 200)
            .expect("begin holds the only pin");
        assert!(matches!(
            resp.body,
            natix_server::ResponseBody::SessionPinned
        ));
        rx.recv().ok();
        drop(c);
    });
    // Wait for the holder to have the pin: poll until a Begin sheds.
    let mut saturated = false;
    for _ in 0..100 {
        let mut c = natix_server::Client::connect(server.addr.as_str()).expect("connect");
        match c
            .request(&natix_server::Request::Begin)
            .expect("begin")
            .body
        {
            natix_server::ResponseBody::RetryAfter { .. } => {
                saturated = true;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    assert!(saturated, "holder never pinned the session");

    // With the only admission slot pinned, an ad-hoc query keeps
    // getting retry-after; a tiny retry budget runs out of patience and
    // must exit with the shed code.
    let out = natix(&[
        "net",
        &server.addr,
        "query",
        "//e",
        "--count",
        "--retries",
        "2",
    ]);
    assert_eq!(
        code(&out),
        3,
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("overloaded"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    tx.send(()).unwrap();
    holder.join().unwrap();
    drop(server);
    std::fs::remove_dir_all(&dir).unwrap();
}
