//! `natix` — command-line front end for the Natix sibling-partitioning
//! store.
//!
//! ```text
//! natix partition <file.xml> [--alg ekm|dhw|ghdw|km|rs|dfs|bfs|lukes] [--k 256] [--threads N]
//!                 [--stats] [--no-dag-cache]
//! natix load      <file.xml> <store.natix> [--alg ekm] [--k 256] [--threads N] [--no-dag-cache]
//! natix query     <store.natix> '<xpath>' [--count]
//! natix dump      <store.natix> [--degraded]
//! natix stats     <store.natix>
//! natix fsck      <store.natix> [--repair]
//! natix bulkload  <dir> [--input <file.xml>]... [--docs N] [--shards N] [--threads N]
//!                 [--seg-docs N] [--budget N] [--k SLOTS] [--seed N] [--pool-pages N]
//! natix collection stats <dir> | dump <dir> <doc-id> | fsck <dir> [--repair]
//! natix soak      [--quick] [--corruption] [--group-commit] [--bulkload] [--serve]
//!                 [--diskfull] [--repl] [--seed N] [--replay <script>]
//! natix stress    [--quick] [--seed N] [--runs N] [--net [--proxy|--leak]] [--json FILE]
//! natix serve     <store.natix> [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!                 [--max-pins N] [--read-budget N] [--lease-ttl-ms N] [--pool-pages N]
//!                 [--replica-of HOST:PORT]
//! natix net       <addr> ping|query|dump|stats|fsck|update|shed-probe|promote|shutdown [...]
//! ```
//!
//! `natix serve` runs the network daemon of `natix-server`: a
//! length-prefixed binary protocol over TCP, a worker pool for
//! connections, and a store-service thread that maps each connection
//! onto `SharedStore` snapshot pins (wire format in DESIGN.md §15). It
//! prints `listening on HOST:PORT` once ready and exits after a wire
//! `shutdown` request has drained all in-flight work. `natix net` is the
//! matching client: one verb per invocation, honoring the server's typed
//! retry-after backpressure (`--retries N` bounds the patience). Its
//! `shed-probe` verb drives the backpressure round trip deterministically:
//! it saturates the pin budget (`--pins N` connections holding `begin`
//! pins), demands one more, expects a typed retry-after, then releases a
//! pin and retries until admitted.
//!
//! `natix stress --net` extends the chaos/stress machinery into a
//! client-facing load harness: closed-loop client fleets of increasing
//! size against an in-process server, recording p50/p99 request latency,
//! throughput and shed rate per offered-load level, and writing the
//! sweep to `BENCH_serve.json` (override with `--json FILE`). `natix
//! soak --serve` is the serving power-cut campaign: it spawns `natix
//! serve` as a child process, runs reader clients plus an update storm
//! against it, SIGKILLs the daemon mid-storm, then recovers the store
//! file and audits that every acknowledged update survived and fsck is
//! clean.
//!
//! `natix stress --net --proxy` routes the fleet through the
//! deterministic network fault proxy of `natix-testkit`: seeded stalls,
//! partial writes, mid-frame resets, and byte-rate throttling between
//! the clients and a live daemon, asserting zero protocol errors, no
//! wedged workers, and epoch consistency across reconnects. `natix
//! stress --net --leak` runs the pin-lease starvation scenario: one
//! deliberate leaker pins the only admission slot and goes silent;
//! well-behaved victims must shed only until the lease reaper frees the
//! slot (shed rate back to 0 within one TTL), the reclamation backlog
//! must drain, and the leaker's next request gets the typed
//! session-expired answer.
//!
//! `natix serve --replica-of HOST:PORT` runs the daemon as a hot
//! standby: it subscribes to the primary at that address, bootstraps
//! from a streamed snapshot, then applies committed journal batches so
//! its store file is byte-identical to the primary at every acked
//! epoch. A replica serves read-only queries (writes get the typed
//! read-only retry-after) and reports its applied epoch and batch
//! counters in `stats`; the primary's `stats` reports follower count
//! and replication lag. `natix net <replica> promote` is failover: it
//! waits for the applied epoch to settle, discards any unacked staged
//! tail, runs recovery, and fences the store so batches from a deposed
//! primary are refused with a typed `fenced` error (DESIGN.md §17).
//! `natix soak --repl` is the failover campaign: a primary/replica pair
//! with the fault proxy between them, an update storm, SIGKILL of the
//! primary at swept points, then promote — asserting the promoted store
//! is exactly the acked prefix, fsck-clean, with divergent tails
//! refused.
//!
//! `natix soak --diskfull` is the disk-full degradation campaign: a
//! storage-full window is injected at every write event of every step of
//! the seeded update traces; the in-flight commit must roll back
//! atomically, reads must keep serving the pre-step document while the
//! store is read-only degraded, the space probe must re-enable writes
//! when the window lifts, and every episode ends with an oracle match
//! plus a clean fsck scrub.
//!
//! Exit codes are structured so scripts can tell failure classes apart:
//! 0 success, 1 generic failure, 2 usage error, 3 request shed by
//! backpressure (`StoreError::Overloaded`/`Timeout`), 4 corruption
//! detected, 5 I/O failure.
//!
//! `natix bulkload` streams a document corpus into a sharded collection:
//! `--shards` independent store files under `<dir>` plus a catalog,
//! loaded by `--threads` parallel workers through the streaming
//! SAX-to-record pipeline (memory stays O(depth + sibling budget + K)
//! per in-flight document regardless of corpus size). The corpus is
//! either explicit `--input` files (each one document, in id order) or
//! `--docs N` synthetic small documents cycling the six Table 1
//! generators. `natix collection` inspects the result: `stats` prints a
//! per-shard table, `dump` extracts one document by id, and `fsck`
//! scrubs every shard independently — damage in one shard is localized
//! and never blocks checking the others.
//!
//! `natix fsck` scrubs a store file — header slots, pending journal,
//! catalog, page checksums, and the full partition-record graph — and
//! prints a machine-readable report (one `finding ...` line per
//! problem). With `--repair` it salvages every record that still passes
//! its checksum, rebuilds the catalog from the survivors, and
//! quarantines the rest; quarantined subtrees are readable via
//! `natix dump --degraded`, which prints the surviving document plus a
//! damage report naming each missing sibling interval.
//!
//! `natix soak` runs the model-based crash/update fuzz harness of
//! `natix-testkit`: seeded update traces over the Table 1 evaluation
//! documents, each step checked against an in-memory oracle and swept
//! with power cuts (clean and torn) at every write event. `--quick` is
//! the CI smoke tier (seconds); the default full campaign exercises
//! over a thousand crash points. Failing traces are shrunk and printed
//! as replayable scripts; `--replay` re-runs such a script.
//! `--corruption` swaps the power-cut sweep for the bit-rot sweep: every
//! page class of every committed state is corrupted and the store must
//! detect or correct, never read silently wrong. `--group-commit` swaps
//! in the batched-commit sweep: updates are applied through
//! `WriteGuard::mutate_batch` and a power cut at every write event
//! inside a batch must recover to an exact prefix of the acked commits
//! (all acked, or none), with fsck clean at every crash point. On any
//! abnormal end — including a panic — a drop guard prints the seeds in
//! play and the exact command line to reproduce.
//!
//! `natix stress` runs the deterministic chaos scheduler of
//! `natix-testkit` over the concurrent store layer: seeded interleavings
//! of snapshot readers, a serialized writer under injected-fault plans
//! (transient and permanent), and a racing fsck scrubber — checking
//! snapshot consistency against a model oracle at every pinned epoch,
//! exactly-once commits under retry, pin-safe page reclamation, and
//! phantom-corruption-free scrubs. `--quick` is the CI smoke tier; the
//! default full campaign runs ≥ 1000 interleavings. Every failure prints
//! its interleaving seed and a one-command reproduction.
//!
//! `--threads N` runs the table-building algorithms (DHW, GHDW) on N worker
//! threads; the output is identical to the sequential run. It defaults to
//! the machine's available parallelism and is ignored by the single-pass
//! heuristics.
//!
//! DHW and GHDW use the structure-sharing engine (`natix_core::dag`: one
//! DP run per distinct weighted subtree shape, dominance-pruned rows) by
//! default; `--no-dag-cache` is the escape hatch back to the plain
//! per-node engine. Both produce byte-identical partitionings. `natix
//! partition --stats` prints the cache and pruning counters so users can
//! see why a document did or didn't benefit.

use std::path::Path;
use std::process::ExitCode;

use natix_bench::Json;
use natix_core::{
    dhw_cached_with_statistics, dhw_with_statistics, ghdw_cached_with_statistics,
    ghdw_with_statistics, parallel, Bfs, CachedDhw, CachedGhdw, Dfs, Dhw, DpStats, Ekm, Ghdw, Km,
    Lukes, ParallelDhw, ParallelGhdw, Partitioner, Rs,
};
use natix_server::{
    serve as serve_daemon, Client, ClientError, ProtoError, Request, ResponseBody, ServeConfig,
    ServeError, UpdateOp,
};
use natix_store::{
    bulkload_collection, bulkload_with, fsck, fsck_collection, BulkloadOptions, Collection,
    ErrorCategory, FilePager, OpenMode, StoreConfig, StoreError, XmlStore,
};
use natix_tree::validate;
use natix_xml::NodeKind;
use natix_xpath::{eval_query, EvalError, StoreNavigator};

/// A CLI failure: the message plus the process exit code, so scripts can
/// tell failure classes apart (see the module docs for the code table).
#[derive(Debug)]
struct CliError {
    code: u8,
    msg: String,
}

/// Exit code for a store failure class: sheds are 3, corruption 4,
/// I/O 5; invalid requests are ordinary failures.
fn exit_code_for(category: ErrorCategory) -> u8 {
    match category {
        ErrorCategory::Shed => 3,
        ErrorCategory::Corrupt => 4,
        ErrorCategory::Io => 5,
        ErrorCategory::InvalidRequest => 1,
    }
}

impl CliError {
    fn new(code: u8, msg: impl Into<String>) -> CliError {
        CliError {
            code,
            msg: msg.into(),
        }
    }

    /// Classify a store error into its exit code.
    fn store(e: &StoreError) -> CliError {
        CliError::new(exit_code_for(e.category()), e.to_string())
    }

    /// Like [`CliError::store`], prefixing the failing path.
    fn store_at(path: &str, e: &StoreError) -> CliError {
        CliError::new(exit_code_for(e.category()), format!("{path}: {e}"))
    }

    /// Classify a network-client failure: exhausted retry-after patience
    /// is a shed (3), transport trouble is I/O (5).
    fn client(e: &ClientError) -> CliError {
        match e {
            ClientError::StillOverloaded { .. } => CliError::new(3, e.to_string()),
            // An expired lease is a shed-class condition: the server is
            // healthy, the client just has to re-`begin`.
            ClientError::SessionExpired => CliError::new(3, e.to_string()),
            ClientError::Proto(ProtoError::Io(_)) => CliError::new(5, e.to_string()),
            ClientError::Proto(_) => CliError::new(1, e.to_string()),
        }
    }

    /// Classify a typed error response from the server.
    fn response(kind: natix_server::ErrKind, message: &str) -> CliError {
        let code = match kind {
            natix_server::ErrKind::Corrupt => 4,
            natix_server::ErrKind::Io => 5,
            _ => 1,
        };
        CliError::new(code, format!("server: {kind} error: {message}"))
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::new(1, msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::new(1, msg)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  natix partition <file.xml> [--alg NAME] [--k SLOTS] [--threads N] \
         [--stats] [--no-dag-cache]\n  \
         natix load <file.xml> <store.natix> [--alg NAME] [--k SLOTS] [--threads N] \
         [--no-dag-cache] [--pool-pages N]\n  \
         natix query <store.natix> '<xpath>' [--count] [--pool-pages N]\n  \
         natix dump <store.natix> [--degraded] [--pool-pages N]\n  \
         natix stats <store.natix> [--pool-pages N]\n  \
         natix fsck <store.natix> [--repair]\n  \
         natix bulkload <dir> [--input <file.xml>]... [--docs N] [--shards N] [--threads N] \
         [--seg-docs N] [--budget N] [--k SLOTS] [--seed N] [--pool-pages N]\n  \
         natix collection stats <dir> | dump <dir> <doc-id> | fsck <dir> [--repair]\n  \
         natix soak [--quick] [--corruption] [--group-commit] [--bulkload] [--serve] \
         [--diskfull] [--repl] [--seed N] [--replay <script>]\n  \
         natix stress [--quick] [--seed N] [--runs N] [--net [--proxy|--leak]] [--json FILE]\n  \
         natix serve <store.natix> [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--max-pins N] [--read-budget N] [--lease-ttl-ms N] [--pool-pages N] \
         [--replica-of HOST:PORT]\n  \
         natix net <addr> ping | query '<xpath>' [--count] | dump [--degraded] | stats | \
         fsck | update '<xpath>' <append-element|append-text|insert-before|delete> [VALUE] | \
         shed-probe [--pins N] | promote | shutdown   (all: [--retries N])\n\
         algorithms: ekm (default), dhw, ghdw, km, rs, dfs, bfs, lukes\n\
         --threads N parallelizes dhw/ghdw (default: available parallelism)\n\
         --no-dag-cache disables the structure-sharing engine for dhw/ghdw\n\
         --stats prints DP cache and dominance-pruning counters (dhw/ghdw)\n\
         --pool-pages N caps the buffer pool at N 8 KB pages (default 8192)"
    );
    ExitCode::from(2)
}

/// Resolve an algorithm name. For the table-building algorithms (DHW,
/// GHDW) `threads > 1` selects the parallel engines and `dag_cache`
/// toggles the structure-sharing engine of `natix_core::dag` — all four
/// combinations produce byte-identical output. The single-pass heuristics
/// ignore both knobs.
fn algorithm(name: &str, threads: usize, dag_cache: bool) -> Option<Box<dyn Partitioner>> {
    Some(match (name.to_ascii_lowercase().as_str(), dag_cache) {
        ("ekm", _) => Box::new(Ekm),
        ("dhw", cache) if threads > 1 => Box::new(ParallelDhw {
            threads,
            job_target: None,
            dag_cache: cache,
        }),
        ("dhw", true) => Box::new(CachedDhw),
        ("dhw", false) => Box::new(Dhw),
        ("ghdw", cache) if threads > 1 => Box::new(ParallelGhdw {
            threads,
            job_target: None,
            dag_cache: cache,
        }),
        ("ghdw", true) => Box::new(CachedGhdw),
        ("ghdw", false) => Box::new(Ghdw),
        ("km", _) => Box::new(Km),
        ("rs", _) => Box::new(Rs),
        ("dfs", _) => Box::new(Dfs),
        ("bfs", _) => Box::new(Bfs),
        ("lukes", _) => Box::new(Lukes),
        _ => return None,
    })
}

struct Flags {
    alg: Box<dyn Partitioner>,
    alg_name: String,
    k: u64,
    dag_cache: bool,
    stats: bool,
    pool_pages: Option<usize>,
}

/// Strip a `--pool-pages N` flag out of `args`, returning the cap (if
/// present) and the remaining arguments for the command's own parser.
fn extract_pool_pages(args: &[String]) -> Result<(Option<usize>, Vec<String>), String> {
    let mut pool_pages = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--pool-pages" {
            let n: usize = it
                .next()
                .ok_or("missing value for --pool-pages")?
                .parse()
                .map_err(|_| "--pool-pages expects a positive integer".to_string())?;
            if n == 0 {
                return Err("--pool-pages expects a positive integer".to_string());
            }
            pool_pages = Some(n);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((pool_pages, rest))
}

fn store_config(pool_pages: Option<usize>) -> StoreConfig {
    let mut config = StoreConfig::default();
    if let Some(n) = pool_pages {
        config.buffer_pages = n;
    }
    config
}

fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut alg_name = String::from("ekm");
    let mut k = 256;
    let mut threads = parallel::default_threads();
    let mut dag_cache = true;
    let mut stats = false;
    let (pool_pages, rest) = extract_pool_pages(rest)?;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alg" => {
                let name = it.next().ok_or("missing value for --alg")?;
                if algorithm(name, 1, true).is_none() {
                    return Err(format!("unknown algorithm {name}"));
                }
                alg_name = name.clone();
            }
            "--k" => {
                k = it
                    .next()
                    .ok_or("missing value for --k")?
                    .parse()
                    .map_err(|_| "--k expects a positive integer".to_string())?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("missing value for --threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads expects a positive integer".to_string());
                }
            }
            "--no-dag-cache" => dag_cache = false,
            "--stats" => stats = true,
            "--count" => {} // handled by the caller
            other => return Err(format!("unknown option {other}")),
        }
    }
    let alg = algorithm(&alg_name, threads, dag_cache).expect("validated above");
    Ok(Flags {
        alg,
        alg_name: alg_name.to_ascii_lowercase(),
        k,
        dag_cache,
        stats,
        pool_pages,
    })
}

fn read_document(path: &str) -> Result<natix_xml::Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    natix_xml::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn open_store(path: &str, pool_pages: Option<usize>) -> Result<XmlStore, CliError> {
    let pager = FilePager::open(Path::new(path)).map_err(|e| CliError::store_at(path, &e))?;
    XmlStore::open(Box::new(pager), store_config(pool_pages))
        .map_err(|e| CliError::store_at(path, &e))
}

fn cmd_partition(args: &[String]) -> Result<(), CliError> {
    let file = args.first().ok_or("missing <file.xml>")?;
    let flags = parse_flags(&args[1..])?;
    let doc = read_document(file)?;
    let tree = doc.tree();
    let p = flags
        .alg
        .partition(tree, flags.k)
        .map_err(|e| e.to_string())?;
    let stats = validate(tree, flags.k, &p).map_err(|e| e.to_string())?;
    println!(
        "document   : {} nodes, {} slots",
        tree.len(),
        tree.total_weight()
    );
    println!("algorithm  : {} (K = {})", flags.alg.name(), flags.k);
    println!("partitions : {}", stats.cardinality);
    println!("root weight: {}", stats.root_weight);
    println!("max weight : {}", stats.max_partition_weight);
    println!(
        "lower bound: {} (total weight / K)",
        tree.total_weight().div_ceil(flags.k)
    );
    if flags.stats {
        print_dp_stats(tree, &flags)?;
    }
    Ok(())
}

/// `--stats`: run the DHW/GHDW engine once more with counters enabled and
/// print the structure-sharing and dominance-pruning statistics.
fn print_dp_stats(tree: &natix_tree::Tree, flags: &Flags) -> Result<(), CliError> {
    let run = |cached: bool| -> Result<DpStats, String> {
        let r = match (flags.alg_name.as_str(), cached) {
            ("dhw", true) => dhw_cached_with_statistics(tree, flags.k),
            ("dhw", false) => dhw_with_statistics(tree, flags.k),
            ("ghdw", true) => ghdw_cached_with_statistics(tree, flags.k),
            ("ghdw", false) => ghdw_with_statistics(tree, flags.k),
            _ => return Err(format!("--stats supports dhw/ghdw, not {}", flags.alg_name)),
        };
        Ok(r.map_err(|e| e.to_string())?.1)
    };
    let stats = run(flags.dag_cache)?;
    if flags.dag_cache {
        println!(
            "dag shapes : {} distinct of {} nodes ({:.1}x dedup)",
            stats.dag_distinct,
            stats.dag_nodes,
            stats.dag_dedup_ratio()
        );
        println!(
            "cache hits : {} ({:.1}% of nodes), {} cross-run",
            stats.dag_hits,
            stats.dag_hit_rate() * 100.0,
            stats.dag_cross_run_hits
        );
        println!(
            "pruned     : {} candidates, {} scans cut short",
            stats.pruned_candidates, stats.pruned_scans
        );
    } else {
        println!("dag shapes : (disabled via --no-dag-cache)");
    }
    println!(
        "dp tables  : {} inner nodes, {} rows (avg {:.2} s values), {} cells",
        stats.inner_nodes,
        stats.total_rows,
        stats.avg_rows(),
        stats.total_entries
    );
    println!(
        "workspace  : {} KB peak",
        stats.bytes_allocated.div_ceil(1024)
    );
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), CliError> {
    let file = args.first().ok_or("missing <file.xml>")?;
    let out = args.get(1).ok_or("missing <store.natix>")?;
    let flags = parse_flags(&args[2..])?;
    let doc = read_document(file)?;
    let pager = FilePager::create(Path::new(out)).map_err(|e| CliError::store_at(out, &e))?;
    let store = bulkload_with(
        &doc,
        flags.alg.as_ref(),
        flags.k,
        Box::new(pager),
        StoreConfig {
            record_limit_slots: flags.k,
            ..store_config(flags.pool_pages)
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "loaded {} nodes into {} records on {} pages ({} KB) using {}",
        doc.len(),
        store.record_count(),
        store.page_count(),
        store.occupied_bytes() / 1024,
        flags.alg.name()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let (pool_pages, args) = extract_pool_pages(args)?;
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let query = args.get(1).ok_or("missing XPath query")?;
    let count_only = args.iter().any(|a| a == "--count");
    let mut store = open_store(store_path, pool_pages)?;
    let hits = {
        let mut nav = StoreNavigator::new(&mut store);
        eval_query(&mut nav, query).map_err(|e| match e {
            EvalError::Store(se) => CliError::store(&se),
            other => CliError::new(1, other.to_string()),
        })?
    };
    if count_only {
        println!("{}", hits.len());
    } else {
        for r in &hits {
            let (kind, label) = store
                .with_node(*r, |n| (n.kind, n.label))
                .map_err(|e| CliError::store(&e))?;
            let name = store.label_name(label).to_string();
            let content = store.node_content(*r).map_err(|e| CliError::store(&e))?;
            match (kind, content) {
                (NodeKind::Element, _) => println!("<{name}>"),
                (NodeKind::Attribute, Some(v)) => println!("@{name}=\"{v}\""),
                (_, Some(v)) => println!("{v}"),
                (_, None) => println!("<{name}>"),
            }
        }
        eprintln!("{} result(s)", hits.len());
    }
    let nav = store.nav_stats();
    eprintln!(
        "record crossings: {} ({} decodes, {} cache hits)",
        nav.record_switches, nav.record_decodes, nav.record_cache_hits
    );
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), CliError> {
    let (pool_pages, args) = extract_pool_pages(args)?;
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let degraded = args.iter().any(|a| a == "--degraded");
    if let Some(bad) = args[1..].iter().find(|a| a.as_str() != "--degraded") {
        return Err(format!("unknown option {bad}").into());
    }
    if degraded {
        let pager = FilePager::open(Path::new(store_path))
            .map_err(|e| CliError::store_at(store_path, &e))?;
        let mut store = XmlStore::open_with(
            Box::new(pager),
            store_config(pool_pages),
            OpenMode::Degraded,
        )
        .map_err(|e| CliError::store_at(store_path, &e))?;
        let (doc, damage) = store
            .to_document_degraded()
            .map_err(|e| CliError::store(&e))?;
        println!("{}", doc.to_xml());
        eprintln!("{damage}");
        return Ok(());
    }
    let mut store = open_store(store_path, pool_pages)?;
    let doc = store.to_document().map_err(|e| CliError::store(&e))?;
    println!("{}", doc.to_xml());
    Ok(())
}

/// `natix fsck`: scrub a store file; with `--repair`, salvage the
/// records that still verify and quarantine the rest. Exit 0 when the
/// store is clean (or the repair succeeded); the report goes to stdout.
fn cmd_fsck(args: &[String]) -> Result<(), CliError> {
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let repair = args.iter().any(|a| a == "--repair");
    if let Some(bad) = args[1..].iter().find(|a| a.as_str() != "--repair") {
        return Err(format!("unknown option {bad}").into());
    }
    let mut pager =
        FilePager::open(Path::new(store_path)).map_err(|e| CliError::store_at(store_path, &e))?;
    let report = fsck(&mut pager, repair);
    print!("{report}");
    if report.clean() || report.repaired {
        Ok(())
    } else {
        Err(CliError::new(
            4,
            format!(
                "{store_path}: {} error(s) found{}",
                report.errors(),
                if repair { "; repair failed" } else { "" }
            ),
        ))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let (pool_pages, args) = extract_pool_pages(args)?;
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let mut store = open_store(store_path, pool_pages)?;
    let doc = store.to_document().map_err(|e| CliError::store(&e))?;
    println!("nodes        : {}", doc.len());
    println!("tree weight  : {} slots", doc.total_weight());
    println!("records      : {} live", store.live_record_count());
    println!("pages        : {}", store.page_count());
    println!("occupied     : {} KB", store.occupied_bytes() / 1024);
    println!(
        "avg record   : {:.1} slots",
        doc.total_weight() as f64 / store.live_record_count().max(1) as f64
    );
    Ok(())
}

/// `natix bulkload`: stream a corpus into a sharded collection. The
/// corpus is `--input` files (one document each, in id order) or
/// `--docs N` synthetic small documents from the Table 1 generators.
fn cmd_bulkload(args: &[String]) -> Result<(), CliError> {
    let (pool_pages, args) = extract_pool_pages(args)?;
    let dir = args.first().ok_or("missing <dir>")?.clone();
    let mut inputs: Vec<String> = Vec::new();
    let mut docs = 10_000usize;
    let mut seed = 42u64;
    let mut opts = BulkloadOptions::default();
    let mut k: natix_tree::Weight = 256;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or(format!("missing value for {name}"))?
                .parse::<u64>()
                .map_err(|_| format!("{name} expects a non-negative integer"))
        };
        match a.as_str() {
            "--input" => {
                inputs.push(it.next().ok_or("missing value for --input")?.clone());
            }
            "--docs" => docs = num("--docs")? as usize,
            "--seed" => seed = num("--seed")?,
            "--shards" => opts.shards = num("--shards")? as u32,
            "--threads" => opts.threads = num("--threads")? as usize,
            "--seg-docs" => opts.seg_docs = num("--seg-docs")? as usize,
            "--budget" => opts.sibling_budget = num("--budget")? as usize,
            "--k" => k = num("--k")?,
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    let config = StoreConfig {
        record_limit_slots: k,
        ..store_config(pool_pages)
    };
    let start = std::time::Instant::now();
    let report = if inputs.is_empty() {
        bulkload_collection(
            Path::new(&dir),
            natix_datagen::small_docs(docs, seed),
            config,
            opts,
        )
    } else {
        let mut read = Vec::with_capacity(inputs.len());
        for path in &inputs {
            read.push(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?);
        }
        bulkload_collection(Path::new(&dir), read, config, opts)
    }
    .map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    println!(
        "loaded {} documents ({} records) into {} shard(s) with {} thread(s) in {:.2}s ({:.0} docs/s)",
        report.docs,
        report.records,
        opts.shards,
        opts.threads,
        secs,
        report.docs as f64 / secs.max(1e-9)
    );
    println!(
        "peak resident: loader {} KB, shard pools {} KB",
        report.peak_loader_resident.div_ceil(1024),
        report.peak_pool_resident.div_ceil(1024)
    );
    for (s, n) in report.shard_docs.iter().enumerate() {
        println!("shard {s:>4}: {n} docs");
    }
    Ok(())
}

/// `natix collection`: inspect a sharded collection. `stats` prints a
/// per-shard table, `dump <doc-id>` extracts one document, `fsck`
/// scrubs every shard independently.
fn cmd_collection(args: &[String]) -> Result<(), CliError> {
    let sub = args.first().ok_or("missing subcommand (stats|dump|fsck)")?;
    match sub.as_str() {
        "stats" => {
            let (pool_pages, rest) = extract_pool_pages(&args[1..])?;
            let dir = rest.first().ok_or("missing <dir>")?;
            let mut coll = Collection::open(Path::new(dir), store_config(pool_pages))
                .map_err(|e| format!("{dir}: {e}"))?;
            let stats = coll.stats().map_err(|e| e.to_string())?;
            println!("shards   : {}", coll.shard_count());
            println!("documents: {}", coll.doc_count());
            println!(
                "{:>6} {:>10} {:>12} {:>8}",
                "shard", "docs", "records", "pages"
            );
            for (s, (docs, records, pages)) in stats.iter().enumerate() {
                println!("{s:>6} {docs:>10} {records:>12} {pages:>8}");
            }
            let problems = coll.check().map_err(|e| e.to_string())?;
            if problems.is_empty() {
                println!("consistency: ok");
                Ok(())
            } else {
                for (s, msg) in &problems {
                    eprintln!("shard {s}: {msg}");
                }
                Err(format!("{} shard(s) inconsistent", problems.len()).into())
            }
        }
        "dump" => {
            let (pool_pages, rest) = extract_pool_pages(&args[1..])?;
            let dir = rest.first().ok_or("missing <dir>")?;
            let doc_id: u64 = rest
                .get(1)
                .ok_or("missing <doc-id>")?
                .parse()
                .map_err(|_| "<doc-id> expects a non-negative integer".to_string())?;
            let mut coll = Collection::open(Path::new(dir), store_config(pool_pages))
                .map_err(|e| format!("{dir}: {e}"))?;
            let doc = coll.get_document(doc_id).map_err(|e| e.to_string())?;
            println!("{}", doc.to_xml());
            Ok(())
        }
        "fsck" => {
            let dir = args.get(1).ok_or("missing <dir>")?;
            let repair = args.iter().any(|a| a == "--repair");
            if let Some(bad) = args[2..].iter().find(|a| a.as_str() != "--repair") {
                return Err(format!("unknown option {bad}").into());
            }
            let reports = fsck_collection(Path::new(dir), repair).map_err(|e| e.to_string())?;
            let mut dirty = 0usize;
            for (s, report) in &reports {
                if report.clean() {
                    println!("shard {s}: clean");
                } else {
                    dirty += 1;
                    println!("shard {s}: {} error(s)", report.errors());
                    print!("{report}");
                }
            }
            if dirty == 0 {
                Ok(())
            } else {
                Err(CliError::new(
                    4,
                    format!(
                        "{dirty}/{} shard(s) damaged; healthy shards unaffected",
                        reports.len()
                    ),
                ))
            }
        }
        other => Err(format!("unknown collection subcommand {other}").into()),
    }
}

/// Drop guard for `natix soak`: unless disarmed by a clean finish, it
/// prints the seeds in play and the exact command line to reproduce —
/// on failure exits *and* on panics anywhere in the harness, so a crash
/// never eats the reproduction info.
struct ReplayBanner {
    armed: bool,
    rerun: String,
    seeds: Vec<u64>,
    /// Base seed of the chaos scheduler, when one is in play: any
    /// interleaving failure is reproducible from the per-failure seed
    /// printed above, and the whole campaign from this one.
    chaos_seed: Option<u64>,
}

impl ReplayBanner {
    fn new(rerun: String, seeds: Vec<u64>) -> ReplayBanner {
        ReplayBanner {
            armed: true,
            rerun,
            seeds,
            chaos_seed: None,
        }
    }

    fn with_chaos_seed(mut self, seed: u64) -> ReplayBanner {
        self.chaos_seed = Some(seed);
        self
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ReplayBanner {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        eprintln!("soak: run did not finish cleanly");
        eprintln!("soak: seeds in play: {:?}", self.seeds);
        if let Some(s) = self.chaos_seed {
            eprintln!("soak: chaos scheduler seed: {s} (campaign rerun: natix stress --seed {s})");
        }
        eprintln!("soak: reproduce with: {}", self.rerun);
        eprintln!("soak: shrunk failures above embed `--replay` scripts when available");
    }
}

/// `natix soak`: run the crash/update fuzz campaign (or replay a shrunk
/// failure script). Progress goes to stderr, the summary to stdout; a
/// non-zero exit means at least one shrunk failure was printed.
/// `--corruption` runs the bit-rot sweep instead of the power-cut sweep.
/// `--group-commit` runs the batched-commit crash-prefix sweep: every
/// power-cut point inside a batch must recover to an exact prefix of
/// the acked commits.
fn cmd_soak(args: &[String]) -> Result<(), CliError> {
    let mut quick = false;
    let mut corruption = false;
    let mut group_commit = false;
    let mut bulkload = false;
    let mut serve_soak = false;
    let mut diskfull = false;
    let mut repl = false;
    let mut seed: Option<u64> = None;
    let mut replay_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--corruption" => corruption = true,
            "--group-commit" => group_commit = true,
            "--bulkload" => bulkload = true,
            "--serve" => serve_soak = true,
            "--diskfull" => diskfull = true,
            "--repl" => repl = true,
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("missing value for --seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?,
                );
            }
            "--replay" => {
                replay_path = Some(it.next().ok_or("missing value for --replay")?.clone());
            }
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    if let Some(path) = replay_path {
        let script = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let mut banner = ReplayBanner::new(format!("natix soak --replay {path}"), vec![]);
        let outcome = natix_testkit::replay(&script)?;
        banner.disarm();
        println!(
            "replay ok: {} ops applied ({} skipped), {} crash points",
            outcome.ops_applied, outcome.ops_skipped, outcome.crash_points
        );
        return Ok(());
    }
    if repl {
        if corruption || group_commit || bulkload || serve_soak || diskfull {
            return Err("--repl is mutually exclusive with the other soak sweeps".into());
        }
        let server_bin = std::env::current_exe()
            .map_err(|e| CliError::new(5, format!("cannot locate the natix binary: {e}")))?;
        let mut cfg = if quick {
            natix_testkit::ReplSoakConfig::quick(server_bin)
        } else {
            natix_testkit::ReplSoakConfig::full(server_bin)
        };
        if let Some(s) = seed {
            cfg.seed = s;
        }
        let mut banner = ReplayBanner::new(
            format!(
                "natix soak --repl{} --seed {}",
                if quick { " --quick" } else { "" },
                cfg.seed
            ),
            vec![cfg.seed],
        );
        eprintln!(
            "  repl soak: {} failover rounds, {} updates offered per round",
            cfg.rounds, cfg.updates_per_round
        );
        let report = natix_testkit::run_repl_soak(&cfg);
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        println!(
            "soak ({}, repl): {}",
            if quick { "quick" } else { "full" },
            report.summary()
        );
        return if report.ok() {
            banner.disarm();
            Ok(())
        } else {
            Err(format!("{} failure(s) printed above", report.failures.len()).into())
        };
    }
    if diskfull {
        if corruption || group_commit || bulkload || serve_soak {
            return Err("--diskfull is mutually exclusive with the other soak sweeps".into());
        }
        let mut cfg = if quick {
            natix_testkit::DiskFullConfig::quick()
        } else {
            natix_testkit::DiskFullConfig::full()
        };
        if let Some(s) = seed {
            cfg.fuzz_seeds = vec![s];
        }
        let mut banner = ReplayBanner::new(
            format!(
                "natix soak --diskfull{}{}",
                if quick { " --quick" } else { "" },
                match seed {
                    Some(s) => format!(" --seed {s}"),
                    None => String::new(),
                }
            ),
            cfg.fuzz_seeds.clone(),
        );
        let report = natix_testkit::run_diskfull_campaign(&cfg, |line| eprintln!("  {line}"));
        for f in &report.failures {
            eprintln!("{f}");
        }
        println!(
            "soak ({}, diskfull): {}",
            if quick { "quick" } else { "full" },
            report.summary()
        );
        return if report.ok() {
            banner.disarm();
            Ok(())
        } else {
            Err(format!("{} failure(s) printed above", report.failures.len()).into())
        };
    }
    if serve_soak {
        if corruption || group_commit || bulkload {
            return Err("--serve is mutually exclusive with the other soak sweeps".into());
        }
        let server_bin = std::env::current_exe()
            .map_err(|e| CliError::new(5, format!("cannot locate the natix binary: {e}")))?;
        let mut cfg = if quick {
            natix_testkit::ServeSoakConfig::quick(server_bin)
        } else {
            natix_testkit::ServeSoakConfig::full(server_bin)
        };
        if let Some(s) = seed {
            cfg.seed = s;
        }
        let mut banner = ReplayBanner::new(
            format!(
                "natix soak --serve{} --seed {}",
                if quick { " --quick" } else { "" },
                cfg.seed
            ),
            vec![cfg.seed],
        );
        eprintln!(
            "  serve soak: {} power-cut rounds, {} updates offered per round, {} readers",
            cfg.rounds, cfg.updates_per_round, cfg.readers
        );
        let report = natix_testkit::run_serve_soak(&cfg);
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        println!(
            "soak ({}, serve): {}",
            if quick { "quick" } else { "full" },
            report.summary()
        );
        return if report.ok() {
            banner.disarm();
            Ok(())
        } else {
            Err(format!("{} failure(s) printed above", report.failures.len()).into())
        };
    }
    if bulkload {
        if corruption || group_commit {
            return Err(
                "--bulkload is mutually exclusive with --corruption and --group-commit".into(),
            );
        }
        let cfg = if quick {
            natix_testkit::BulkCampaignConfig::quick()
        } else {
            natix_testkit::BulkCampaignConfig::full()
        };
        let report = natix_testkit::run_bulkload_campaign(&cfg, |line| eprintln!("  {line}"));
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        println!(
            "soak ({}, bulkload): {}",
            if quick { "quick" } else { "full" },
            report.summary()
        );
        return if report.ok() {
            Ok(())
        } else {
            Err(format!("{} failure(s) printed above", report.failures.len()).into())
        };
    }
    if group_commit {
        if corruption {
            return Err("--group-commit and --corruption are mutually exclusive".into());
        }
        let mut cfg = if quick {
            natix_testkit::GroupCommitConfig::quick()
        } else {
            natix_testkit::GroupCommitConfig::full()
        };
        if let Some(s) = seed {
            cfg.fuzz_seeds = vec![s];
        }
        let report = natix_testkit::run_group_commit_campaign(&cfg, |line| eprintln!("  {line}"));
        for (workload, fuzz_seed, batch, f) in &report.failures {
            eprintln!("FAIL {workload} seed={fuzz_seed} batch={batch}: {f}");
        }
        println!(
            "soak ({}, group-commit): {}",
            if quick { "quick" } else { "full" },
            report.summary()
        );
        return if report.ok() {
            Ok(())
        } else {
            Err(format!("{} failure(s) printed above", report.failures.len()).into())
        };
    }
    let mut cfg = if quick {
        natix_testkit::CampaignConfig::quick()
    } else {
        natix_testkit::CampaignConfig::full()
    };
    if let Some(s) = seed {
        cfg.fuzz_seeds = vec![s];
    }
    let mut banner = ReplayBanner::new(
        format!(
            "natix soak{}{}{}",
            if quick { " --quick" } else { "" },
            if corruption { " --corruption" } else { "" },
            match seed {
                Some(s) => format!(" --seed {s}"),
                None => String::new(),
            }
        ),
        cfg.fuzz_seeds.clone(),
    );
    let report = if corruption {
        natix_testkit::run_corruption_campaign(&cfg, |line| eprintln!("  {line}"))
    } else {
        natix_testkit::run_campaign(&cfg, |line| eprintln!("  {line}"))
    };
    for f in &report.failures {
        eprintln!("{f}");
    }
    println!(
        "soak ({}{}): {}",
        if quick { "quick" } else { "full" },
        if corruption { ", corruption" } else { "" },
        report.summary()
    );
    if report.ok() {
        banner.disarm();
        Ok(())
    } else {
        Err(format!(
            "{} failure(s); replay scripts printed above",
            report.failures.len()
        )
        .into())
    }
}

/// `natix stress`: run the deterministic chaos campaign over the
/// concurrent store layer. Progress goes to stderr, the summary to
/// stdout; a non-zero exit means at least one interleaving violated an
/// invariant (each failure prints its seed and a one-command rerun).
fn cmd_stress(args: &[String]) -> Result<(), CliError> {
    let mut quick = false;
    let mut net = false;
    let mut proxy = false;
    let mut leak = false;
    let mut json_path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut runs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--net" => net = true,
            "--proxy" => proxy = true,
            "--leak" => leak = true,
            "--json" => {
                json_path = Some(it.next().ok_or("missing value for --json")?.clone());
            }
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("missing value for --seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?,
                );
            }
            "--runs" => {
                runs = Some(
                    it.next()
                        .ok_or("missing value for --runs")?
                        .parse()
                        .map_err(|_| "--runs expects a positive integer".to_string())?,
                );
            }
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    if net {
        if runs.is_some() {
            return Err("--runs applies to the chaos campaign, not --net".into());
        }
        if proxy && leak {
            return Err("--proxy and --leak are mutually exclusive".into());
        }
        if (proxy || leak) && json_path.is_some() {
            return Err("--json applies to the load sweep, not --proxy/--leak".into());
        }
        if proxy {
            return cmd_stress_proxy(quick, seed);
        }
        if leak {
            return cmd_stress_leak(quick, seed);
        }
        return cmd_stress_net(quick, seed, json_path);
    }
    if proxy || leak {
        return Err("--proxy and --leak apply to --net only".into());
    }
    if json_path.is_some() {
        return Err("--json applies to --net only".into());
    }
    let mut cfg = if quick {
        natix_testkit::ChaosConfig::quick()
    } else {
        natix_testkit::ChaosConfig::full()
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(r) = runs {
        cfg.runs = r;
    }
    let mut banner = ReplayBanner::new(
        format!(
            "natix stress{} --seed {} --runs {}",
            if quick { " --quick" } else { "" },
            cfg.seed,
            cfg.runs
        ),
        vec![cfg.seed],
    )
    .with_chaos_seed(cfg.seed);
    let report = natix_testkit::run_chaos(&cfg, |line| eprintln!("  {line}"));
    for f in &report.failures {
        eprintln!("{f}");
    }
    println!(
        "stress ({}): {}",
        if quick { "quick" } else { "full" },
        report.summary()
    );
    if report.ok() {
        banner.disarm();
        Ok(())
    } else {
        Err(format!(
            "{} interleaving failure(s); seeds and reruns printed above",
            report.failures.len()
        )
        .into())
    }
}

/// `natix stress --net`: the client-facing load harness. Sweeps
/// closed-loop client fleets against an in-process server, prints the
/// per-level latency/throughput/shed table, and writes the sweep as
/// JSON (default `BENCH_serve.json`).
fn cmd_stress_net(
    quick: bool,
    seed: Option<u64>,
    json_path: Option<String>,
) -> Result<(), CliError> {
    let mut cfg = if quick {
        natix_testkit::NetLoadConfig::quick()
    } else {
        natix_testkit::NetLoadConfig::full()
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    eprintln!(
        "  net load: levels {:?}, {} requests/client, xmark scale {}, {} workers, {} pins",
        cfg.levels, cfg.requests_per_client, cfg.scale, cfg.workers, cfg.max_pins
    );
    let report = natix_testkit::run_net_load(&cfg);
    for f in &report.failures {
        eprintln!("FAIL {f}");
    }
    println!(
        "stress ({}, net):\n{}",
        if quick { "quick" } else { "full" },
        report.summary()
    );
    let path = json_path.unwrap_or_else(|| "BENCH_serve.json".to_string());
    let json = net_load_json(&cfg, &report).render_pretty();
    std::fs::write(&path, json + "\n").map_err(|e| CliError::new(5, format!("{path}: {e}")))?;
    println!("wrote {path}");
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{} failure(s) printed above", report.failures.len()).into())
    }
}

/// `natix stress --net --proxy`: the fleet behind the deterministic
/// network fault proxy. Zero protocol errors, zero wedged workers, and
/// epoch consistency are the contract; every injected reset forces a
/// client reconnect that must recover cleanly.
fn cmd_stress_proxy(quick: bool, seed: Option<u64>) -> Result<(), CliError> {
    let mut cfg = if quick {
        natix_testkit::ProxyChaosConfig::quick()
    } else {
        natix_testkit::ProxyChaosConfig::full()
    };
    if let Some(s) = seed {
        cfg.seed = s;
        cfg.plan.seed = s;
    }
    eprintln!(
        "  proxy chaos: {} clients x {} requests, xmark scale {}, plan seed {:#x}",
        cfg.clients, cfg.requests_per_client, cfg.scale, cfg.plan.seed
    );
    let report = natix_testkit::run_proxy_chaos(&cfg);
    for f in &report.failures {
        eprintln!("FAIL {f}");
    }
    println!(
        "stress ({}, net proxy): {}",
        if quick { "quick" } else { "full" },
        report.summary()
    );
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{} failure(s) printed above", report.failures.len()).into())
    }
}

/// `natix stress --net --leak`: the pin-lease starvation scenario. One
/// leaker pins the only admission slot and goes silent; the lease reaper
/// must unstarve the victims within one TTL and unblock reclamation.
fn cmd_stress_leak(quick: bool, seed: Option<u64>) -> Result<(), CliError> {
    let mut cfg = if quick {
        natix_testkit::LeaseLeakConfig::quick()
    } else {
        natix_testkit::LeaseLeakConfig::full()
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    eprintln!(
        "  lease leak: {} victims, ttl {} ms, {} updates, xmark scale {}",
        cfg.victims, cfg.lease_ttl_ms, cfg.updates, cfg.scale
    );
    let report = natix_testkit::run_lease_leak(&cfg);
    for f in &report.failures {
        eprintln!("FAIL {f}");
    }
    println!(
        "stress ({}, net leak): {}",
        if quick { "quick" } else { "full" },
        report.summary()
    );
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{} failure(s) printed above", report.failures.len()).into())
    }
}

/// Render a [`natix_testkit::NetLoadReport`] as the `BENCH_serve.json`
/// document: config, per-level latency percentiles and shed rates, and
/// the server's final counters.
fn net_load_json(
    cfg: &natix_testkit::NetLoadConfig,
    report: &natix_testkit::NetLoadReport,
) -> Json {
    let obj = |fields: Vec<(&str, Json)>| {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let levels = report
        .levels
        .iter()
        .map(|l| {
            obj(vec![
                ("clients", Json::UInt(l.clients as u64)),
                ("completed", Json::UInt(l.completed)),
                ("sheds", Json::UInt(l.sheds)),
                ("updates", Json::UInt(l.updates)),
                ("p50_us", Json::UInt(l.p50_us)),
                ("p99_us", Json::UInt(l.p99_us)),
                ("max_us", Json::UInt(l.max_us)),
                ("elapsed_s", Json::Float(l.elapsed_s)),
                ("rps", Json::Float(l.rps)),
                ("shed_rate", Json::Float(l.shed_rate)),
            ])
        })
        .collect();
    let s = &report.server;
    obj(vec![
        ("bench", Json::Str("serve".to_string())),
        (
            "config",
            obj(vec![
                (
                    "levels",
                    Json::Array(cfg.levels.iter().map(|&c| Json::UInt(c as u64)).collect()),
                ),
                (
                    "requests_per_client",
                    Json::UInt(cfg.requests_per_client as u64),
                ),
                ("xmark_scale", Json::Float(cfg.scale)),
                ("workers", Json::UInt(cfg.workers as u64)),
                ("queue_depth", Json::UInt(cfg.queue_depth as u64)),
                ("max_pins", Json::UInt(cfg.max_pins as u64)),
                ("seed", Json::UInt(cfg.seed)),
            ]),
        ),
        ("levels", Json::Array(levels)),
        (
            "server",
            obj(vec![
                ("connections", Json::UInt(s.connections)),
                ("requests", Json::UInt(s.requests)),
                ("ok", Json::UInt(s.ok)),
                ("errors", Json::UInt(s.errors)),
                ("shed", Json::UInt(s.shed)),
                ("queue_shed", Json::UInt(s.queue_shed)),
                ("proto_errors", Json::UInt(s.proto_errors)),
                ("worker_panics", Json::UInt(s.worker_panics)),
            ]),
        ),
        ("failures", Json::UInt(report.failures.len() as u64)),
    ])
}

/// `natix serve`: run the network daemon until a wire `shutdown` request
/// drains it. The `listening on HOST:PORT` banner line on stdout is the
/// machine-readable readiness signal (the serve soak parses it).
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let (pool_pages, args) = extract_pool_pages(args)?;
    let store = args.first().ok_or("missing <store.natix>")?.clone();
    let mut config = ServeConfig {
        store: std::path::PathBuf::from(&store),
        pool_pages,
        ..ServeConfig::default()
    };
    config.addr = "127.0.0.1:4547".to_string();
    // Workers are thread-per-connection: an idle-but-open connection
    // (e.g. a held session pin) occupies one. Default to more workers
    // than the shed-probe's default pin count so the probe can't starve
    // a default server.
    config.workers = 8;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, CliError> {
            Ok(it
                .next()
                .ok_or(format!("missing value for {name}"))?
                .clone())
        };
        match a.as_str() {
            "--addr" => config.addr = val("--addr")?,
            "--workers" => {
                config.workers = val("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer")?;
            }
            "--queue-depth" => {
                config.queue_depth = val("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth expects a positive integer")?;
            }
            "--max-pins" => {
                config.max_pins = val("--max-pins")?
                    .parse()
                    .map_err(|_| "--max-pins expects a positive integer")?;
            }
            "--read-budget" => {
                config.read_page_budget = val("--read-budget")?
                    .parse()
                    .map_err(|_| "--read-budget expects a non-negative integer")?;
            }
            "--lease-ttl-ms" => {
                // 0 disables the lease reaper: pins live until disconnect.
                config.lease_ttl_ms = val("--lease-ttl-ms")?
                    .parse()
                    .map_err(|_| "--lease-ttl-ms expects a non-negative integer")?;
            }
            "--replica-of" => {
                config.replica_of = Some(val("--replica-of")?);
            }
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    if config.workers == 0 || config.queue_depth == 0 || config.max_pins == 0 {
        return Err("--workers, --queue-depth and --max-pins must be positive".into());
    }
    // The reaper ticks at max(ttl/4, 10ms): a TTL under 40 ms is below
    // the tick granularity and would expire pins erratically. Reject it
    // as a usage error (0 still means "reaper disabled").
    if config.lease_ttl_ms > 0 && config.lease_ttl_ms < 40 {
        return Err(CliError::new(
            2,
            "--lease-ttl-ms must be 0 (disabled) or at least 40 (the lease \
             reaper tick granularity)",
        ));
    }
    let handle = serve_daemon(config.clone()).map_err(|e| match e {
        ServeError::Bind(io) => CliError::new(5, format!("bind {}: {io}", config.addr)),
        ServeError::Store(se) => CliError::store_at(&store, &se),
    })?;
    // A supervisor may parse only the banner line and stop reading our
    // stdout; later prints must not EPIPE-kill a healthy daemon, so
    // write errors on status lines are deliberately ignored.
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "natix serve: listening on {}", handle.addr());
    if let Some(src) = &config.replica_of {
        let _ = writeln!(
            out,
            "natix serve: replica of {src} (read-only until promoted)"
        );
    }
    let _ = writeln!(
        out,
        "natix serve: serving {store} ({} workers, queue depth {}, {} pins); \
         stop with: natix net {} shutdown",
        config.workers,
        config.queue_depth,
        config.max_pins,
        handle.addr()
    );
    let _ = out.flush();
    let summary = handle.join();
    let _ = writeln!(out, "natix serve: drained and stopped; {summary}");
    if summary.worker_panics == 0 {
        Ok(())
    } else {
        Err(format!("{} connection handler panic(s)", summary.worker_panics).into())
    }
}

/// `natix net`: one protocol verb per invocation against a running
/// `natix serve` daemon. Shed responses are retried up to `--retries`
/// times honoring the server's back-off hints; exhausted patience exits
/// with the shed code (3).
fn cmd_net(args: &[String]) -> Result<(), CliError> {
    let addr = args.first().ok_or("missing <addr> (host:port)")?.clone();
    let verb = args
        .get(1)
        .ok_or("missing verb (try: natix net ADDR ping)")?;
    let rest = &args[2..];
    let mut retries = 20u32;
    let mut positional: Vec<String> = Vec::new();
    let mut count_only = false;
    let mut degraded = false;
    let mut pins = 4usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--count" => count_only = true,
            "--degraded" => degraded = true,
            "--retries" => {
                retries = it
                    .next()
                    .ok_or("missing value for --retries")?
                    .parse()
                    .map_err(|_| "--retries expects a non-negative integer")?;
            }
            "--pins" => {
                pins = it
                    .next()
                    .ok_or("missing value for --pins")?
                    .parse()
                    .map_err(|_| "--pins expects a positive integer")?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}").into())
            }
            other => positional.push(other.to_string()),
        }
    }
    let connect = || Client::connect(addr.as_str()).map_err(|e| CliError::client(&e));
    // One verb, one well-typed exchange; every unexpected response kind
    // maps onto the structured exit codes.
    let exchange = |c: &mut Client, req: &Request| -> Result<natix_server::Response, CliError> {
        let (resp, shed_retries) = c
            .request_retry(req, retries)
            .map_err(|e| CliError::client(&e))?;
        if shed_retries > 0 {
            eprintln!("(admitted after {shed_retries} retry-after responses)");
        }
        if let ResponseBody::Error { kind, message } = &resp.body {
            return Err(CliError::response(*kind, message));
        }
        Ok(resp)
    };
    match verb.as_str() {
        "ping" => {
            let mut c = connect()?;
            let resp = exchange(&mut c, &Request::Ping)?;
            println!("pong (committed epoch {})", resp.epoch);
            Ok(())
        }
        "query" => {
            let xpath = positional.first().ok_or("missing '<xpath>'")?;
            let mut c = connect()?;
            let resp = exchange(
                &mut c,
                &Request::Query {
                    xpath: xpath.clone(),
                    count_only,
                },
            )?;
            let ResponseBody::QueryResult { count, lines } = resp.body else {
                return Err(format!("unexpected response: {:?}", resp.body).into());
            };
            if count_only {
                println!("{count}");
            } else {
                for line in &lines {
                    println!("{line}");
                }
                eprintln!("{count} result(s) at epoch {}", resp.epoch);
            }
            Ok(())
        }
        "dump" => {
            let mut c = connect()?;
            let resp = exchange(
                &mut c,
                &Request::Dump {
                    degraded_ok: degraded,
                },
            )?;
            let ResponseBody::DumpResult { full, xml, damage } = resp.body else {
                return Err(format!("unexpected response: {:?}", resp.body).into());
            };
            println!("{xml}");
            if !full {
                eprintln!("degraded read: {damage}");
            }
            Ok(())
        }
        "stats" => {
            let mut c = connect()?;
            let resp = exchange(&mut c, &Request::Stats)?;
            let ResponseBody::StatsText(text) = resp.body else {
                return Err(format!("unexpected response: {:?}", resp.body).into());
            };
            print!("{text}");
            Ok(())
        }
        "fsck" => {
            let mut c = connect()?;
            let resp = exchange(&mut c, &Request::Fsck)?;
            let ResponseBody::FsckResult { clean, report } = resp.body else {
                return Err(format!("unexpected response: {:?}", resp.body).into());
            };
            print!("{report}");
            if clean {
                Ok(())
            } else {
                Err(CliError::new(4, "served store is damaged (report above)"))
            }
        }
        "update" => {
            let target = positional.first().ok_or("missing '<xpath>' target")?;
            let op_name = positional
                .get(1)
                .ok_or("missing op (append-element|append-text|insert-before|delete)")?;
            let value = positional.get(2).cloned();
            let need_value = |v: Option<String>| -> Result<String, CliError> {
                v.ok_or_else(|| CliError::new(2, format!("{op_name} needs a VALUE argument")))
            };
            let op = match op_name.as_str() {
                "append-element" => UpdateOp::AppendElement {
                    name: need_value(value)?,
                },
                "append-text" => UpdateOp::AppendText {
                    text: need_value(value)?,
                },
                "insert-before" => UpdateOp::InsertBefore {
                    name: need_value(value)?,
                },
                "delete" => UpdateOp::DeleteSubtree,
                other => return Err(CliError::new(2, format!("unknown update op {other}"))),
            };
            let mut c = connect()?;
            let resp = exchange(
                &mut c,
                &Request::Update {
                    target: target.clone(),
                    op,
                },
            )?;
            println!("updated; committed epoch {}", resp.epoch);
            Ok(())
        }
        "shed-probe" => cmd_shed_probe(&addr, pins, retries),
        "promote" => {
            // Catch-up-then-promote: wait until the replica's applied
            // epoch stops advancing (three identical consecutive polls,
            // bounded), then promote. A replica that is still draining
            // batches from a live primary keeps advancing; once the
            // primary is dead the epoch settles within a poll or two.
            let mut c = connect()?;
            let mut last = exchange(&mut c, &Request::Ping)?.epoch;
            let mut stable = 0u32;
            for _ in 0..40 {
                if stable >= 3 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(250));
                let now = exchange(&mut c, &Request::Ping)?.epoch;
                if now == last {
                    stable += 1;
                } else {
                    stable = 0;
                    last = now;
                }
            }
            let resp = exchange(&mut c, &Request::ReplPromote)?;
            if !matches!(resp.body, ResponseBody::ReplPromoted) {
                return Err(format!("unexpected response: {:?}", resp.body).into());
            }
            println!("promoted to primary; fencing epoch {}", resp.epoch);
            Ok(())
        }
        "shutdown" => {
            let mut c = connect()?;
            let resp = exchange(&mut c, &Request::Shutdown)?;
            if matches!(resp.body, ResponseBody::ShuttingDown) {
                println!("server is draining and shutting down");
                Ok(())
            } else {
                Err(format!("unexpected response: {:?}", resp.body).into())
            }
        }
        other => Err(CliError::new(2, format!("unknown net verb {other}"))),
    }
}

/// The deterministic backpressure round trip: hold `pins` session pins,
/// demand one more (expecting a typed retry-after), then release a pin
/// and retry honoring the hints until admitted.
fn cmd_shed_probe(addr: &str, pins: usize, retries: u32) -> Result<(), CliError> {
    let mut holders: Vec<Client> = Vec::new();
    for i in 0..pins {
        let mut c = Client::connect(addr).map_err(|e| CliError::client(&e))?;
        match c
            .request(&Request::Begin)
            .map_err(|e| CliError::client(&e))?
            .body
        {
            ResponseBody::SessionPinned => holders.push(c),
            ResponseBody::RetryAfter { .. } => {
                // The budget is smaller than --pins; saturated already.
                eprintln!("pin budget saturated after {i} pins (smaller than --pins {pins})");
                break;
            }
            other => return Err(format!("pin {i}: unexpected response {other:?}").into()),
        }
    }
    if holders.is_empty() {
        return Err("could not hold a single pin; is the server idle?".into());
    }
    let mut probe = Client::connect(addr).map_err(|e| CliError::client(&e))?;
    let resp = probe
        .request(&Request::Begin)
        .map_err(|e| CliError::client(&e))?;
    let ResponseBody::RetryAfter { kind, millis, what } = &resp.body else {
        return Err(format!(
            "expected a shed response with {} pins held, got {:?} — \
             is the server's --max-pins larger than --pins?",
            holders.len(),
            resp.body
        )
        .into());
    };
    println!(
        "shed observed: {} pins held, next begin got retry-after {millis} ms ({kind:?}, {what})",
        holders.len()
    );
    // Release one pin (disconnect releases the session) and honor the
    // advertised back-off: the probe must eventually be admitted.
    drop(holders.pop());
    let (resp, used) = probe
        .request_retry(&Request::Begin, retries.max(1))
        .map_err(|e| CliError::client(&e))?;
    if !matches!(resp.body, ResponseBody::SessionPinned) {
        return Err(format!("retry after release: unexpected response {:?}", resp.body).into());
    }
    println!(
        "retry honored: admitted at epoch {} after {used} retry-after response(s)",
        resp.epoch
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "partition" => cmd_partition(rest),
        "load" => cmd_load(rest),
        "query" => cmd_query(rest),
        "dump" => cmd_dump(rest),
        "stats" => cmd_stats(rest),
        "fsck" => cmd_fsck(rest),
        "bulkload" => cmd_bulkload(rest),
        "collection" => cmd_collection(rest),
        "soak" => cmd_soak(rest),
        "stress" => cmd_stress(rest),
        "serve" => cmd_serve(rest),
        "net" => cmd_net(rest),
        "--help" | "-h" | "help" => return usage(),
        other => Err(CliError::new(2, format!("unknown command {other}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("natix: {}", e.msg);
            ExitCode::from(e.code.max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: the store-error → exit-code mapping. Sheds
    /// (overloaded and timed-out) exit 3, corruption 4, I/O 5, invalid
    /// updates stay generic failures.
    #[test]
    fn store_error_exit_codes() {
        let overloaded = StoreError::Overloaded {
            what: "read",
            inflight: 8,
            limit: 8,
        };
        assert_eq!(CliError::store(&overloaded).code, 3);
        let timeout = StoreError::Timeout {
            what: "read",
            budget: 64,
        };
        assert_eq!(CliError::store(&timeout).code, 3);
        let corrupt = StoreError::Corrupt {
            what: "page checksum",
            page: Some(3),
            class: None,
            record: None,
            expected: Some(1),
            found: Some(2),
        };
        assert_eq!(CliError::store(&corrupt).code, 4);
        let io = StoreError::Io {
            source: std::io::Error::other("disk on fire"),
            page: None,
            op: "read",
        };
        assert_eq!(CliError::store(&io).code, 5);
        assert_eq!(CliError::store(&StoreError::InvalidUpdate("no")).code, 1);
        assert_eq!(CliError::store(&StoreError::BadPage(9)).code, 4);
    }

    /// Client-side failures map the same way: exhausted retry-after
    /// patience is a shed (3), transport failure is I/O (5).
    #[test]
    fn client_error_exit_codes() {
        let shed = ClientError::StillOverloaded {
            attempts: 5,
            what: "read".to_string(),
        };
        assert_eq!(CliError::client(&shed).code, 3);
        let io = ClientError::Proto(ProtoError::Io(std::io::Error::other("reset")));
        assert_eq!(CliError::client(&io).code, 5);
        let proto = ClientError::Proto(ProtoError::Malformed("bad"));
        assert_eq!(CliError::client(&proto).code, 1);
        assert_eq!(
            CliError::response(natix_server::ErrKind::Corrupt, "x").code,
            4
        );
        assert_eq!(CliError::response(natix_server::ErrKind::Io, "x").code, 5);
        assert_eq!(
            CliError::response(natix_server::ErrKind::BadRequest, "x").code,
            1
        );
    }

    /// Plain-string errors (usage and similar) stay exit 1 so existing
    /// scripts keep their meaning.
    #[test]
    fn string_errors_stay_generic() {
        let e: CliError = "something broke".into();
        assert_eq!(e.code, 1);
        let e: CliError = String::from("still broke").into();
        assert_eq!(e.code, 1);
    }
}
