//! `natix` — command-line front end for the Natix sibling-partitioning
//! store.
//!
//! ```text
//! natix partition <file.xml> [--alg ekm|dhw|ghdw|km|rs|dfs|bfs|lukes] [--k 256] [--threads N]
//! natix load      <file.xml> <store.natix> [--alg ekm] [--k 256] [--threads N]
//! natix query     <store.natix> '<xpath>' [--count]
//! natix dump      <store.natix>
//! natix stats     <store.natix>
//! ```
//!
//! `--threads N` runs the table-building algorithms (DHW, GHDW) on N worker
//! threads; the output is identical to the sequential run. It defaults to
//! the machine's available parallelism and is ignored by the single-pass
//! heuristics.

use std::path::Path;
use std::process::ExitCode;

use natix_core::{
    parallel, Bfs, Dfs, Dhw, Ekm, Ghdw, Km, Lukes, ParallelDhw, ParallelGhdw, Partitioner, Rs,
};
use natix_store::{bulkload_with, FilePager, StoreConfig, XmlStore};
use natix_tree::validate;
use natix_xml::NodeKind;
use natix_xpath::{eval_query, StoreNavigator};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  natix partition <file.xml> [--alg NAME] [--k SLOTS] [--threads N]\n  \
         natix load <file.xml> <store.natix> [--alg NAME] [--k SLOTS] [--threads N]\n  \
         natix query <store.natix> '<xpath>' [--count]\n  \
         natix dump <store.natix>\n  \
         natix stats <store.natix>\n\
         algorithms: ekm (default), dhw, ghdw, km, rs, dfs, bfs, lukes\n\
         --threads N parallelizes dhw/ghdw (default: available parallelism)"
    );
    ExitCode::from(2)
}

/// Resolve an algorithm name. `threads > 1` selects the parallel engines
/// for the table-building algorithms (identical output, see
/// `natix_core::parallel`); the single-pass heuristics ignore it.
fn algorithm(name: &str, threads: usize) -> Option<Box<dyn Partitioner>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "ekm" => Box::new(Ekm),
        "dhw" if threads > 1 => Box::new(ParallelDhw::new(threads)),
        "dhw" => Box::new(Dhw),
        "ghdw" if threads > 1 => Box::new(ParallelGhdw::new(threads)),
        "ghdw" => Box::new(Ghdw),
        "km" => Box::new(Km),
        "rs" => Box::new(Rs),
        "dfs" => Box::new(Dfs),
        "bfs" => Box::new(Bfs),
        "lukes" => Box::new(Lukes),
        _ => return None,
    })
}

struct Flags {
    alg: Box<dyn Partitioner>,
    k: u64,
}

fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut alg_name = String::from("ekm");
    let mut k = 256;
    let mut threads = parallel::default_threads();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alg" => {
                let name = it.next().ok_or("missing value for --alg")?;
                if algorithm(name, 1).is_none() {
                    return Err(format!("unknown algorithm {name}"));
                }
                alg_name = name.clone();
            }
            "--k" => {
                k = it
                    .next()
                    .ok_or("missing value for --k")?
                    .parse()
                    .map_err(|_| "--k expects a positive integer".to_string())?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("missing value for --threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads expects a positive integer".to_string());
                }
            }
            "--count" => {} // handled by the caller
            other => return Err(format!("unknown option {other}")),
        }
    }
    let alg = algorithm(&alg_name, threads).expect("validated above");
    Ok(Flags { alg, k })
}

fn read_document(path: &str) -> Result<natix_xml::Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    natix_xml::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn open_store(path: &str) -> Result<XmlStore, String> {
    let pager = FilePager::open(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    XmlStore::open(Box::new(pager), StoreConfig::default()).map_err(|e| format!("{path}: {e}"))
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("missing <file.xml>")?;
    let flags = parse_flags(&args[1..])?;
    let doc = read_document(file)?;
    let tree = doc.tree();
    let p = flags
        .alg
        .partition(tree, flags.k)
        .map_err(|e| e.to_string())?;
    let stats = validate(tree, flags.k, &p).map_err(|e| e.to_string())?;
    println!(
        "document   : {} nodes, {} slots",
        tree.len(),
        tree.total_weight()
    );
    println!("algorithm  : {} (K = {})", flags.alg.name(), flags.k);
    println!("partitions : {}", stats.cardinality);
    println!("root weight: {}", stats.root_weight);
    println!("max weight : {}", stats.max_partition_weight);
    println!(
        "lower bound: {} (total weight / K)",
        tree.total_weight().div_ceil(flags.k)
    );
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("missing <file.xml>")?;
    let out = args.get(1).ok_or("missing <store.natix>")?;
    let flags = parse_flags(&args[2..])?;
    let doc = read_document(file)?;
    let pager = FilePager::create(Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    let store = bulkload_with(
        &doc,
        flags.alg.as_ref(),
        flags.k,
        Box::new(pager),
        StoreConfig {
            record_limit_slots: flags.k,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "loaded {} nodes into {} records on {} pages ({} KB) using {}",
        doc.len(),
        store.record_count(),
        store.page_count(),
        store.occupied_bytes() / 1024,
        flags.alg.name()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let query = args.get(1).ok_or("missing XPath query")?;
    let count_only = args.iter().any(|a| a == "--count");
    let mut store = open_store(store_path)?;
    let hits = {
        let mut nav = StoreNavigator::new(&mut store);
        eval_query(&mut nav, query).map_err(|e| e.to_string())?
    };
    if count_only {
        println!("{}", hits.len());
    } else {
        for r in &hits {
            let (kind, label) = store
                .with_node(*r, |n| (n.kind, n.label))
                .map_err(|e| e.to_string())?;
            let name = store.label_name(label).to_string();
            let content = store.node_content(*r).map_err(|e| e.to_string())?;
            match (kind, content) {
                (NodeKind::Element, _) => println!("<{name}>"),
                (NodeKind::Attribute, Some(v)) => println!("@{name}=\"{v}\""),
                (_, Some(v)) => println!("{v}"),
                (_, None) => println!("<{name}>"),
            }
        }
        eprintln!("{} result(s)", hits.len());
    }
    let nav = store.nav_stats();
    eprintln!(
        "record crossings: {} ({} decodes, {} cache hits)",
        nav.record_switches, nav.record_decodes, nav.record_cache_hits
    );
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), String> {
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let mut store = open_store(store_path)?;
    let doc = store.to_document().map_err(|e| e.to_string())?;
    println!("{}", doc.to_xml());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let store_path = args.first().ok_or("missing <store.natix>")?;
    let mut store = open_store(store_path)?;
    let doc = store.to_document().map_err(|e| e.to_string())?;
    println!("nodes        : {}", doc.len());
    println!("tree weight  : {} slots", doc.total_weight());
    println!("records      : {} live", store.live_record_count());
    println!("pages        : {}", store.page_count());
    println!("occupied     : {} KB", store.occupied_bytes() / 1024);
    println!(
        "avg record   : {:.1} slots",
        doc.total_weight() as f64 / store.live_record_count().max(1) as f64
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "partition" => cmd_partition(rest),
        "load" => cmd_load(rest),
        "query" => cmd_query(rest),
        "dump" => cmd_dump(rest),
        "stats" => cmd_stats(rest),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("natix: {msg}");
            ExitCode::FAILURE
        }
    }
}
