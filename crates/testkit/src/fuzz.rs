//! Model-based crash/update fuzzing.
//!
//! Every run bulkloads a generated document onto an in-memory disk, then
//! drives the store and the [`ModelTree`] oracle through the same seeded
//! trace of update operations. After each step the store must serialize
//! to exactly the oracle's document, pass the full record-graph
//! consistency check, and — in crash mode — survive a power cut (clean
//! or torn) at every write event of the step: reopening the surviving
//! bytes must recover to the pre- or post-step document, never a third
//! state.
//!
//! Failing traces are shrunk to a minimal reproduction and rendered as a
//! replayable script (see [`crate::replay`]) plus a ready-to-paste
//! regression test.

use std::collections::HashSet;

use natix_core::Ekm;
use natix_datagen::evaluation_suite;
use natix_store::{
    bulkload_with, corrupt_checksum_of_class, corrupt_page_of_class, fsck, FaultInjectingPager,
    FaultSchedule, NodeRef, OpenMode, PageClass, SharedMemPager, StoreConfig, StoreResult,
    XmlStore,
};
use natix_xml::{node_weight, Document, NodeKind};

use crate::model::ModelTree;
use crate::ops::{format_op, generate_trace, name_for, parse_op, text_for, Op};

/// How a trace run exercises the fault-injection layer.
#[derive(Clone, Copy, Debug)]
pub enum CrashMode {
    /// Fault-free: oracle equivalence and consistency checks only.
    None,
    /// After each step, replay the step from a pre-step disk snapshot
    /// with a power cut at write event 1, 2, 3, ... (alternating clean
    /// and torn cuts) until the step commits, plus one transient
    /// write-error probe. `max_points_per_op` caps the sweep per step
    /// (0 = sweep every write event).
    Sweep { max_points_per_op: u64 },
}

/// Statistics from a successful trace run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOutcome {
    pub ops_applied: u64,
    pub ops_skipped: u64,
    pub crash_points: u64,
}

/// A failed step inside a trace run.
#[derive(Clone, Debug)]
pub struct TraceFailure {
    /// Index into the trace of the failing op.
    pub step: usize,
    /// `Some((n, torn))` when the failure came from the crash sweep at
    /// power-cut write event `n`.
    pub crash: Option<(u64, bool)>,
    pub message: String,
}

/// One generated document plus the identity needed to regenerate it.
pub struct Workload {
    pub name: String,
    pub scale: f64,
    pub gen_seed: u64,
    pub doc: Document,
}

/// The six Table 1 evaluation documents at `scale`, deterministically
/// regenerable from `(name, scale, gen_seed)`.
pub fn workloads(scale: f64, gen_seed: u64) -> Vec<Workload> {
    evaluation_suite(scale, gen_seed)
        .into_iter()
        .map(|(name, doc)| Workload {
            name: name.to_string(),
            scale,
            gen_seed,
            doc,
        })
        .collect()
}

pub fn workload_by_name(name: &str, scale: f64, gen_seed: u64) -> Option<Workload> {
    workloads(scale, gen_seed)
        .into_iter()
        .find(|w| w.name == name)
}

/// Smallest record limit that can hold every node of `doc` and every
/// node the fuzzer may insert. Requested limits are clamped up to this
/// so that generated workloads never trip the per-node weight guard.
pub fn min_record_limit(doc: &Document) -> u64 {
    let fuzz_text = node_weight(NodeKind::Text, text_for(0).len());
    doc.tree().max_node_weight().max(fuzz_text)
}

/// Live elements of the store in document (preorder) order; position 0
/// is the root. Mirrors [`ModelTree::elements`].
pub(crate) fn store_elements(store: &mut XmlStore) -> StoreResult<Vec<NodeRef>> {
    let root = store.root()?;
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        out.push(r);
        let mut kids = Vec::new();
        store.for_each_child(r, |c, kind, _| {
            if kind == NodeKind::Element {
                kids.push(c);
            }
        })?;
        stack.extend(kids.into_iter().rev());
    }
    Ok(out)
}

/// Apply one (non-skipped) op to the store, resolving the target against
/// this store instance's current element preorder.
pub(crate) fn apply_store(store: &mut XmlStore, op: &Op) -> StoreResult<()> {
    let els = store_elements(store)?;
    match *op {
        Op::AppendElement { target, tag } => store
            .append_child(
                els[target % els.len()],
                NodeKind::Element,
                &name_for(tag),
                None,
            )
            .map(|_| ()),
        Op::AppendText { target, tag } => store
            .append_child(
                els[target % els.len()],
                NodeKind::Text,
                "#text",
                Some(&text_for(tag)),
            )
            .map(|_| ()),
        Op::InsertBefore { target, tag } => store
            .insert_before(
                els[target % els.len()],
                NodeKind::Element,
                &name_for(tag),
                None,
            )
            .map(|_| ()),
        Op::Delete { target } => store.delete_subtree(els[target % els.len()]),
    }
}

/// Apply one (non-skipped) op to the oracle.
pub(crate) fn apply_model(model: &mut ModelTree, op: &Op) {
    let els = model.elements();
    match *op {
        Op::AppendElement { target, tag } => {
            model.append_child(
                els[target % els.len()],
                NodeKind::Element,
                &name_for(tag),
                None,
            );
        }
        Op::AppendText { target, tag } => {
            model.append_child(
                els[target % els.len()],
                NodeKind::Text,
                "#text",
                Some(&text_for(tag)),
            );
        }
        Op::InsertBefore { target, tag } => {
            model.insert_before(
                els[target % els.len()],
                NodeKind::Element,
                &name_for(tag),
                None,
            );
        }
        Op::Delete { target } => model.delete_subtree(els[target % els.len()]),
    }
}

fn full_check(store: &mut XmlStore, want_xml: &str, what: &str) -> Result<(), String> {
    store
        .check_consistency()
        .map_err(|e| format!("{what}: inconsistent store: {e}"))?;
    let got = store
        .to_document()
        .map_err(|e| format!("{what}: serialization failed: {e}"))?
        .to_xml();
    if got != want_xml {
        return Err(format!(
            "{what}: document mismatch\n  got:  {got}\n  want: {want_xml}"
        ));
    }
    Ok(())
}

/// Run `trace` against a fresh store bulkloaded from `doc` with record
/// limit `k` (clamped up to [`min_record_limit`]). See the module docs
/// for the invariants checked per step.
pub fn run_trace(
    doc: &Document,
    k: u64,
    trace: &[Op],
    mode: CrashMode,
) -> Result<RunOutcome, TraceFailure> {
    let k = k.max(min_record_limit(doc));
    let config = StoreConfig {
        record_limit_slots: k,
        ..Default::default()
    };
    let disk = SharedMemPager::new();
    let fail = |step: usize, crash: Option<(u64, bool)>, message: String| TraceFailure {
        step,
        crash,
        message,
    };
    let mut store = bulkload_with(doc, &Ekm, k, Box::new(disk.clone()), config)
        .map_err(|e| fail(0, None, format!("bulkload failed: {e}")))?;
    let mut model = ModelTree::from_document(doc);
    let mut cur_xml = model.to_xml();
    full_check(&mut store, &cur_xml, "bulkload").map_err(|m| fail(0, None, m))?;

    let mut out = RunOutcome::default();
    for (step, op) in trace.iter().enumerate() {
        if op.skipped(model.element_count()) {
            out.ops_skipped += 1;
            continue;
        }
        // Predict the post-state on a copy of the oracle.
        let mut post_model = model.clone();
        apply_model(&mut post_model, op);
        let post_xml = post_model.to_xml();

        // Pre-step disk snapshot for the crash sweep. The previous commit
        // checkpointed, so the snapshot is the complete pre-step state.
        let snap = match mode {
            CrashMode::Sweep { .. } => Some(disk.snapshot()),
            CrashMode::None => None,
        };

        // Fault-free mainline: the live store must reach the post-state.
        apply_store(&mut store, op).map_err(|e| fail(step, None, format!("op failed: {e}")))?;
        full_check(&mut store, &post_xml, "mainline").map_err(|m| fail(step, None, m))?;

        if let Some(snap) = snap {
            let CrashMode::Sweep { max_points_per_op } = mode else {
                unreachable!()
            };
            // Power-cut sweep: crash at write event n = 1, 2, ... of this
            // step, alternating clean and torn cuts, until the step
            // commits under the cut (or the per-step cap is reached).
            let mut n = 1u64;
            loop {
                if max_points_per_op > 0 && n > max_points_per_op {
                    break;
                }
                let torn = (n + step as u64).is_multiple_of(2);
                let disk2 = SharedMemPager::from_snapshot(&snap);
                let faulty = FaultInjectingPager::new(
                    Box::new(disk2.clone()),
                    FaultSchedule::power_cut(n, torn),
                );
                // The snapshot is checkpointed: opening performs no writes
                // and must succeed.
                let mut s2 = XmlStore::open(Box::new(faulty), config)
                    .map_err(|e| fail(step, Some((n, torn)), format!("open before cut: {e}")))?;
                let r = apply_store(&mut s2, op);
                drop(s2);
                let mut re = XmlStore::open(Box::new(disk2.clone()), config).map_err(|e| {
                    fail(step, Some((n, torn)), format!("recovery open failed: {e}"))
                })?;
                re.check_consistency().map_err(|e| {
                    fail(
                        step,
                        Some((n, torn)),
                        format!("recovered store inconsistent: {e}"),
                    )
                })?;
                let got = re
                    .to_document()
                    .map_err(|e| {
                        fail(
                            step,
                            Some((n, torn)),
                            format!("recovered serialization: {e}"),
                        )
                    })?
                    .to_xml();
                // Recovery-then-scrub: whatever state the cut left, the
                // recovered disk must pass fsck (crash debris is fine,
                // damage to the committed state is not).
                drop(re);
                let scrub = fsck(&mut disk2.clone(), false);
                if !scrub.clean() {
                    return Err(fail(
                        step,
                        Some((n, torn)),
                        format!("post-recovery scrub not clean:\n{scrub}"),
                    ));
                }
                out.crash_points += 1;
                if r.is_ok() {
                    // The cut fired at or past the end of the step's write
                    // window: it must have committed.
                    if got != post_xml {
                        return Err(fail(
                            step,
                            Some((n, torn)),
                            format!("committed step lost after crash\n  got: {got}"),
                        ));
                    }
                    break;
                }
                if got != cur_xml && got != post_xml {
                    return Err(fail(
                        step,
                        Some((n, torn)),
                        format!(
                            "crash recovered to a third state\n  got:  {got}\n  pre:  {cur_xml}\n  post: {post_xml}"
                        ),
                    ));
                }
                n += 1;
                if n > 100_000 {
                    return Err(fail(
                        step,
                        Some((n, torn)),
                        "crash sweep did not terminate".to_string(),
                    ));
                }
            }

            // Transient write-error probe: the *live* handle must survive
            // and land in the pre- or post-state.
            let at = 1 + (step as u64 % 7);
            let disk3 = SharedMemPager::from_snapshot(&snap);
            let faulty =
                FaultInjectingPager::new(Box::new(disk3.clone()), FaultSchedule::write_error(at));
            let mut s3 = XmlStore::open(Box::new(faulty), config)
                .map_err(|e| fail(step, None, format!("open for error probe: {e}")))?;
            let r = apply_store(&mut s3, op);
            s3.check_consistency().map_err(|e| {
                fail(
                    step,
                    None,
                    format!("live store broken by write error at {at}: {e}"),
                )
            })?;
            let live = s3
                .to_document()
                .map_err(|e| fail(step, None, format!("error-probe serialization: {e}")))?
                .to_xml();
            let want_live = if r.is_ok() { &post_xml } else { &cur_xml };
            if &live != want_live {
                return Err(fail(
                    step,
                    None,
                    format!(
                        "write error at {at} left a wrong live state (op {}): {live}",
                        if r.is_ok() {
                            "succeeded"
                        } else {
                            "rolled back"
                        }
                    ),
                ));
            }
            out.crash_points += 1;
        }

        model = post_model;
        cur_xml = post_xml;
        out.ops_applied += 1;
    }
    Ok(out)
}

/// Statistics from a successful corruption-sweep run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CorruptionOutcome {
    pub ops_applied: u64,
    pub ops_skipped: u64,
    /// Corruption injections exercised (one per hit page class/variant).
    pub injections: u64,
    /// Injections where `fsck` repair salvaged the store.
    pub repairs: u64,
}

/// Every page class the sweep rots, referenced or not.
const SWEEP_CLASSES: [PageClass; 6] = [
    PageClass::Header,
    PageClass::Record,
    PageClass::Overflow,
    PageClass::Catalog,
    PageClass::Journal,
    PageClass::Free,
];

/// Corrupt every page class of a committed snapshot — payload bit-rot
/// and checksum-field damage — and assert detect-or-correct, never
/// silently wrong:
///
/// - A strict open + full read either returns exactly the committed
///   document (redundant header slot, unreferenced debris) or fails with
///   a corruption-classified error. Any other document is a failure.
/// - On detection, `fsck` repair must either salvage the store — leaving
///   a clean post-scrub, a degraded read equal to the oracle's partial
///   document, and a damage report that matches the quarantine exactly —
///   or refuse with a fatal finding naming what was lost.
fn corruption_sweep(
    snap: &[u8],
    config: StoreConfig,
    expect_xml: &str,
    step: usize,
    out: &mut CorruptionOutcome,
) -> Result<(), TraceFailure> {
    let fail = |message: String| TraceFailure {
        step,
        crash: None,
        message,
    };
    for (ci, &class) in SWEEP_CLASSES.iter().enumerate() {
        for variant in 0..2u64 {
            let mut branch = SharedMemPager::from_snapshot(snap);
            // Distinct seed per (step, class, variant) so repeated sweeps
            // rot different pages of multi-page classes.
            let seed = (step as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(ci as u64 * 2 + variant);
            let hit = if variant == 0 {
                corrupt_page_of_class(&mut branch, seed, class, 3)
            } else {
                corrupt_checksum_of_class(&mut branch, seed, class)
            }
            .map_err(|e| fail(format!("{class:?} injection failed: {e}")))?;
            let Some(page) = hit else {
                continue; // no page of this class in this snapshot
            };
            out.injections += 1;
            let kind = if variant == 0 { "payload" } else { "checksum" };
            let ctx = format!("{class:?} {kind} corruption on page {page}");

            match XmlStore::open(Box::new(branch.clone()), config).and_then(|mut s| s.to_document())
            {
                Ok(doc) => {
                    let got = doc.to_xml();
                    if got != expect_xml {
                        return Err(fail(format!(
                            "SILENTLY WRONG read after {ctx}\n  got:  {got}\n  want: {expect_xml}"
                        )));
                    }
                    // Tolerated: the damage was redundant (fallback header
                    // slot) or unreferenced debris, and the read stayed
                    // exactly right.
                }
                Err(e) if e.is_corruption() => {
                    let mut raw = branch.clone();
                    let rep = fsck(&mut raw, true);
                    if !rep.repaired {
                        if !rep.findings.iter().any(|f| {
                            f.code == "root-unrecoverable" || f.code == "no-catalog-recoverable"
                        }) {
                            return Err(fail(format!(
                                "repair gave up without a fatal finding after {ctx}:\n{rep}"
                            )));
                        }
                        continue;
                    }
                    out.repairs += 1;
                    let post = fsck(&mut raw.clone(), false);
                    if !post.clean() {
                        return Err(fail(format!(
                            "store still dirty after repair of {ctx}:\n{post}"
                        )));
                    }
                    let quarantine: HashSet<u32> = rep.quarantined.iter().copied().collect();
                    let mut degraded =
                        XmlStore::open_with(Box::new(raw.clone()), config, OpenMode::Degraded)
                            .map_err(|e| {
                                fail(format!("degraded reopen after repair of {ctx}: {e}"))
                            })?;
                    let (got_doc, damage) = degraded
                        .to_document_degraded()
                        .map_err(|e| fail(format!("degraded read after repair of {ctx}: {e}")))?;
                    let missing = damage.records();
                    if missing != quarantine {
                        return Err(fail(format!(
                            "damage report {missing:?} disagrees with quarantine \
                             {quarantine:?} after {ctx}"
                        )));
                    }
                    // Oracle: a partial read of the undamaged twin minus
                    // exactly the quarantined records.
                    let twin = SharedMemPager::from_snapshot(snap);
                    let mut clean = XmlStore::open(Box::new(twin), config)
                        .map_err(|e| fail(format!("oracle open: {e}")))?;
                    let want = clean
                        .to_document_partial(&missing)
                        .map_err(|e| fail(format!("oracle partial read: {e}")))?
                        .to_xml();
                    if got_doc.to_xml() != want {
                        return Err(fail(format!(
                            "degraded read wrong after repair of {ctx}\n  got:  {}\n  want: {want}",
                            got_doc.to_xml()
                        )));
                    }
                }
                Err(e) => {
                    return Err(fail(format!("non-corruption error after {ctx}: {e}")));
                }
            }
        }
    }
    Ok(())
}

/// Run `trace` like [`run_trace`], but instead of power cuts, rot every
/// page class of every committed state (including the bulkloaded one)
/// and assert detect-or-correct against the model oracle. See
/// [`corruption_sweep`] for the per-injection contract.
pub fn run_corruption_trace(
    doc: &Document,
    k: u64,
    trace: &[Op],
) -> Result<CorruptionOutcome, TraceFailure> {
    let k = k.max(min_record_limit(doc));
    let config = StoreConfig {
        record_limit_slots: k,
        ..Default::default()
    };
    let disk = SharedMemPager::new();
    let fail = |step: usize, message: String| TraceFailure {
        step,
        crash: None,
        message,
    };
    let mut store = bulkload_with(doc, &Ekm, k, Box::new(disk.clone()), config)
        .map_err(|e| fail(0, format!("bulkload failed: {e}")))?;
    let mut model = ModelTree::from_document(doc);
    let bulk_xml = model.to_xml();
    full_check(&mut store, &bulk_xml, "bulkload").map_err(|m| fail(0, m))?;

    let mut out = CorruptionOutcome::default();
    corruption_sweep(&disk.snapshot(), config, &bulk_xml, 0, &mut out)?;
    for (step, op) in trace.iter().enumerate() {
        if op.skipped(model.element_count()) {
            out.ops_skipped += 1;
            continue;
        }
        apply_model(&mut model, op);
        let post_xml = model.to_xml();
        apply_store(&mut store, op).map_err(|e| fail(step, format!("op failed: {e}")))?;
        full_check(&mut store, &post_xml, "mainline").map_err(|m| fail(step, m))?;
        // Update ops auto-commit and commits checkpoint, so the snapshot
        // is the complete committed post-state.
        corruption_sweep(&disk.snapshot(), config, &post_xml, step, &mut out)?;
        out.ops_applied += 1;
    }
    Ok(out)
}

/// Run a corruption campaign over the same (workload × record limit ×
/// fuzz seed) grid as [`run_campaign`]. `crash_points` counts corruption
/// injections; failures are reported unshrunk (the trace prefix up to
/// the failing step reproduces them).
pub fn run_corruption_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(&str),
) -> CampaignReport {
    let mut report = CampaignReport::default();
    'outer: for (wi, w) in workloads(cfg.scale, cfg.gen_seed).into_iter().enumerate() {
        for &k in &cfg.record_limits {
            for &fuzz_seed in &cfg.fuzz_seeds {
                let trace = generate_trace(trace_seed(fuzz_seed, k, wi as u64), cfg.ops_per_run);
                report.runs += 1;
                match run_corruption_trace(&w.doc, k, &trace) {
                    Ok(o) => {
                        report.ops_applied += o.ops_applied;
                        report.ops_skipped += o.ops_skipped;
                        report.crash_points += o.injections;
                        progress(&format!(
                            "ok   {} k={k} seed={fuzz_seed}: {} ops, {} injections, {} repairs",
                            w.name, o.ops_applied, o.injections, o.repairs
                        ));
                    }
                    Err(f) => {
                        progress(&format!(
                            "FAIL {} k={k} seed={fuzz_seed} at step {}",
                            w.name, f.step
                        ));
                        let mut shrunk = trace.clone();
                        shrunk.truncate(f.step + 1);
                        report.failures.push(Failure {
                            workload: w.name.clone(),
                            scale: cfg.scale,
                            gen_seed: cfg.gen_seed,
                            k,
                            fuzz_seed,
                            step: f.step,
                            crash: None,
                            message: f.message,
                            trace: shrunk,
                        });
                        if report.failures.len() >= cfg.max_failures {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    report
}

/// Shrink a failing trace: first truncate to the failing step, then
/// greedily drop ops while the run keeps failing. Returns the trace
/// unchanged if the failure does not reproduce (flaky environments).
pub fn shrink_trace(doc: &Document, k: u64, trace: &[Op], mode: CrashMode) -> Vec<Op> {
    let mut cur: Vec<Op> = trace.to_vec();
    let Err(f) = run_trace(doc, k, &cur, mode) else {
        return cur;
    };
    cur.truncate(f.step + 1);
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if run_trace(doc, k, &cand, mode).is_err() {
                cur = cand;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    cur
}

/// A shrunk, replayable failure found by a campaign.
#[derive(Clone, Debug)]
pub struct Failure {
    pub workload: String,
    pub scale: f64,
    pub gen_seed: u64,
    pub k: u64,
    pub fuzz_seed: u64,
    pub step: usize,
    pub crash: Option<(u64, bool)>,
    pub message: String,
    /// The shrunk trace (replaying it with a full sweep reproduces).
    pub trace: Vec<Op>,
}

impl Failure {
    /// Replayable script: a `workload` header line plus one op per line.
    /// Feed it to [`crate::replay`].
    pub fn script(&self) -> String {
        let mut s = format!(
            "workload {} scale {} gen-seed {} k {}\n",
            self.workload, self.scale, self.gen_seed, self.k
        );
        for op in &self.trace {
            s.push_str(&format_op(op));
            s.push('\n');
        }
        s
    }

    /// A ready-to-paste regression test exercising the shrunk trace.
    pub fn regression_test(&self) -> String {
        let name: String = self
            .workload
            .trim_end_matches(".xml")
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!(
            "#[test]\nfn regression_{name}_k{}_seed{}() {{\n    natix_testkit::replay(\n        r#\"\n{}\"#,\n    )\n    .unwrap();\n}}\n",
            self.k,
            self.fuzz_seed,
            self.script()
        )
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FAILURE in {} (k={}, fuzz seed {}) at step {}{}:",
            self.workload,
            self.k,
            self.fuzz_seed,
            self.step,
            match self.crash {
                Some((n, torn)) => format!(" (power cut at write {n}, torn={torn})"),
                None => String::new(),
            }
        )?;
        writeln!(f, "  {}", self.message.replace('\n', "\n  "))?;
        writeln!(f, "replay script:\n{}", self.script())?;
        writeln!(f, "regression test:\n{}", self.regression_test())
    }
}

/// Campaign configuration: the cross product of workloads, record
/// limits, and fuzz seeds, each run driving `ops_per_run` steps.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    pub scale: f64,
    pub gen_seed: u64,
    pub fuzz_seeds: Vec<u64>,
    pub ops_per_run: usize,
    pub record_limits: Vec<u64>,
    pub mode: CrashMode,
    /// Stop after this many (shrunk) failures.
    pub max_failures: usize,
}

impl CampaignConfig {
    /// CI smoke tier: all six workloads, one seed, capped sweep.
    /// Finishes in seconds.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            scale: 0.001,
            gen_seed: 1,
            fuzz_seeds: vec![1],
            ops_per_run: 6,
            record_limits: vec![32],
            mode: CrashMode::Sweep {
                max_points_per_op: 8,
            },
            max_failures: 3,
        }
    }

    /// Full soak: two seeds, two record limits, uncapped power-cut
    /// sweep — well over 1000 crash points across the six workloads.
    pub fn full() -> CampaignConfig {
        CampaignConfig {
            scale: 0.002,
            gen_seed: 1,
            fuzz_seeds: vec![1, 2],
            ops_per_run: 10,
            record_limits: vec![24, 96],
            mode: CrashMode::Sweep {
                max_points_per_op: 0,
            },
            max_failures: 3,
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    pub runs: u64,
    pub ops_applied: u64,
    pub ops_skipped: u64,
    pub crash_points: u64,
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn summary(&self) -> String {
        format!(
            "{} runs, {} ops applied ({} skipped), {} crash points, {} failure(s)",
            self.runs,
            self.ops_applied,
            self.ops_skipped,
            self.crash_points,
            self.failures.len()
        )
    }
}

/// Derive the trace seed for one run. Mixed so that every (workload,
/// record limit, fuzz seed) cell sees a distinct trace; deterministic
/// across processes.
pub(crate) fn trace_seed(fuzz_seed: u64, k: u64, workload_index: u64) -> u64 {
    fuzz_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(k.wrapping_mul(0x2545_f491_4f6c_dd1d))
        .wrapping_add(workload_index)
}

/// Run a campaign; `progress` receives one line per run. Failing traces
/// are shrunk before being reported.
pub fn run_campaign(cfg: &CampaignConfig, mut progress: impl FnMut(&str)) -> CampaignReport {
    let mut report = CampaignReport::default();
    'outer: for (wi, w) in workloads(cfg.scale, cfg.gen_seed).into_iter().enumerate() {
        for &k in &cfg.record_limits {
            for &fuzz_seed in &cfg.fuzz_seeds {
                let trace = generate_trace(trace_seed(fuzz_seed, k, wi as u64), cfg.ops_per_run);
                report.runs += 1;
                match run_trace(&w.doc, k, &trace, cfg.mode) {
                    Ok(o) => {
                        report.ops_applied += o.ops_applied;
                        report.ops_skipped += o.ops_skipped;
                        report.crash_points += o.crash_points;
                        progress(&format!(
                            "ok   {} k={k} seed={fuzz_seed}: {} ops, {} crash points",
                            w.name, o.ops_applied, o.crash_points
                        ));
                    }
                    Err(first) => {
                        progress(&format!(
                            "FAIL {} k={k} seed={fuzz_seed} at step {}: shrinking...",
                            w.name, first.step
                        ));
                        let shrunk = shrink_trace(&w.doc, k, &trace, cfg.mode);
                        let last = run_trace(&w.doc, k, &shrunk, cfg.mode)
                            .err()
                            .unwrap_or(first);
                        report.failures.push(Failure {
                            workload: w.name.clone(),
                            scale: cfg.scale,
                            gen_seed: cfg.gen_seed,
                            k,
                            fuzz_seed,
                            step: last.step,
                            crash: last.crash,
                            message: last.message,
                            trace: shrunk,
                        });
                        if report.failures.len() >= cfg.max_failures {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    report
}

/// Replay a script produced by [`Failure::script`]: regenerate the
/// workload, run the trace with an uncapped crash sweep, and return the
/// outcome (or a failure description). Blank lines and `#` comments are
/// ignored.
pub fn replay(script: &str) -> Result<RunOutcome, String> {
    let mut lines = script
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or_else(|| "empty script".to_string())?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    let [kw, name, s_kw, scale, g_kw, gen_seed, k_kw, k] = toks[..] else {
        return Err(format!(
            "bad header `{header}` (want `workload <name> scale <s> gen-seed <g> k <k>`)"
        ));
    };
    if (kw, s_kw, g_kw, k_kw) != ("workload", "scale", "gen-seed", "k") {
        return Err(format!("bad header keywords in `{header}`"));
    }
    let scale: f64 = scale.parse().map_err(|e| format!("bad scale: {e}"))?;
    let gen_seed: u64 = gen_seed.parse().map_err(|e| format!("bad gen-seed: {e}"))?;
    let k: u64 = k.parse().map_err(|e| format!("bad k: {e}"))?;
    let trace = lines.map(parse_op).collect::<Result<Vec<_>, _>>()?;
    let w = workload_by_name(name, scale, gen_seed)
        .ok_or_else(|| format!("unknown workload `{name}`"))?;
    run_trace(
        &w.doc,
        k,
        &trace,
        CrashMode::Sweep {
            max_points_per_op: 0,
        },
    )
    .map_err(|f| {
        format!(
            "step {}{}: {}",
            f.step,
            match f.crash {
                Some((n, torn)) => format!(" (power cut at write {n}, torn={torn})"),
                None => String::new(),
            },
            f.message
        )
    })
}
