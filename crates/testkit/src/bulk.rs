//! Power-cut campaign for the sharded streaming bulkload.
//!
//! The collection loader's crash contract: killing the power mid-load
//! must leave (1) every shard *independently* recoverable — each shard
//! file either reopens through normal journal recovery with a clean
//! consistency check and fsck scrub, or (for the cut shard only) was
//! never committed at all and has no catalog presence; and (2) the
//! catalog consistent — every frame references only durably committed
//! segments, so every cataloged document id is readable and serializes
//! to exactly the source document. Torn catalog tails are dropped by
//! the reader, never reported as damage.
//!
//! The sweep wraps one shard's [`FilePager`] in a [`FaultInjectingPager`]
//! power cut. Because the injector's backend is the real file, the disk
//! after the simulated cut holds exactly the pre-cut bytes (plus the
//! torn half-page when the cut lands mid-write) — recovery then runs
//! against an authentic crashed file, not a model of one.
//!
//! Cut points are chosen against a measured write-event horizon: a
//! fault-free load first counts the target shard's write events
//! (allocations + page writes, the same numbering the injector uses);
//! the campaign then sweeps cuts across `[1, horizon]`, alternating
//! clean and torn cuts. A shard's write stream depends only on its own
//! document subsequence, so the horizon is stable across runs and
//! thread counts and every chosen cut point actually fires.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use natix_store::{
    bulkload_collection_with, fsck, read_catalog, shard_path, BulkloadOptions, Collection,
    FaultInjectingPager, FaultSchedule, FilePager, PageId, Pager, StoreConfig, StoreResult,
    XmlStore, PAGE_SIZE,
};

/// Knobs of [`run_bulkload_campaign`].
#[derive(Debug, Clone)]
pub struct BulkCampaignConfig {
    /// Corpus size (synthetic documents, deterministic by index).
    pub docs: usize,
    /// Shard files in the collection.
    pub shards: u32,
    /// Loader threads.
    pub threads: usize,
    /// Documents per segment commit.
    pub seg_docs: usize,
    /// Streaming partitioner sibling budget.
    pub sibling_budget: usize,
    /// Record weight limit `K` for the shard stores.
    pub record_limit_slots: natix_tree::Weight,
    /// Cut points to sweep across the horizon; 0 = every write event.
    pub max_cuts: usize,
    /// The shard that gets the power cut.
    pub target_shard: u32,
}

impl BulkCampaignConfig {
    /// CI smoke tier: a handful of cuts over a small corpus, seconds.
    pub fn quick() -> BulkCampaignConfig {
        BulkCampaignConfig {
            docs: 36,
            shards: 3,
            threads: 2,
            seg_docs: 4,
            sibling_budget: 4,
            record_limit_slots: 64,
            max_cuts: 10,
            target_shard: 0,
        }
    }

    /// Thorough tier: a denser sweep over a larger corpus.
    pub fn full() -> BulkCampaignConfig {
        BulkCampaignConfig {
            docs: 180,
            shards: 4,
            threads: 2,
            seg_docs: 12,
            sibling_budget: 6,
            record_limit_slots: 128,
            max_cuts: 120,
            target_shard: 0,
        }
    }

    fn store_config(&self) -> StoreConfig {
        StoreConfig {
            record_limit_slots: self.record_limit_slots,
            ..StoreConfig::default()
        }
    }

    fn load_options(&self) -> BulkloadOptions {
        BulkloadOptions {
            shards: self.shards,
            threads: self.threads,
            seg_docs: self.seg_docs,
            sibling_budget: self.sibling_budget,
            ..BulkloadOptions::default()
        }
    }
}

/// One violated invariant at one cut point.
#[derive(Debug, Clone)]
pub struct BulkFailure {
    /// `(write event, torn)` of the cut, or `None` for the baseline run.
    pub cut: Option<(u64, bool)>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BulkFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cut {
            Some((at, torn)) => write!(
                f,
                "cut@{at}{}: {}",
                if torn { "+torn" } else { "" },
                self.message
            ),
            None => write!(f, "baseline: {}", self.message),
        }
    }
}

/// What the campaign covered.
#[derive(Debug, Clone)]
pub struct BulkReport {
    /// Documents in the corpus.
    pub docs: usize,
    /// Write-event horizon of the target shard's fault-free load.
    pub horizon: u64,
    /// Cut points actually swept.
    pub cuts: usize,
    /// Violations, empty when the contract held everywhere.
    pub failures: Vec<BulkFailure>,
}

impl BulkReport {
    /// No violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} docs, horizon {} write events, {} cuts swept, {} failure(s)",
            self.docs,
            self.horizon,
            self.cuts,
            self.failures.len()
        )
    }
}

/// Counts write events (allocations + page writes) with the same
/// numbering [`FaultInjectingPager`] uses, so the measured horizon maps
/// one-to-one onto cut points.
struct CountingPager {
    inner: Box<dyn Pager>,
    events: Arc<AtomicU64>,
}

impl Pager for CountingPager {
    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn allocate(&mut self) -> StoreResult<PageId> {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StoreResult<()> {
        self.inner.read(id, buf)
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StoreResult<()> {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.write(id, buf)
    }

    fn sync(&mut self) -> StoreResult<()> {
        self.inner.sync()
    }
}

/// Deterministic synthetic corpus: shape varies with the index so cuts
/// land across records of different sizes and fan-outs.
fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 3 {
            0 => format!(
                "<doc id=\"{i}\"><title>entry {i}</title>\
                 <body>payload text for document number {i}</body></doc>"
            ),
            1 => {
                let items: String = (0..(i % 7) + 2)
                    .map(|j| format!("<item k=\"{j}\">v{i}-{j}</item>"))
                    .collect();
                format!("<doc id=\"{i}\"><list>{items}</list></doc>")
            }
            _ => format!(
                "<doc id=\"{i}\"><a><b><c depth=\"3\">leaf {i}</c></b></a>\
                 <note>n{}</note></doc>",
                i % 5
            ),
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("natix-bulk-soak-{}-{tag}", std::process::id()))
}

/// Recovery contract check against the on-disk state of `dir`.
fn verify_dir(
    dir: &Path,
    cfg: &BulkCampaignConfig,
    docs: &[String],
    cut_shard: Option<u32>,
) -> Result<(), String> {
    let (shard_count, segments) =
        read_catalog(dir).map_err(|e| format!("catalog unreadable: {e}"))?;
    if shard_count != cfg.shards {
        return Err(format!(
            "catalog shard count {shard_count} != configured {}",
            cfg.shards
        ));
    }

    for s in 0..shard_count {
        let frames = segments.iter().filter(|g| g.shard == s).count();
        let opened = FilePager::open(&shard_path(dir, s))
            .and_then(|p| XmlStore::open(Box::new(p), cfg.store_config()));
        match opened {
            Ok(mut store) => {
                store
                    .check_consistency()
                    .map_err(|e| format!("shard {s} inconsistent after recovery: {e}"))?;
                drop(store);
                let mut pager = FilePager::open(&shard_path(dir, s))
                    .map_err(|e| format!("shard {s} reopen for fsck: {e}"))?;
                let report = fsck(&mut pager, false);
                if !report.clean() {
                    return Err(format!("shard {s} fsck not clean:\n{report}"));
                }
            }
            Err(e) => {
                // An unopenable shard is legal only when it never reached
                // a first commit — the cut shard itself, or a sibling the
                // dead worker never got to create — and then the catalog
                // must hold nothing for it. A baseline run (`cut_shard`
                // is `None`) tolerates no unopenable shard at all.
                if cut_shard.is_none() {
                    return Err(format!("shard {s} failed to open: {e}"));
                }
                if frames > 0 {
                    return Err(format!(
                        "shard {s} has {frames} catalog frame(s) but failed to open: {e}"
                    ));
                }
            }
        }
    }

    // Every cataloged document must read back byte-for-byte.
    let mut coll =
        Collection::open(dir, cfg.store_config()).map_err(|e| format!("collection open: {e}"))?;
    for s in 0..shard_count {
        let locals = coll.shard_doc_count(s);
        for local in 0..locals {
            let doc_id = s as u64 + local * shard_count as u64;
            let got = coll
                .get_document(doc_id)
                .map_err(|e| format!("cataloged doc {doc_id} unreadable: {e}"))?
                .to_xml();
            let want = docs
                .get(doc_id as usize)
                .ok_or_else(|| format!("catalog invents doc {doc_id}"))?;
            if &got != want {
                return Err(format!("doc {doc_id} corrupted after recovery"));
            }
        }
    }
    Ok(())
}

/// Run the power-cut bulkload campaign: measure the target shard's
/// write-event horizon with a fault-free load, then sweep power cuts
/// across it, verifying the recovery contract after each simulated
/// crash. `progress` receives one line per phase.
pub fn run_bulkload_campaign(
    cfg: &BulkCampaignConfig,
    mut progress: impl FnMut(&str),
) -> BulkReport {
    let docs = corpus(cfg.docs);
    let mut report = BulkReport {
        docs: docs.len(),
        horizon: 0,
        cuts: 0,
        failures: Vec::new(),
    };

    // Baseline: fault-free load, counting the target shard's write
    // events; everything must verify before any cut is meaningful.
    let base = scratch_dir("base");
    let _ = fs::remove_dir_all(&base);
    let events = Arc::new(AtomicU64::new(0));
    let counter = events.clone();
    let target = cfg.target_shard;
    let outcome = bulkload_collection_with(
        &base,
        docs.iter().cloned(),
        cfg.store_config(),
        cfg.load_options(),
        &move |shard, path| {
            let file = Box::new(FilePager::create(path)?);
            if shard == target {
                Ok(Box::new(CountingPager {
                    inner: file,
                    events: counter.clone(),
                }))
            } else {
                Ok(file)
            }
        },
    );
    if let Err(e) = outcome {
        report.failures.push(BulkFailure {
            cut: None,
            message: format!("fault-free load failed: {e}"),
        });
        return report;
    }
    if let Err(message) = verify_dir(&base, cfg, &docs, None) {
        report.failures.push(BulkFailure { cut: None, message });
        return report;
    }
    let _ = fs::remove_dir_all(&base);
    report.horizon = events.load(Ordering::Relaxed);
    progress(&format!(
        "baseline clean: {} docs, horizon {} write events on shard {target}",
        docs.len(),
        report.horizon
    ));

    // Cut points across [1, horizon], endpoints included; every point
    // fires because the shard's write stream is deterministic.
    let horizon = report.horizon;
    let cuts: Vec<u64> = if cfg.max_cuts == 0 || cfg.max_cuts as u64 >= horizon {
        (1..=horizon).collect()
    } else {
        let m = cfg.max_cuts as u64;
        (0..m)
            .map(|i| 1 + i * (horizon - 1) / (m - 1))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };

    for (i, &at) in cuts.iter().enumerate() {
        let torn = i % 2 == 1;
        let dir = scratch_dir("cut");
        let _ = fs::remove_dir_all(&dir);
        // The load may fail (worker lost its disk) or succeed (the rest
        // of the corpus routed around the dead shard before the feed
        // loop noticed) — both are legal; the disk contract is what we
        // check.
        let _ = bulkload_collection_with(
            &dir,
            docs.iter().cloned(),
            cfg.store_config(),
            cfg.load_options(),
            &move |shard, path| {
                let file = Box::new(FilePager::create(path)?);
                if shard == target {
                    Ok(Box::new(FaultInjectingPager::new(
                        file,
                        FaultSchedule::power_cut(at, torn),
                    )))
                } else {
                    Ok(file)
                }
            },
        );
        report.cuts += 1;
        if let Err(message) = verify_dir(&dir, cfg, &docs, Some(target)) {
            report.failures.push(BulkFailure {
                cut: Some((at, torn)),
                message,
            });
            if report.failures.len() >= 5 {
                let _ = fs::remove_dir_all(&dir);
                progress("aborting sweep after 5 failures");
                break;
            }
        }
        let _ = fs::remove_dir_all(&dir);
        if (i + 1) % 25 == 0 {
            progress(&format!("{}/{} cuts swept", i + 1, cuts.len()));
        }
    }
    progress(&format!("bulkload campaign: {}", report.summary()));
    report
}
