//! Deterministic chaos scheduler for the concurrent store layer.
//!
//! One *interleaving* is a seeded, single-threaded cooperative schedule
//! over a [`SharedStore`]: a writer task applying a fuzz trace through
//! the serialized [`natix_store::WriteGuard`], several reader tasks
//! pinning/holding/verifying snapshots, and an fsck task scrubbing the
//! shared backing pages — all stepped in a seed-derived order, so every
//! interleaving a thread scheduler could produce at commit granularity
//! is reachable from some seed, and every failure replays exactly from
//! its seed.
//!
//! The writer's backend is wrapped in `FaultInjectingPager` +
//! [`RetryingPager`] under a seed-chosen fault plan (none, transient
//! write error, transient read error, or permanent power cut); readers
//! and the scrubber run over clean pager clones, as independent OS
//! handles would.
//!
//! Checked invariants, per step and per run:
//!
//! 1. **Snapshot consistency** — every snapshot read equals the model
//!    oracle at the exact epoch the snapshot pinned, no matter how many
//!    commits, checkpoints, or reclamation rounds interleave before the
//!    read.
//! 2. **Exactly-once commits** — under transient fault plans every op
//!    must succeed (the retry layer absorbs the fault) and the oracle
//!    equivalence above proves no retried commit applied twice.
//! 3. **Pinned pages are never freed** —
//!    [`ConcurrencyStats::pinned_free_violations`] must stay zero.
//! 4. **No phantom corruption** — a scrub racing the writer must come
//!    back clean at every step.
//! 5. **Structured failure** — under a permanent fault plan the writer's
//!    ops fail with a non-transient error (never silently succeed), and
//!    a final fault-free reopen recovers exactly the last committed
//!    oracle state.
//! 6. **Group-commit atomicity** — the writer applies seeded batches of
//!    1–3 ops through [`natix_store::WriteGuard::mutate_batch`]; a batch
//!    either acks every op (one epoch advance carrying all of them) or
//!    acks none, never a partial set.
//!
//! The store runs under a deliberately tiny buffer pool
//! ([`CHAOS_POOL_PAGES`] frames), so clock eviction with dirty
//! write-back is active throughout every interleaving; the per-run
//! eviction count is part of the deterministic stats.

use natix_core::Ekm;
use natix_store::{
    bulkload_with, fsck, AdmissionConfig, BatchOp, ConcurrencyStats, FaultInjectingPager,
    FaultSchedule, RetryPolicy, RetryingPager, ServedRead, SharedMemPager, SharedStore, Snapshot,
    StoreConfig, StoreResult, XmlStore,
};
use natix_xml::parse;
use std::collections::HashMap;

use crate::fuzz::{apply_model, apply_store, min_record_limit};
use crate::model::ModelTree;
use crate::ops::generate_trace;

/// Configuration for a chaos campaign: `runs` seeded interleavings of
/// `steps` scheduler steps each.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Base seed; run `i` uses a mix of this and `i`.
    pub seed: u64,
    /// Number of interleavings.
    pub runs: usize,
    /// Scheduler steps per interleaving.
    pub steps: usize,
    /// Concurrent reader tasks.
    pub readers: usize,
}

impl ChaosConfig {
    /// CI smoke tier: seconds.
    pub fn quick() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            runs: 150,
            steps: 40,
            readers: 3,
        }
    }

    /// The acceptance tier: ≥ 1000 interleavings.
    pub fn full() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            runs: 1200,
            steps: 60,
            readers: 3,
        }
    }
}

/// One invariant violation, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The interleaving's own seed (not the campaign base seed).
    pub seed: u64,
    /// Scheduler step at which the violation was detected.
    pub step: usize,
    /// The fault plan in play.
    pub plan: String,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos: seed {} step {} (plan: {}): {}",
            self.seed, self.step, self.plan, self.what
        )?;
        write!(
            f,
            "chaos: reproduce with: natix stress --seed {} --runs 1",
            self.seed
        )
    }
}

/// Deterministic per-interleaving counters; two executions of the same
/// seed must produce identical values.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct InterleavingStats {
    pub steps: u64,
    pub reads_verified: u64,
    pub commits: u64,
    /// Ops carried by those commits (each commit is a batch of 1–3).
    pub batched_ops: u64,
    /// Clock evictions in the writer's buffer pool.
    pub evictions: u64,
    pub reads_shed: u64,
    pub degraded_served: u64,
    pub scrubs: u64,
    pub pages_reclaimed: u64,
    pub checkpoints_deferred: u64,
    pub writer_failures: u64,
    pub final_epoch: u64,
    pub final_xml_len: usize,
    pub plan: String,
}

/// Aggregate over a campaign.
#[derive(Debug, Default)]
pub struct ChaosReport {
    pub runs: usize,
    pub steps: u64,
    pub reads_verified: u64,
    pub commits: u64,
    pub batched_ops: u64,
    pub evictions: u64,
    pub reads_shed: u64,
    pub degraded_served: u64,
    pub scrubs: u64,
    pub pages_reclaimed: u64,
    pub checkpoints_deferred: u64,
    /// Runs under a transient fault plan (all absorbed by retry).
    pub transient_runs: usize,
    /// Runs under a permanent fault plan (structured failure + recovery).
    pub permanent_runs: usize,
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn summary(&self) -> String {
        format!(
            "{} interleavings ({} transient-fault, {} permanent-fault), {} steps, \
             {} snapshot reads verified, {} group commits ({} ops), {} evictions, \
             {} shed, {} degraded, {} scrubs, {} pages reclaimed, {} failures",
            self.runs,
            self.transient_runs,
            self.permanent_runs,
            self.steps,
            self.reads_verified,
            self.commits,
            self.batched_ops,
            self.evictions,
            self.reads_shed,
            self.degraded_served,
            self.scrubs,
            self.pages_reclaimed,
            self.failures.len()
        )
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Buffer-pool budget for every chaos store: small enough that the base
/// document's page set does not fit, so clock eviction (including dirty
/// write-back) runs throughout every interleaving.
pub const CHAOS_POOL_PAGES: usize = 2;

/// The base document every interleaving starts from. Large enough that
/// its page set exceeds [`CHAOS_POOL_PAGES`], so every interleaving runs
/// with eviction active.
const BASE_XML: &str = concat!(
    "<list><e>one entry of text</e><e>two entry of text</e>",
    "<e>three entries of text</e><e>four entries of text</e>",
    "<e>five entries of text</e><e>six entries of text</e>",
    "<e>seven entries of text</e><e>eight entries of text</e>",
    "<e>nine entries of text</e><e>ten entries of text</e>",
    "<e>eleven entries of text</e><e>twelve entries of text</e></list>"
);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultPlan {
    None,
    WriteError(u64),
    ReadError(u64),
    PowerCut(u64),
}

impl FaultPlan {
    fn pick(seed: u64) -> FaultPlan {
        let r = splitmix(seed ^ 0xFA01);
        let at = 1 + splitmix(seed ^ 0xFA02) % 120;
        match r % 4 {
            0 => FaultPlan::None,
            1 => FaultPlan::WriteError(at),
            2 => FaultPlan::ReadError(at),
            _ => FaultPlan::PowerCut(at),
        }
    }

    fn is_permanent(self) -> bool {
        matches!(self, FaultPlan::PowerCut(_))
    }

    fn describe(self) -> String {
        match self {
            FaultPlan::None => "none".into(),
            FaultPlan::WriteError(at) => format!("write-error@{at}"),
            FaultPlan::ReadError(at) => format!("read-error@{at}"),
            FaultPlan::PowerCut(at) => format!("power-cut@{at}"),
        }
    }

    fn schedule(self) -> Option<FaultSchedule> {
        match self {
            FaultPlan::None => None,
            FaultPlan::WriteError(at) => Some(FaultSchedule::write_error(at)),
            FaultPlan::ReadError(at) => Some(FaultSchedule::read_error(at)),
            FaultPlan::PowerCut(at) => Some(FaultSchedule::power_cut(at, false)),
        }
    }
}

/// The committed-state oracle: epoch → serialized document at that
/// epoch. Checkpoints advance the epoch without changing the document,
/// so the map is refreshed from the live epoch at every step boundary.
struct Oracle {
    map: HashMap<u64, String>,
    last_epoch: u64,
    last_xml: String,
}

impl Oracle {
    fn new(shared: &SharedStore, xml: String) -> Oracle {
        let e = shared.committed_epoch();
        let mut map = HashMap::new();
        map.insert(e, xml.clone());
        Oracle {
            map,
            last_epoch: e,
            last_xml: xml,
        }
    }

    /// Record the current committed epoch as carrying `last_xml` (call
    /// after any step that may have advanced the epoch).
    fn sync(&mut self, shared: &SharedStore) {
        let e = shared.committed_epoch();
        if e != self.last_epoch {
            self.last_epoch = e;
            self.map.insert(e, self.last_xml.clone());
        }
    }

    /// A writer op committed: the current epoch carries the new xml.
    fn committed(&mut self, shared: &SharedStore, xml: String) {
        self.last_xml = xml;
        self.last_epoch = shared.committed_epoch();
        self.map.insert(self.last_epoch, self.last_xml.clone());
    }
}

struct HeldSnapshot {
    snap: Snapshot,
    expected: String,
    release_at: usize,
}

/// Run one seeded interleaving; `Err` carries the violation.
pub fn run_interleaving(
    seed: u64,
    steps: usize,
    readers: usize,
) -> Result<InterleavingStats, ChaosFailure> {
    let plan = FaultPlan::pick(seed);
    let fail = |step: usize, what: String| ChaosFailure {
        seed,
        step,
        plan: plan.describe(),
        what,
    };

    // Base state on a clean shared disk.
    let doc = parse(BASE_XML).expect("base xml parses");
    let k = min_record_limit(&doc).max(48);
    let config = StoreConfig {
        record_limit_slots: k,
        buffer_pages: CHAOS_POOL_PAGES,
        ..Default::default()
    };
    let disk = SharedMemPager::new();
    drop(
        bulkload_with(&doc, &Ekm, k, Box::new(disk.clone()), config)
            .map_err(|e| fail(0, format!("bulkload failed: {e}")))?,
    );

    // The writer reopens through the fault plan + retry stack; readers
    // and the scrubber get clean clones via the factory.
    let writer_backend: Box<dyn natix_store::Pager> = match plan.schedule() {
        Some(s) => Box::new(RetryingPager::new(
            Box::new(FaultInjectingPager::new(Box::new(disk.clone()), s)),
            RetryPolicy::new(seed),
        )),
        None => Box::new(disk.clone()),
    };
    let wstore = XmlStore::open(writer_backend, config)
        .map_err(|e| fail(0, format!("writer open failed: {e}")))?;
    let admission = AdmissionConfig {
        max_inflight_reads: 1 + (splitmix(seed ^ 0xAD01) % 3) as u32,
        read_page_budget: 0,
    };
    let shared = SharedStore::new(wstore, Box::new(disk.clone()), config, admission);

    // While the guard lives, the writer slot is exclusive.
    let mut guard = shared
        .begin_write()
        .map_err(|e| fail(0, format!("begin_write failed: {e}")))?;
    if shared.begin_write().is_ok() {
        return Err(fail(0, "second writer was admitted".into()));
    }

    let mut model = ModelTree::from_document(&doc);
    let mut oracle = Oracle::new(&shared, model.to_xml());
    let trace = generate_trace(seed, steps);
    let mut next_op = 0usize;
    let mut held: Vec<Option<HeldSnapshot>> = (0..readers).map(|_| None).collect();
    let mut stats = InterleavingStats {
        plan: plan.describe(),
        ..Default::default()
    };
    let mut writer_dead = false;

    for step in 0..steps {
        // Releases and opportunistic maintenance may have advanced the
        // epoch (checkpoint) since last step: keep the oracle current.
        oracle.sync(&shared);
        stats.steps += 1;
        // Tasks: 0,1 = writer (double ticket), 2 = fsck, 3.. = readers.
        match (splitmix(seed ^ (step as u64).wrapping_mul(0x51ED)) % (2 + 1 + readers as u64))
            as usize
        {
            0 | 1 => {
                // Writer: a seeded batch of 1–3 trace ops through the
                // guard's group commit — one journal write, one header
                // flip, per-op acks.
                if next_op >= trace.len() {
                    continue;
                }
                let want = 1 + (splitmix(seed ^ (step as u64).wrapping_mul(0xB47C)) % 3) as usize;
                let mut post_model = model.clone();
                let mut batch = Vec::new();
                while batch.len() < want && next_op < trace.len() {
                    let op = trace[next_op];
                    next_op += 1;
                    if op.skipped(post_model.element_count()) {
                        continue;
                    }
                    apply_model(&mut post_model, &op);
                    batch.push(op);
                }
                if batch.is_empty() {
                    continue;
                }
                let ops: Vec<BatchOp<'_>> = batch
                    .iter()
                    .map(|op| {
                        Box::new(move |s: &mut XmlStore| apply_store(s, op))
                            as Box<dyn FnOnce(&mut XmlStore) -> StoreResult<()> + '_>
                    })
                    .collect();
                match guard.mutate_batch(ops) {
                    Ok(acks) if acks.iter().all(|a| a.is_ok()) => {
                        if writer_dead {
                            return Err(fail(
                                step,
                                format!(
                                    "batch {batch:?} succeeded after permanent backend failure"
                                ),
                            ));
                        }
                        model = post_model;
                        oracle.committed(&shared, model.to_xml());
                        stats.commits += 1;
                        stats.batched_ops += batch.len() as u64;
                    }
                    Ok(acks) => {
                        // Some op was rejected. Acks exist only when the
                        // batch ran to completion; a *mixed* pattern
                        // would mean a non-prefix subset got published,
                        // and under a transient plan the retry layer
                        // must absorb every fault.
                        let acked = acks.iter().filter(|a| a.is_ok()).count();
                        if !plan.is_permanent() {
                            return Err(fail(
                                step,
                                format!(
                                    "{}/{} batch ops rejected under transient plan",
                                    acks.len() - acked,
                                    acks.len()
                                ),
                            ));
                        }
                        if acked != 0 {
                            return Err(fail(
                                step,
                                format!(
                                    "non-prefix group commit: {acked}/{} ops acked",
                                    acks.len()
                                ),
                            ));
                        }
                        writer_dead = true;
                        stats.writer_failures += 1;
                    }
                    Err(e) if plan.is_permanent() => {
                        if e.is_transient() {
                            return Err(fail(
                                step,
                                format!("permanent fault surfaced as transient: {e}"),
                            ));
                        }
                        writer_dead = true;
                        stats.writer_failures += 1;
                    }
                    Err(e) => {
                        return Err(fail(
                            step,
                            format!("batch {batch:?} failed under transient plan: {e}"),
                        ));
                    }
                }
            }
            2 => {
                // Scrubber: fsck over a clean pager clone must never see
                // phantom corruption, whatever commit state is in flight.
                let report = shared
                    .scrub()
                    .map_err(|e| fail(step, format!("scrub failed to run: {e}")))?;
                if !report.clean() {
                    return Err(fail(step, format!("phantom corruption:\n{report}")));
                }
                stats.scrubs += 1;
            }
            t => {
                let slot = t - 3;
                match held[slot].take() {
                    Some(mut h) => {
                        if step >= h.release_at {
                            // Verify against the oracle at the pinned
                            // epoch, then release.
                            let got = h
                                .snap
                                .document()
                                .map_err(|e| fail(step, format!("snapshot read failed: {e}")))?
                                .to_xml();
                            if got != h.expected {
                                return Err(fail(
                                    step,
                                    format!(
                                        "snapshot at epoch {} diverged from oracle:\n  got: \
                                         {got}\n want: {}",
                                        h.snap.epoch(),
                                        h.expected
                                    ),
                                ));
                            }
                            stats.reads_verified += 1;
                        } else {
                            held[slot] = Some(h);
                        }
                    }
                    None => match shared.begin_read() {
                        Ok(snap) => {
                            let Some(expected) = oracle.map.get(&snap.epoch()).cloned() else {
                                return Err(fail(
                                    step,
                                    format!("pinned uncommitted epoch {}", snap.epoch()),
                                ));
                            };
                            let release_at =
                                step + 1 + (splitmix(seed ^ snap.epoch()) % 6) as usize;
                            held[slot] = Some(HeldSnapshot {
                                snap,
                                expected,
                                release_at,
                            });
                        }
                        Err(e) if e.is_overload() => {
                            // Shed: the convenience path must still serve
                            // the current committed state, degraded.
                            stats.reads_shed += 1;
                            let served = shared
                                .read_document()
                                .map_err(|e| fail(step, format!("degraded fallback died: {e}")))?;
                            let want = oracle
                                .map
                                .get(&shared.committed_epoch())
                                .expect("current epoch is always in the oracle");
                            if served.document().to_xml() != *want {
                                return Err(fail(step, "degraded read diverged".into()));
                            }
                            if let ServedRead::Degraded(_, damage) = &served {
                                if !damage.is_empty() {
                                    return Err(fail(
                                        step,
                                        format!("degraded read reported damage: {damage}"),
                                    ));
                                }
                            }
                            stats.degraded_served += 1;
                        }
                        Err(e) => {
                            return Err(fail(step, format!("begin_read failed: {e}")));
                        }
                    },
                }
            }
        }
    }

    // Drain: verify and release every held snapshot, drop the writer,
    // run maintenance, and check the end-state invariants.
    for h in held.iter_mut() {
        if let Some(mut h) = h.take() {
            let got = h
                .snap
                .document()
                .map_err(|e| fail(steps, format!("final snapshot read failed: {e}")))?
                .to_xml();
            if got != h.expected {
                return Err(fail(steps, "final snapshot read diverged".into()));
            }
            stats.reads_verified += 1;
        }
    }
    drop(guard);
    let maintained = shared.maintain();
    if !plan.is_permanent() {
        maintained.map_err(|e| fail(steps, format!("final maintenance failed: {e}")))?;
    }
    let cstats: ConcurrencyStats = shared.stats();
    if cstats.pinned_free_violations != 0 {
        return Err(fail(
            steps,
            format!(
                "reclaimer freed {} pinned page(s)",
                cstats.pinned_free_violations
            ),
        ));
    }
    stats.pages_reclaimed = cstats.pages_reclaimed;
    stats.checkpoints_deferred = cstats.checkpoints_deferred;
    stats.evictions = shared.buffer_stats().evictions;
    drop(shared);

    // Fault-free reopen: recovery must land exactly on the last
    // committed oracle state, consistent and scrubbing clean.
    let mut re = XmlStore::open(Box::new(disk.clone()), config)
        .map_err(|e| fail(steps, format!("final reopen failed: {e}")))?;
    re.check_consistency()
        .map_err(|e| fail(steps, format!("final state inconsistent: {e}")))?;
    let got = re
        .to_document()
        .map_err(|e| fail(steps, format!("final read failed: {e}")))?
        .to_xml();
    if got != oracle.last_xml {
        return Err(fail(
            steps,
            format!(
                "recovered state is not the last committed state:\n  got: {got}\n want: {}",
                oracle.last_xml
            ),
        ));
    }
    drop(re);
    let scrub = fsck(&mut disk.clone(), false);
    if !scrub.clean() {
        return Err(fail(steps, format!("final scrub not clean:\n{scrub}")));
    }

    stats.final_epoch = oracle.last_epoch;
    stats.final_xml_len = oracle.last_xml.len();
    Ok(stats)
}

/// Run a chaos campaign; `progress` receives one line every few dozen
/// interleavings.
pub fn run_chaos(cfg: &ChaosConfig, mut progress: impl FnMut(&str)) -> ChaosReport {
    let mut report = ChaosReport::default();
    for i in 0..cfg.runs {
        let seed = splitmix(cfg.seed.wrapping_add(i as u64));
        let plan = FaultPlan::pick(seed);
        match run_interleaving(seed, cfg.steps, cfg.readers) {
            Ok(s) => {
                report.steps += s.steps;
                report.reads_verified += s.reads_verified;
                report.commits += s.commits;
                report.batched_ops += s.batched_ops;
                report.evictions += s.evictions;
                report.reads_shed += s.reads_shed;
                report.degraded_served += s.degraded_served;
                report.scrubs += s.scrubs;
                report.pages_reclaimed += s.pages_reclaimed;
                report.checkpoints_deferred += s.checkpoints_deferred;
            }
            Err(f) => report.failures.push(f),
        }
        report.runs += 1;
        if plan.is_permanent() {
            report.permanent_runs += 1;
        } else if plan != FaultPlan::None {
            report.transient_runs += 1;
        }
        if (i + 1) % 50 == 0 || i + 1 == cfg.runs {
            progress(&format!(
                "chaos: {}/{} interleavings, {} reads verified, {} commits, {} failures",
                i + 1,
                cfg.runs,
                report.reads_verified,
                report.commits,
                report.failures.len()
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleavings_are_deterministic() {
        for s in [1u64, 7, 0xBEEF] {
            let seed = splitmix(s);
            let a = run_interleaving(seed, 30, 2).unwrap();
            let b = run_interleaving(seed, 30, 2).unwrap();
            assert_eq!(a, b, "seed {seed} diverged between executions");
        }
    }

    #[test]
    fn small_campaign_is_clean_and_covers_all_plans() {
        let cfg = ChaosConfig {
            seed: 42,
            runs: 24,
            steps: 30,
            readers: 2,
        };
        let report = run_chaos(&cfg, |_| {});
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok(), "{}", report.summary());
        assert_eq!(report.runs, 24);
        assert!(report.commits > 0, "{}", report.summary());
        assert!(report.reads_verified > 0, "{}", report.summary());
        assert!(report.scrubs > 0, "{}", report.summary());
        assert!(report.transient_runs > 0, "{}", report.summary());
        assert!(report.permanent_runs > 0, "{}", report.summary());
        assert!(report.batched_ops >= report.commits, "{}", report.summary());
        // The tiny pool must actually exercise eviction.
        assert!(report.evictions > 0, "{}", report.summary());
    }

    #[test]
    fn failure_report_names_the_seed_and_rerun() {
        let f = ChaosFailure {
            seed: 99,
            step: 7,
            plan: "power-cut@3".into(),
            what: "example".into(),
        };
        let text = f.to_string();
        assert!(text.contains("seed 99"), "{text}");
        assert!(text.contains("natix stress --seed 99 --runs 1"), "{text}");
    }
}
