//! Disk-full exhaustion sweeps: the `natix soak --diskfull` campaign.
//!
//! Mirrors the power-cut sweep of [`crate::run_trace`], but instead of
//! killing the store mid-step it *fills the disk*: every step of a
//! seeded trace is replayed from a pre-step snapshot under a
//! [`FaultSchedule::storage_full`] window starting at write event
//! n = 1, 2, ... and lasting `recover_after` write events. At every
//! injection point the store must:
//!
//! 1. roll the in-flight commit back atomically (reads keep serving the
//!    exact pre-step document while degraded),
//! 2. refuse writes with the typed [`StoreError::ReadOnly`] (never a
//!    torn state, never a crash),
//! 3. resume writes once the space probe sees the window pass, and then
//!    commit the step so the acked state survives exactly once, and
//! 4. leave a disk that reopens consistent and scrubs fsck-clean.
//!
//! Swept across the six Table 1 evaluation workloads via
//! [`run_diskfull_campaign`].

use natix_core::Ekm;
use natix_store::{
    bulkload_with, fsck, AdmissionConfig, FaultInjectingPager, FaultSchedule, SharedMemPager,
    SharedStore, StoreConfig, StoreError, XmlStore,
};
use natix_xml::Document;

use crate::fuzz::{
    apply_model, apply_store, min_record_limit, trace_seed, workloads, CampaignReport, Failure,
    RunOutcome, TraceFailure,
};
use crate::model::ModelTree;
use crate::ops::{generate_trace, Op};

/// Configuration of a disk-full campaign: the same (workload × record
/// limit × fuzz seed) grid as [`crate::CampaignConfig`], plus the shape
/// of the injected storage-full window.
#[derive(Clone, Debug)]
pub struct DiskFullConfig {
    pub scale: f64,
    pub gen_seed: u64,
    pub fuzz_seeds: Vec<u64>,
    pub ops_per_run: usize,
    pub record_limits: Vec<u64>,
    /// Write events the injected storage-full window lasts; the space
    /// probe must march the store back to writable within it.
    pub recover_after: u64,
    /// Cap on injection points per step (0 = sweep every write event).
    pub max_points_per_op: u64,
    /// Stop after this many failures.
    pub max_failures: usize,
}

impl DiskFullConfig {
    /// CI smoke tier: all six workloads, one seed, capped sweep.
    pub fn quick() -> DiskFullConfig {
        DiskFullConfig {
            scale: 0.001,
            gen_seed: 1,
            fuzz_seeds: vec![1],
            ops_per_run: 4,
            record_limits: vec![32],
            recover_after: 3,
            max_points_per_op: 4,
            max_failures: 3,
        }
    }

    /// The acceptance tier: uncapped sweep — every write event of every
    /// step is an injection point.
    pub fn full() -> DiskFullConfig {
        DiskFullConfig {
            scale: 0.002,
            gen_seed: 1,
            fuzz_seeds: vec![1, 2],
            ops_per_run: 8,
            record_limits: vec![24, 96],
            recover_after: 4,
            max_points_per_op: 0,
            max_failures: 3,
        }
    }
}

/// One degraded-mode episode: apply `op` through `shared`, which sits on
/// a storage-full window. Returns `Ok(true)` if the window fired (the
/// store degraded and recovered), `Ok(false)` if the injection point was
/// past the step's write activity (sweep is done).
fn diskfull_episode(
    shared: &SharedStore,
    op: &Op,
    cur_xml: &str,
    post_xml: &str,
    recover_after: u64,
) -> Result<bool, String> {
    // Pin a reader before the exhaustion hits: it must serve the
    // pre-step document throughout the degraded window.
    let mut pinned = shared
        .begin_read()
        .map_err(|e| format!("pre-episode pin: {e}"))?;

    let first = {
        let mut w = shared
            .begin_write()
            .map_err(|e| format!("first begin_write: {e}"))?;
        w.mutate(|s| apply_store(s, op))
    };
    match first {
        Ok(()) => {
            // The window never intersected the step's writes.
            let s = shared.stats();
            if s.read_only_entered != 0 {
                return Err("op succeeded but the store reports a degraded episode".to_string());
            }
            Ok(false)
        }
        Err(StoreError::ReadOnly { .. }) => {
            // Degraded. The failed commit must have rolled back: both the
            // pre-pinned reader and a fresh read serve the pre-step state.
            if shared.read_only_reason().is_none() {
                return Err("ReadOnly error without a degraded store".to_string());
            }
            let pinned_xml = pinned
                .document()
                .map_err(|e| format!("pinned read while degraded: {e}"))?
                .to_xml();
            if pinned_xml != cur_xml {
                return Err(format!(
                    "pinned read changed under a rolled-back commit\n  got: {pinned_xml}"
                ));
            }
            let fresh = shared
                .read_document()
                .map_err(|e| format!("fresh read while degraded: {e}"))?;
            let fresh_xml = fresh.document().to_xml();
            if fresh_xml != cur_xml {
                return Err(format!(
                    "degraded store serves a torn state\n  got:  {fresh_xml}\n  want: {cur_xml}"
                ));
            }

            // Write resume: every refused begin_write runs a space probe,
            // and each probe is a write event marching the window closed.
            let mut resumed = false;
            for _ in 0..recover_after.saturating_mul(2) + 8 {
                match shared.begin_write() {
                    Ok(mut w) => {
                        w.mutate(|s| apply_store(s, op))
                            .map_err(|e| format!("post-recovery apply: {e}"))?;
                        resumed = true;
                        break;
                    }
                    Err(StoreError::ReadOnly { .. }) => {}
                    Err(e) => return Err(format!("begin_write while degraded: {e}")),
                }
            }
            if !resumed {
                return Err(format!(
                    "writes did not resume within the {recover_after}-event recovery window"
                ));
            }
            let s = shared.stats();
            if s.read_only_entered != 1 || s.read_only_recovered != 1 {
                return Err(format!(
                    "degraded lifecycle miscounted: entered {} recovered {}",
                    s.read_only_entered, s.read_only_recovered
                ));
            }
            // The resumed commit is the ack: it must be visible exactly
            // once, while the pre-episode pin still serves its epoch.
            let post = shared
                .read_document()
                .map_err(|e| format!("post-recovery read: {e}"))?;
            let got = post.document().to_xml();
            if got != post_xml {
                return Err(format!(
                    "post-recovery state wrong\n  got:  {got}\n  want: {post_xml}"
                ));
            }
            let pinned_still = pinned
                .document()
                .map_err(|e| format!("pinned read after recovery: {e}"))?
                .to_xml();
            if pinned_still != cur_xml {
                return Err("recovery moved a pinned snapshot".to_string());
            }
            Ok(true)
        }
        Err(e) => Err(format!("step under storage-full failed untyped: {e}")),
    }
}

/// Run `trace` with a storage-full sweep: every step is replayed from a
/// pre-step snapshot with the disk filling at write event 1, 2, ... (see
/// the module docs for the per-point contract). `crash_points` in the
/// outcome counts injection points exercised.
pub fn run_diskfull_trace(
    doc: &Document,
    k: u64,
    trace: &[Op],
    recover_after: u64,
    max_points_per_op: u64,
) -> Result<RunOutcome, TraceFailure> {
    let k = k.max(min_record_limit(doc));
    let config = StoreConfig {
        record_limit_slots: k,
        ..Default::default()
    };
    let disk = SharedMemPager::new();
    let fail = |step: usize, n: Option<u64>, message: String| TraceFailure {
        step,
        crash: n.map(|n| (n, false)),
        message,
    };
    let mut store = bulkload_with(doc, &Ekm, k, Box::new(disk.clone()), config)
        .map_err(|e| fail(0, None, format!("bulkload failed: {e}")))?;
    let mut model = ModelTree::from_document(doc);
    let mut cur_xml = model.to_xml();

    let mut out = RunOutcome::default();
    for (step, op) in trace.iter().enumerate() {
        if op.skipped(model.element_count()) {
            out.ops_skipped += 1;
            continue;
        }
        let mut post_model = model.clone();
        apply_model(&mut post_model, op);
        let post_xml = post_model.to_xml();

        // Pre-step snapshot (the previous commit checkpointed, so this is
        // the complete pre-step state), then the fault-free mainline.
        let snap = disk.snapshot();
        apply_store(&mut store, op).map_err(|e| fail(step, None, format!("op failed: {e}")))?;

        let mut n = 1u64;
        loop {
            if max_points_per_op > 0 && n > max_points_per_op {
                break;
            }
            let disk2 = SharedMemPager::from_snapshot(&snap);
            let faulty = FaultInjectingPager::new(
                Box::new(disk2.clone()),
                FaultSchedule::storage_full(n, recover_after),
            );
            let s2 = XmlStore::open(Box::new(faulty), config)
                .map_err(|e| fail(step, Some(n), format!("open before window: {e}")))?;
            let shared = SharedStore::new(
                s2,
                Box::new(disk2.clone()),
                config,
                AdmissionConfig::default(),
            );
            let fired = diskfull_episode(&shared, op, &cur_xml, &post_xml, recover_after)
                .map_err(|m| fail(step, Some(n), m))?;
            drop(shared);

            // Whatever the episode did, the surviving disk must reopen
            // consistent, carry the committed state, and scrub clean.
            let mut re = XmlStore::open(Box::new(disk2.clone()), config)
                .map_err(|e| fail(step, Some(n), format!("reopen after episode: {e}")))?;
            re.check_consistency()
                .map_err(|e| fail(step, Some(n), format!("inconsistent after episode: {e}")))?;
            let got = re
                .to_document()
                .map_err(|e| fail(step, Some(n), format!("read after episode: {e}")))?
                .to_xml();
            if got != post_xml {
                return Err(fail(
                    step,
                    Some(n),
                    format!("acked step not intact after episode\n  got:  {got}"),
                ));
            }
            drop(re);
            let scrub = fsck(&mut disk2.clone(), false);
            if !scrub.clean() {
                return Err(fail(
                    step,
                    Some(n),
                    format!("post-episode scrub not clean:\n{scrub}"),
                ));
            }
            out.crash_points += 1;
            if !fired {
                break;
            }
            n += 1;
            if n > 100_000 {
                return Err(fail(
                    step,
                    Some(n),
                    "disk-full sweep did not terminate".to_string(),
                ));
            }
        }

        model = post_model;
        cur_xml = post_xml;
        out.ops_applied += 1;
    }
    Ok(out)
}

/// Run a disk-full campaign over the same grid as [`crate::run_campaign`].
/// `crash_points` counts storage-full injection points; failures are
/// reported unshrunk (the trace prefix up to the failing step
/// reproduces them).
pub fn run_diskfull_campaign(
    cfg: &DiskFullConfig,
    mut progress: impl FnMut(&str),
) -> CampaignReport {
    let mut report = CampaignReport::default();
    'outer: for (wi, w) in workloads(cfg.scale, cfg.gen_seed).into_iter().enumerate() {
        for &k in &cfg.record_limits {
            for &fuzz_seed in &cfg.fuzz_seeds {
                let trace = generate_trace(trace_seed(fuzz_seed, k, wi as u64), cfg.ops_per_run);
                report.runs += 1;
                match run_diskfull_trace(
                    &w.doc,
                    k,
                    &trace,
                    cfg.recover_after,
                    cfg.max_points_per_op,
                ) {
                    Ok(o) => {
                        report.ops_applied += o.ops_applied;
                        report.ops_skipped += o.ops_skipped;
                        report.crash_points += o.crash_points;
                        progress(&format!(
                            "ok   {} k={k} seed={fuzz_seed}: {} ops, {} injection points",
                            w.name, o.ops_applied, o.crash_points
                        ));
                    }
                    Err(f) => {
                        progress(&format!(
                            "FAIL {} k={k} seed={fuzz_seed} at step {}",
                            w.name, f.step
                        ));
                        let mut shrunk = trace.clone();
                        shrunk.truncate(f.step + 1);
                        report.failures.push(Failure {
                            workload: w.name.clone(),
                            scale: cfg.scale,
                            gen_seed: cfg.gen_seed,
                            k,
                            fuzz_seed,
                            step: f.step,
                            crash: f.crash,
                            message: f.message,
                            trace: shrunk,
                        });
                        if report.failures.len() >= cfg.max_failures {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::generate_trace;

    #[test]
    fn diskfull_sweep_survives_one_workload() {
        let w = crate::workload_by_name("SigmodRecord.xml", 0.001, 1).expect("workload");
        let trace = generate_trace(7, 3);
        let out = run_diskfull_trace(&w.doc, 32, &trace, 3, 3).expect("diskfull trace");
        assert!(out.crash_points > 0, "sweep exercised no injection points");
    }
}
