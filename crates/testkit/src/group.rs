//! Group-commit crash-prefix sweep.
//!
//! Drives [`natix_store::WriteGuard::mutate_batch`] — the serialized
//! writer's group commit — through the same model-based power-cut
//! methodology as the per-op sweep in [`crate::run_trace`], with the
//! batch-level oracle:
//!
//! **Crash recovery restores an exact prefix of the acked commits.**
//! A batch publishes every staged op under one journal write and one
//! header flip, and acks are delivered only after the flip, so at every
//! power-cut write event inside the batch the recovered store must hold
//! either the pre-batch state (no acks delivered — the empty prefix) or
//! the full post-batch state (all acks delivered). Any intermediate
//! state — some ops of the batch visible, others lost — is a failure,
//! as is a committed (acked) batch that recovery loses. Recovery is
//! additionally followed by an `fsck` scrub that must come back clean.
//!
//! Entry points: [`run_group_commit_trace`] for one trace and
//! [`run_group_commit_campaign`] over the Table 1 workloads
//! ([`GroupCommitConfig::quick`] for the CI tier, `::full` for the
//! soak tier).

use natix_core::Ekm;
use natix_store::{
    fsck, AdmissionConfig, BatchOp, FaultInjectingPager, FaultSchedule, SharedMemPager,
    SharedStore, StoreConfig, StoreResult, XmlStore,
};
use natix_xml::Document;

use crate::fuzz::{apply_model, apply_store, min_record_limit, workloads};
use crate::model::ModelTree;
use crate::ops::{generate_trace, Op};

/// Statistics from a successful group-commit sweep run.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroupOutcome {
    /// Batches committed on the fault-free mainline.
    pub batches_committed: u64,
    /// Ops staged and acked across those batches.
    pub ops_applied: u64,
    /// Trace ops skipped as inapplicable.
    pub ops_skipped: u64,
    /// Power-cut crash points swept inside batches.
    pub crash_points: u64,
}

/// A failed batch inside a group-commit sweep.
#[derive(Clone, Debug)]
pub struct GroupFailure {
    /// Index of the failing batch in the trace's batch sequence.
    pub batch: usize,
    /// `Some((n, torn))` when the failure came from the power cut at
    /// write event `n` of the batch.
    pub crash: Option<(u64, bool)>,
    pub message: String,
}

impl std::fmt::Display for GroupFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch {}{}: {}",
            self.batch,
            match self.crash {
                Some((n, torn)) => format!(" (power cut at write {n}, torn={torn})"),
                None => String::new(),
            },
            self.message
        )
    }
}

/// Small pool so eviction is active while batches run: the sweep also
/// guards the eviction/group-commit interaction (`fsck` must stay clean
/// with dirty write-back eviction in play).
const SWEEP_POOL_PAGES: usize = 8;

/// Run `trace` against a fresh store, committing ops in batches of
/// `batch_size` through the concurrent writer's group commit, and sweep
/// a power cut across every write event of every batch (capped at
/// `max_points_per_batch` when nonzero), asserting the crash-prefix
/// oracle described in the module docs.
pub fn run_group_commit_trace(
    doc: &Document,
    k: u64,
    trace: &[Op],
    batch_size: usize,
    max_points_per_batch: u64,
) -> Result<GroupOutcome, GroupFailure> {
    assert!(batch_size > 0, "batch size must be positive");
    let k = k.max(min_record_limit(doc));
    let config = StoreConfig {
        record_limit_slots: k,
        buffer_pages: SWEEP_POOL_PAGES,
        ..Default::default()
    };
    let admission = AdmissionConfig::default();
    let fail = |batch: usize, crash: Option<(u64, bool)>, message: String| GroupFailure {
        batch,
        crash,
        message,
    };

    let disk = SharedMemPager::new();
    let store = natix_store::bulkload_with(doc, &Ekm, k, Box::new(disk.clone()), config)
        .map_err(|e| fail(0, None, format!("bulkload failed: {e}")))?;
    drop(store);
    let mut model = ModelTree::from_document(doc);
    let mut out = GroupOutcome::default();

    let mut idx = 0usize;
    let mut batch_no = 0usize;
    while idx < trace.len() {
        // Select the next batch, advancing a scratch oracle per op so
        // applicability (`skipped`) is judged against the state the op
        // will actually see inside the batch.
        let mut post_model = model.clone();
        let mut batch: Vec<Op> = Vec::new();
        while batch.len() < batch_size && idx < trace.len() {
            let op = trace[idx];
            idx += 1;
            if op.skipped(post_model.element_count()) {
                out.ops_skipped += 1;
                continue;
            }
            apply_model(&mut post_model, &op);
            batch.push(op);
        }
        if batch.is_empty() {
            continue;
        }
        let pre_xml = model.to_xml();
        let post_xml = post_model.to_xml();
        // The previous batch checkpointed (no pins): the snapshot is the
        // complete pre-batch state.
        let snap = disk.snapshot();

        // Fault-free mainline: every op must be acked and the committed
        // state must be the post-batch oracle.
        {
            let shared = SharedStore::open(
                Box::new(disk.clone()),
                Box::new(disk.clone()),
                config,
                admission,
            )
            .map_err(|e| fail(batch_no, None, format!("mainline open failed: {e}")))?;
            let mut guard = shared
                .begin_write()
                .map_err(|e| fail(batch_no, None, format!("mainline begin_write: {e}")))?;
            let acks = guard
                .mutate_batch(batch_ops(&batch))
                .map_err(|e| fail(batch_no, None, format!("mainline group commit failed: {e}")))?;
            for (i, ack) in acks.iter().enumerate() {
                if let Err(e) = ack {
                    return Err(fail(
                        batch_no,
                        None,
                        format!("mainline op {i} rejected: {e}"),
                    ));
                }
            }
            drop(guard);
            let scrub = shared
                .scrub()
                .map_err(|e| fail(batch_no, None, format!("mainline scrub failed: {e}")))?;
            if !scrub.clean() {
                return Err(fail(
                    batch_no,
                    None,
                    format!("mainline scrub not clean:\n{scrub}"),
                ));
            }
        }
        check_recovered(&disk, config, &post_xml, "mainline")
            .map_err(|m| fail(batch_no, None, m))?;

        // Power-cut sweep: crash at write event n = 1, 2, ... of the
        // whole batch (ops + group commit), alternating clean and torn
        // cuts, until the batch commits under the cut.
        let mut n = 1u64;
        loop {
            if max_points_per_batch > 0 && n > max_points_per_batch {
                break;
            }
            let torn = (n + batch_no as u64).is_multiple_of(2);
            let disk2 = SharedMemPager::from_snapshot(&snap);
            let faulty = FaultInjectingPager::new(
                Box::new(disk2.clone()),
                FaultSchedule::power_cut(n, torn),
            );
            let acked = {
                let shared =
                    SharedStore::open(Box::new(faulty), Box::new(disk2.clone()), config, admission)
                        .map_err(|e| {
                            fail(batch_no, Some((n, torn)), format!("open before cut: {e}"))
                        })?;
                let mut guard = shared
                    .begin_write()
                    .map_err(|e| fail(batch_no, Some((n, torn)), format!("begin_write: {e}")))?;
                match guard.mutate_batch(batch_ops(&batch)) {
                    // `Ok` means the batch ran to completion; per-op acks
                    // say which ops are durable. Under a permanent power
                    // cut only two ack patterns are legal: every op acked
                    // (the flip beat the cut) or no op acked (every op
                    // died before staging, so there was nothing to
                    // commit and no flip). A *mixed* pattern would mean
                    // the flip published a non-prefix subset.
                    Ok(acks) => {
                        let acked = acks.iter().filter(|a| a.is_ok()).count();
                        if acked != 0 && acked != acks.len() {
                            return Err(fail(
                                batch_no,
                                Some((n, torn)),
                                format!(
                                    "non-prefix ack pattern: {acked}/{} ops acked under cut",
                                    acks.len()
                                ),
                            ));
                        }
                        acked == acks.len()
                    }
                    Err(_) => false,
                }
            };
            let got =
                recovered_xml(&disk2, config).map_err(|m| fail(batch_no, Some((n, torn)), m))?;
            let scrub = fsck(&mut disk2.clone(), false);
            if !scrub.clean() {
                return Err(fail(
                    batch_no,
                    Some((n, torn)),
                    format!("post-recovery scrub not clean:\n{scrub}"),
                ));
            }
            out.crash_points += 1;
            if acked {
                // The flip happened before the cut: the whole batch is
                // the only acceptable recovered state.
                if got != post_xml {
                    return Err(fail(
                        batch_no,
                        Some((n, torn)),
                        format!("acked batch lost after crash\n  got: {got}"),
                    ));
                }
                break;
            }
            // No acks delivered: the empty prefix (pre-batch state) is
            // expected; the full post-batch state is also acceptable in
            // the standard "durable but unreported" window (the cut hit
            // between the header flip and the checkpoint, so the commit
            // landed but the error surfaced first). Anything else is a
            // partial batch.
            if got != pre_xml && got != post_xml {
                return Err(fail(
                    batch_no,
                    Some((n, torn)),
                    format!(
                        "crash recovered to a partial batch\n  got:  {got}\n  pre:  {pre_xml}\n  post: {post_xml}"
                    ),
                ));
            }
            n += 1;
            if n > 100_000 {
                return Err(fail(
                    batch_no,
                    Some((n, torn)),
                    "crash sweep did not terminate".to_string(),
                ));
            }
        }

        out.batches_committed += 1;
        out.ops_applied += batch.len() as u64;
        model = post_model;
        batch_no += 1;
    }
    Ok(out)
}

/// The batch as consumable closures for `mutate_batch`.
fn batch_ops(batch: &[Op]) -> Vec<BatchOp<'_>> {
    batch
        .iter()
        .map(|op| {
            Box::new(move |s: &mut XmlStore| apply_store(s, op))
                as Box<dyn FnOnce(&mut XmlStore) -> StoreResult<()> + '_>
        })
        .collect()
}

fn recovered_xml(disk: &SharedMemPager, config: StoreConfig) -> Result<String, String> {
    let mut re = XmlStore::open(Box::new(disk.clone()), config)
        .map_err(|e| format!("recovery open failed: {e}"))?;
    re.check_consistency()
        .map_err(|e| format!("recovered store inconsistent: {e}"))?;
    re.to_document()
        .map(|d| d.to_xml())
        .map_err(|e| format!("recovered serialization: {e}"))
}

fn check_recovered(
    disk: &SharedMemPager,
    config: StoreConfig,
    want: &str,
    what: &str,
) -> Result<(), String> {
    let got = recovered_xml(disk, config)?;
    if got != want {
        return Err(format!(
            "{what}: document mismatch\n  got:  {got}\n  want: {want}"
        ));
    }
    Ok(())
}

/// Campaign configuration for the group-commit sweep: the cross product
/// of workloads, record limits, fuzz seeds, and batch sizes.
#[derive(Clone, Debug)]
pub struct GroupCommitConfig {
    pub scale: f64,
    pub gen_seed: u64,
    pub fuzz_seeds: Vec<u64>,
    pub ops_per_run: usize,
    pub record_limits: Vec<u64>,
    pub batch_sizes: Vec<usize>,
    /// Cap on swept crash points per batch (0 = sweep every write
    /// event until the batch commits).
    pub max_points_per_batch: u64,
    pub max_failures: usize,
}

impl GroupCommitConfig {
    /// CI smoke tier: all six workloads, one seed, batches of 4, capped
    /// sweep. Finishes in seconds.
    pub fn quick() -> GroupCommitConfig {
        GroupCommitConfig {
            scale: 0.001,
            gen_seed: 1,
            fuzz_seeds: vec![1],
            ops_per_run: 8,
            record_limits: vec![32],
            batch_sizes: vec![4],
            max_points_per_batch: 12,
            max_failures: 3,
        }
    }

    /// Full soak: uncapped sweep over batches of 4 and 8.
    pub fn full() -> GroupCommitConfig {
        GroupCommitConfig {
            scale: 0.002,
            gen_seed: 1,
            fuzz_seeds: vec![1, 2],
            ops_per_run: 16,
            record_limits: vec![32],
            batch_sizes: vec![4, 8],
            max_points_per_batch: 0,
            max_failures: 3,
        }
    }
}

/// Report from a group-commit campaign.
#[derive(Clone, Debug, Default)]
pub struct GroupCommitReport {
    pub runs: u64,
    pub batches: u64,
    pub ops_applied: u64,
    pub ops_skipped: u64,
    pub crash_points: u64,
    pub failures: Vec<(String, u64, usize, GroupFailure)>,
}

impl GroupCommitReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn summary(&self) -> String {
        format!(
            "{} runs, {} batches ({} ops, {} skipped), {} crash points, {} failure(s)",
            self.runs,
            self.batches,
            self.ops_applied,
            self.ops_skipped,
            self.crash_points,
            self.failures.len()
        )
    }
}

/// Run a group-commit campaign; `progress` receives one line per run.
pub fn run_group_commit_campaign(
    cfg: &GroupCommitConfig,
    mut progress: impl FnMut(&str),
) -> GroupCommitReport {
    let mut report = GroupCommitReport::default();
    'outer: for (wi, w) in workloads(cfg.scale, cfg.gen_seed).into_iter().enumerate() {
        for &k in &cfg.record_limits {
            for &fuzz_seed in &cfg.fuzz_seeds {
                for &batch_size in &cfg.batch_sizes {
                    let trace = generate_trace(
                        crate::fuzz::trace_seed(fuzz_seed, k, wi as u64),
                        cfg.ops_per_run,
                    );
                    report.runs += 1;
                    match run_group_commit_trace(
                        &w.doc,
                        k,
                        &trace,
                        batch_size,
                        cfg.max_points_per_batch,
                    ) {
                        Ok(o) => {
                            report.batches += o.batches_committed;
                            report.ops_applied += o.ops_applied;
                            report.ops_skipped += o.ops_skipped;
                            report.crash_points += o.crash_points;
                            progress(&format!(
                                "ok   {} k={k} seed={fuzz_seed} batch={batch_size}: {} batches, {} crash points",
                                w.name, o.batches_committed, o.crash_points
                            ));
                        }
                        Err(f) => {
                            progress(&format!(
                                "FAIL {} k={k} seed={fuzz_seed} batch={batch_size}: {f}",
                                w.name
                            ));
                            report
                                .failures
                                .push((w.name.clone(), fuzz_seed, batch_size, f));
                            if report.failures.len() >= cfg.max_failures {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::parse;

    #[test]
    fn group_commit_sweep_holds_on_a_small_trace() {
        let doc = parse(
            "<list><e>one entry of text</e><e>two entry of text</e><e>three entries of text</e></list>",
        )
        .unwrap();
        let trace = generate_trace(7, 6);
        let out = run_group_commit_trace(&doc, 48, &trace, 3, 0).expect("sweep holds");
        assert!(out.batches_committed >= 1);
        assert!(out.crash_points > 0);
    }

    #[test]
    fn quick_campaign_is_clean() {
        let mut cfg = GroupCommitConfig::quick();
        // One workload cell keeps the unit test fast; CI runs the full
        // quick tier through `natix soak --group-commit --quick`.
        cfg.ops_per_run = 4;
        cfg.max_points_per_batch = 6;
        let report = run_group_commit_campaign(&cfg, |_| {});
        assert!(report.ok(), "{}", report.summary());
        assert!(report.crash_points > 0);
    }
}
