//! Deterministic seeded TCP fault proxy, and the chaos harness that
//! drives client fleets through it.
//!
//! [`FaultProxy`] sits between clients and a live `natix serve` daemon
//! and mistreats every byte stream according to a seeded plan: forwarding
//! is chopped into partial writes, seeded stalls are injected before
//! chunks, throughput can be throttled to a byte rate, and connections
//! are reset mid-frame. All decisions derive from
//! `ProxyPlan::seed` mixed with the connection number and direction, so
//! a plan replays the same mistreatment schedule for the same sequence
//! of connections.
//!
//! [`run_proxy_chaos`] is the harness behind `natix stress --net
//! --proxy`: an in-process server, a proxy in front of it, and a fleet
//! of clients running the full verb sweep *through* the proxy,
//! reconnecting whenever the proxy tears their connection. The contract:
//! the server finishes with **zero protocol errors** (a torn TCP stream
//! must never be misread as a protocol violation), **zero worker
//! panics**, a clean drain (no wedged workers), and epoch consistency —
//! per-connection epochs never regress and two clients that dump the
//! same epoch see byte-identical documents.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use natix_core::Ekm;
use natix_datagen::{xmark, GenConfig};
use natix_server::{
    serve, Client, ClientError, Request, ResponseBody, ServeConfig, ServeSummary, UpdateOp,
};
use natix_store::{bulkload_with, FilePager, StoreConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

// ------------------------------------------------------------ the proxy

/// Seeded mistreatment plan for a [`FaultProxy`].
#[derive(Debug, Clone, Copy)]
pub struct ProxyPlan {
    /// Base seed; each connection/direction derives its own RNG from it.
    pub seed: u64,
    /// Upper bound of the stall injected before some forwarded chunks
    /// (milliseconds; 0 disables stalls).
    pub max_stall_ms: u64,
    /// Per-mille chance a forwarded chunk is preceded by a stall.
    pub stall_per_mille: u32,
    /// Largest slice forwarded per socket write — forces partial writes
    /// and frame fragmentation (0 = forward whole reads).
    pub max_chunk: usize,
    /// Per-mille chance, per forwarded chunk, of resetting the
    /// connection mid-frame (both directions die).
    pub reset_per_mille: u32,
    /// Byte-rate throttle per direction (bytes/second, 0 = unlimited).
    pub bytes_per_sec: u64,
}

impl ProxyPlan {
    /// Mild chaos: fragmentation and short stalls, occasional resets.
    /// Suitable for CI smoke runs.
    pub fn gentle(seed: u64) -> ProxyPlan {
        ProxyPlan {
            seed,
            max_stall_ms: 15,
            stall_per_mille: 80,
            max_chunk: 7,
            reset_per_mille: 4,
            bytes_per_sec: 0,
        }
    }

    /// Hostile network: heavy fragmentation, long stalls, throttling and
    /// frequent mid-frame resets.
    pub fn harsh(seed: u64) -> ProxyPlan {
        ProxyPlan {
            seed,
            max_stall_ms: 60,
            stall_per_mille: 150,
            max_chunk: 3,
            reset_per_mille: 12,
            bytes_per_sec: 256 * 1024,
        }
    }
}

/// What a proxy did over its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Connections proxied.
    pub connections: u64,
    /// Bytes forwarded (both directions).
    pub forwarded: u64,
    /// Connections reset mid-stream by the plan.
    pub resets: u64,
    /// Stalls injected.
    pub stalls: u64,
}

#[derive(Default)]
struct ProxyCounters {
    connections: AtomicU64,
    forwarded: AtomicU64,
    resets: AtomicU64,
    stalls: AtomicU64,
}

/// A running fault proxy; accepts on its own ephemeral port and forwards
/// to the upstream address through the mistreatment plan.
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ProxyCounters>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy in front of `upstream`.
    pub fn start(upstream: SocketAddr, plan: ProxyPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ProxyCounters::default());
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("natix-fault-proxy".into())
                .spawn(move || accept_loop(listener, upstream, plan, shutdown, counters))
                .expect("spawn proxy acceptor")
        };
        Ok(FaultProxy {
            addr,
            shutdown,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, tear down active pumps, and return the stats.
    pub fn stop(mut self) -> ProxyStats {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        ProxyStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            resets: self.counters.resets.load(Ordering::Relaxed),
            stalls: self.counters.stalls.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: ProxyPlan,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ProxyCounters>,
) {
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut conn = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue;
                };
                // One thread per direction; either side dying (or a
                // planned reset) kills both via the shared flag.
                let dead = Arc::new(AtomicBool::new(false));
                for dir in 0..2u64 {
                    let (mut from, mut to) = if dir == 0 {
                        (
                            client.try_clone().expect("clone client"),
                            server.try_clone().expect("clone server"),
                        )
                    } else {
                        (
                            server.try_clone().expect("clone server"),
                            client.try_clone().expect("clone client"),
                        )
                    };
                    let seed = plan
                        .seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(conn * 2 + dir);
                    let dead = Arc::clone(&dead);
                    let shutdown = Arc::clone(&shutdown);
                    let counters = Arc::clone(&counters);
                    pumps.push(
                        std::thread::Builder::new()
                            .name(format!("natix-proxy-pump-{conn}-{dir}"))
                            .spawn(move || {
                                pump(&mut from, &mut to, plan, seed, dead, shutdown, counters)
                            })
                            .expect("spawn proxy pump"),
                    );
                }
                conn += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                pumps.retain(|t| !t.is_finished());
            }
            Err(_) => break,
        }
    }
    for t in pumps {
        let _ = t.join();
    }
}

/// Forward one direction of one connection through the plan.
fn pump(
    from: &mut TcpStream,
    to: &mut TcpStream,
    plan: ProxyPlan,
    seed: u64,
    dead: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ProxyCounters>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    let mut window_start = Instant::now();
    let mut window_bytes = 0u64;
    let kill = |from: &TcpStream, to: &TcpStream| {
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    };
    loop {
        if dead.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) {
            kill(from, to);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                dead.store(true, Ordering::SeqCst);
                kill(from, to);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                dead.store(true, Ordering::SeqCst);
                kill(from, to);
                return;
            }
        };
        let mut off = 0usize;
        while off < n {
            if dead.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) {
                kill(from, to);
                return;
            }
            if plan.reset_per_mille > 0 && rng.gen_range(0..1000) < plan.reset_per_mille {
                // Mid-frame reset: kill both directions with bytes of the
                // current frame already delivered.
                counters.resets.fetch_add(1, Ordering::Relaxed);
                dead.store(true, Ordering::SeqCst);
                kill(from, to);
                return;
            }
            if plan.max_stall_ms > 0
                && plan.stall_per_mille > 0
                && rng.gen_range(0..1000) < plan.stall_per_mille
            {
                counters.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(rng.gen_range(1..=plan.max_stall_ms)));
            }
            let chunk = if plan.max_chunk > 0 {
                (n - off).min(rng.gen_range(1..=plan.max_chunk))
            } else {
                n - off
            };
            if to.write_all(&buf[off..off + chunk]).is_err() {
                dead.store(true, Ordering::SeqCst);
                kill(from, to);
                return;
            }
            counters
                .forwarded
                .fetch_add(chunk as u64, Ordering::Relaxed);
            off += chunk;
            if plan.bytes_per_sec > 0 {
                // Throttle: sleep whenever the current window runs ahead
                // of the byte budget.
                window_bytes += chunk as u64;
                let budget =
                    plan.bytes_per_sec as f64 * window_start.elapsed().as_secs_f64().max(1e-4);
                if (window_bytes as f64) > budget {
                    let excess_s = (window_bytes as f64 - budget) / plan.bytes_per_sec as f64;
                    std::thread::sleep(Duration::from_secs_f64(excess_s.min(0.25)));
                }
                if window_start.elapsed() > Duration::from_secs(2) {
                    window_start = Instant::now();
                    window_bytes = 0;
                }
            }
        }
    }
}

// ----------------------------------------------------- the chaos harness

/// Configuration for [`run_proxy_chaos`].
#[derive(Debug, Clone)]
pub struct ProxyChaosConfig {
    /// Base seed for the plan, the workloads, and the client mix.
    pub seed: u64,
    /// Concurrent clients behind the proxy.
    pub clients: usize,
    /// Requests each client completes (reconnects not counted).
    pub requests_per_client: usize,
    /// XMark scale of the served document.
    pub scale: f64,
    /// The mistreatment plan.
    pub plan: ProxyPlan,
    /// Session lease TTL handed to the server (ms).
    pub lease_ttl_ms: u64,
}

impl ProxyChaosConfig {
    /// CI smoke tier: one seeded stall/reset plan, a small fleet.
    pub fn quick() -> ProxyChaosConfig {
        ProxyChaosConfig {
            seed: 0xFA_117,
            clients: 3,
            requests_per_client: 60,
            scale: 0.003,
            plan: ProxyPlan::gentle(0xFA_117),
            lease_ttl_ms: 30_000,
        }
    }

    /// The acceptance tier: a bigger fleet under the harsh plan.
    pub fn full() -> ProxyChaosConfig {
        ProxyChaosConfig {
            seed: 0xFA_117,
            clients: 6,
            requests_per_client: 250,
            scale: 0.01,
            plan: ProxyPlan::harsh(0xFA_117),
            lease_ttl_ms: 30_000,
        }
    }
}

/// Result of [`run_proxy_chaos`].
#[derive(Debug)]
pub struct ProxyChaosReport {
    /// Requests completed across the fleet (through the chaos).
    pub completed: u64,
    /// Reconnects forced by torn connections.
    pub reconnects: u64,
    /// What the proxy injected.
    pub proxy: ProxyStats,
    /// Final server counters.
    pub server: ServeSummary,
    /// Contract violations (empty on success).
    pub failures: Vec<String>,
}

impl ProxyChaosReport {
    /// Zero violations, zero protocol errors, zero panics, clean drain?
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.server.proto_errors == 0 && self.server.worker_panics == 0
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} completed, {} reconnects; proxy: {} conns, {} resets, {} stalls, {} bytes; server: {} ({} failures)",
            self.completed,
            self.reconnects,
            self.proxy.connections,
            self.proxy.resets,
            self.proxy.stalls,
            self.proxy.forwarded,
            self.server,
            self.failures.len()
        )
    }
}

struct ChaosObservation {
    completed: u64,
    reconnects: u64,
    dumps: Vec<(u64, u64)>,
    failures: Vec<String>,
}

/// One client: the full verb sweep through the proxy, reconnecting on
/// every transport tear, re-`begin`ning on every expired lease.
fn chaos_client(proxy_addr: SocketAddr, id: usize, requests: usize, seed: u64) -> ChaosObservation {
    let mut obs = ChaosObservation {
        completed: 0,
        reconnects: 0,
        dumps: Vec::new(),
        failures: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64) << 32);
    let mut client: Option<Client> = None;
    let mut pin_epoch: Option<u64> = None;
    let mut last_epoch = 0u64;
    let mut done = 0usize;
    let mut tears = 0u64;
    while done < requests {
        let c = match client.as_mut() {
            Some(c) => c,
            None => {
                pin_epoch = None;
                match Client::connect(proxy_addr) {
                    Ok(c) => {
                        client = Some(c);
                        client.as_mut().unwrap()
                    }
                    Err(_) => {
                        tears += 1;
                        if tears > (requests as u64) * 20 {
                            obs.failures
                                .push(format!("client {id}: could not reconnect through proxy"));
                            return obs;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                }
            }
        };
        let req = match rng.gen_range(0..100u32) {
            0..=9 => Request::Ping,
            10..=24 => Request::Begin,
            25..=49 => Request::Query {
                xpath: "//keyword".to_string(),
                count_only: true,
            },
            50..=59 => Request::Dump { degraded_ok: false },
            60..=69 => Request::End,
            70..=77 => Request::Stats,
            78..=84 => Request::Fsck,
            _ => Request::Update {
                target: "/site".to_string(),
                op: UpdateOp::AppendText {
                    text: format!("chaos marker {id}.{done}"),
                },
            },
        };
        match c.request_retry(&req, 100) {
            Ok((resp, _)) => {
                if matches!(resp.body, ResponseBody::SessionExpired) {
                    // Typed lease expiry: the well-behaved path is a
                    // fresh begin; not a failure, not a completed verb.
                    pin_epoch = None;
                    continue;
                }
                if let ResponseBody::Error { kind, message } = &resp.body {
                    obs.failures
                        .push(format!("client {id}: {kind} error on {req:?}: {message}"));
                }
                match (&req, pin_epoch) {
                    (Request::Begin, _) => pin_epoch = Some(resp.epoch),
                    (Request::End, _) => pin_epoch = None,
                    // Only reads are served from the session snapshot;
                    // the other verbs report the committed epoch.
                    (Request::Query { .. } | Request::Dump { .. }, Some(p)) if resp.epoch != p => {
                        obs.failures.push(format!(
                            "client {id}: pinned at {p} but {req:?} reported {}",
                            resp.epoch
                        ));
                    }
                    (_, None) if resp.epoch > 0 && resp.epoch < last_epoch => {
                        obs.failures.push(format!(
                            "client {id}: epoch regressed {last_epoch} -> {}",
                            resp.epoch
                        ));
                    }
                    _ => {}
                }
                if pin_epoch.is_none() {
                    last_epoch = last_epoch.max(resp.epoch);
                }
                if let ResponseBody::DumpResult { xml, .. } = &resp.body {
                    let mut h = DefaultHasher::new();
                    xml.hash(&mut h);
                    obs.dumps.push((resp.epoch, h.finish()));
                }
                obs.completed += 1;
                done += 1;
            }
            Err(ClientError::SessionExpired) => {
                pin_epoch = None;
            }
            Err(_) => {
                // The proxy tore the stream (reset, or a stall past the
                // client timeout): reconnect and keep going.
                client = None;
                obs.reconnects += 1;
            }
        }
    }
    obs
}

/// Run the proxy-chaos campaign: server, proxy, fleet. See the module
/// docs for the contract.
pub fn run_proxy_chaos(config: &ProxyChaosConfig) -> ProxyChaosReport {
    let dir = std::env::temp_dir().join(format!("natix-proxy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let store = dir.join("proxied.natix");
    {
        let doc = xmark(GenConfig {
            scale: config.scale,
            seed: config.seed,
        });
        let pager = FilePager::create(&store).expect("create store file");
        drop(
            bulkload_with(&doc, &Ekm, 128, Box::new(pager), StoreConfig::default())
                .expect("bulkload proxied store"),
        );
    }
    let handle = serve(ServeConfig {
        store,
        workers: config.clients + 2,
        lease_ttl_ms: config.lease_ttl_ms,
        ..ServeConfig::default()
    })
    .expect("start chaos server");
    let direct_addr = handle.addr();
    let proxy = FaultProxy::start(direct_addr, config.plan).expect("start fault proxy");
    let proxy_addr = proxy.addr();

    let mut failures = Vec::new();
    let threads: Vec<_> = (0..config.clients)
        .map(|id| {
            let requests = config.requests_per_client;
            let seed = config.seed;
            std::thread::spawn(move || chaos_client(proxy_addr, id, requests, seed))
        })
        .collect();
    let mut completed = 0u64;
    let mut reconnects = 0u64;
    let mut by_epoch: HashMap<u64, u64> = HashMap::new();
    for t in threads {
        let obs = t.join().expect("chaos client panicked");
        completed += obs.completed;
        reconnects += obs.reconnects;
        failures.extend(obs.failures);
        for (epoch, hash) in obs.dumps {
            if let Some(prev) = by_epoch.insert(epoch, hash) {
                if prev != hash {
                    failures.push(format!(
                        "two clients saw different documents at epoch {epoch}"
                    ));
                }
            }
        }
    }
    let proxy_stats = proxy.stop();

    // Audit and shutdown over a *direct* connection: the store must
    // scrub clean, and the server must drain without wedged workers.
    match Client::connect(direct_addr).and_then(|mut c| {
        let r = c.fsck()?;
        c.shutdown_server()?;
        Ok(r)
    }) {
        Ok((clean, report)) => {
            if !clean {
                failures.push(format!("post-chaos fsck not clean:\n{report}"));
            }
        }
        Err(e) => failures.push(format!("post-chaos fsck/shutdown: {e}")),
    }
    let (sum_tx, sum_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = sum_tx.send(handle.join());
    });
    let server = match sum_rx.recv_timeout(Duration::from_secs(30)) {
        Ok(s) => s,
        Err(_) => {
            failures.push("server did not drain within 30s (wedged worker)".to_string());
            ServeSummary {
                connections: 0,
                requests: 0,
                ok: 0,
                errors: 0,
                shed: 0,
                queue_shed: 0,
                proto_errors: 0,
                worker_panics: 0,
                lease_expirations: 0,
                write_timeout_kills: 0,
            }
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    ProxyChaosReport {
        completed,
        reconnects,
        proxy: proxy_stats,
        server,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_chaos_quick_runs_clean() {
        let mut cfg = ProxyChaosConfig::quick();
        cfg.clients = 2;
        cfg.requests_per_client = 30;
        let report = run_proxy_chaos(&cfg);
        assert!(
            report.ok(),
            "proxy chaos failed: {}\n{}",
            report.summary(),
            report.failures.join("\n")
        );
    }
}
