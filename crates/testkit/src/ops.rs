//! Fuzz operations: a small update language whose targets are *positions
//! in the live element preorder*, resolved modulo the current element
//! count at execution time. That indirection keeps every operation
//! meaningful after earlier trace entries are removed during shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One update step. `target` picks the element at preorder position
/// `target % element_count` when the step executes; `tag` seeds the new
/// node's name or text payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Append a new element child under the target element.
    AppendElement { target: usize, tag: u32 },
    /// Append a new text child under the target element.
    AppendText { target: usize, tag: u32 },
    /// Insert a new element immediately before the target element.
    /// Skipped when the target resolves to the document root.
    InsertBefore { target: usize, tag: u32 },
    /// Delete the subtree rooted at the target element.
    /// Skipped when the target resolves to the document root.
    Delete { target: usize },
}

impl Op {
    /// Whether this op is a no-op for the given element count (it would
    /// target the root with an operation the root does not support).
    pub fn skipped(&self, element_count: usize) -> bool {
        match *self {
            Op::AppendElement { .. } | Op::AppendText { .. } => false,
            Op::InsertBefore { target, .. } | Op::Delete { target } => target % element_count == 0,
        }
    }
}

/// Element name for a tag: mixes fresh names with repeats so traces
/// exercise both label-table growth and interning hits.
pub fn name_for(tag: u32) -> String {
    if tag.is_multiple_of(3) {
        format!("n{tag}")
    } else {
        format!("t{}", tag % 7)
    }
}

/// Text payload for a tag: heavy enough that a run of appends forces
/// record splits at the fuzzer's record limits.
pub fn text_for(tag: u32) -> String {
    format!("text payload number {tag:04} with enough padding to carry weight")
}

/// Deterministically generate an `n`-step trace from `seed`. Targets are
/// drawn from a wide range and reduced modulo the live element count at
/// execution time.
pub fn generate_trace(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let tag = i as u32;
            let target = rng.gen_range(0..1_000_000usize);
            match rng.gen_range(0..10u32) {
                0..=4 => Op::AppendElement { target, tag },
                5..=6 => Op::AppendText { target, tag },
                7..=8 => Op::InsertBefore { target, tag },
                _ => Op::Delete { target },
            }
        })
        .collect()
}

/// One line per op, parseable by [`parse_op`].
pub fn format_op(op: &Op) -> String {
    match *op {
        Op::AppendElement { target, tag } => format!("append-element {target} {tag}"),
        Op::AppendText { target, tag } => format!("append-text {target} {tag}"),
        Op::InsertBefore { target, tag } => format!("insert-before {target} {tag}"),
        Op::Delete { target } => format!("delete {target}"),
    }
}

pub fn parse_op(line: &str) -> Result<Op, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty op line".to_string())?;
    let mut num = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("op `{verb}`: missing {what}"))?
            .parse::<u64>()
            .map_err(|e| format!("op `{verb}`: bad {what}: {e}"))
    };
    let op = match verb {
        "append-element" => Op::AppendElement {
            target: num("target")? as usize,
            tag: num("tag")? as u32,
        },
        "append-text" => Op::AppendText {
            target: num("target")? as usize,
            tag: num("tag")? as u32,
        },
        "insert-before" => Op::InsertBefore {
            target: num("target")? as usize,
            tag: num("tag")? as u32,
        },
        "delete" => Op::Delete {
            target: num("target")? as usize,
        },
        other => return Err(format!("unknown op `{other}`")),
    };
    if parts.next().is_some() {
        return Err(format!("op `{verb}`: trailing tokens"));
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generation_is_deterministic() {
        assert_eq!(generate_trace(42, 20), generate_trace(42, 20));
        assert_ne!(generate_trace(42, 20), generate_trace(43, 20));
    }

    #[test]
    fn ops_roundtrip_through_the_line_format() {
        for op in generate_trace(7, 50) {
            let line = format_op(&op);
            assert_eq!(parse_op(&line).unwrap(), op, "line: {line}");
        }
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(parse_op("").is_err());
        assert!(parse_op("frobnicate 1 2").is_err());
        assert!(parse_op("delete").is_err());
        assert!(parse_op("delete 1 2").is_err());
        assert!(parse_op("append-element 1 two").is_err());
    }

    #[test]
    fn root_targeting_structure_ops_are_skipped() {
        assert!(Op::Delete { target: 10 }.skipped(5));
        assert!(!Op::Delete { target: 11 }.skipped(5));
        assert!(Op::InsertBefore { target: 0, tag: 1 }.skipped(3));
        assert!(!Op::AppendElement { target: 0, tag: 1 }.skipped(3));
    }
}
