//! In-memory oracle: a plain mutable tree with the same serialization
//! rules as the store. The fuzzer applies every operation to both the
//! oracle and the store under test and compares serializations.

use natix_xml::{Document, DocumentBuilder, NodeId, NodeKind};

#[derive(Clone)]
struct MNode {
    kind: NodeKind,
    name: String,
    content: Option<String>,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// A mutable model of the document, independent of the store's record
/// layout. Nodes are arena-allocated; deletion unlinks the subtree (its
/// arena slots become unreachable garbage, which the traversals never
/// revisit).
#[derive(Clone)]
pub struct ModelTree {
    nodes: Vec<MNode>,
    root: usize,
}

impl ModelTree {
    pub fn from_document(doc: &Document) -> ModelTree {
        let tree = doc.tree();
        // Arena ids mirror the document's NodeIds (root = 0).
        let nodes = tree
            .node_ids()
            .map(|v| MNode {
                kind: doc.kind(v),
                name: doc.name(v).to_string(),
                content: doc.content(v).map(str::to_string),
                parent: tree.parent(v).map(|p| p.index()),
                children: tree.children(v).iter().map(|c| c.index()).collect(),
            })
            .collect();
        ModelTree {
            nodes,
            root: doc.root().index(),
        }
    }

    /// Live element ids in document (preorder) order. Index 0 is always
    /// the root; the fuzzer addresses operation targets as positions in
    /// this list so that shrunk traces stay meaningful.
    pub fn elements(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if self.nodes[id].kind == NodeKind::Element {
                out.push(id);
            }
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    pub fn element_count(&self) -> usize {
        self.elements().len()
    }

    fn push(&mut self, kind: NodeKind, name: &str, content: Option<&str>) -> usize {
        self.nodes.push(MNode {
            kind,
            name: name.to_string(),
            content: content.map(str::to_string),
            parent: None,
            children: Vec::new(),
        });
        self.nodes.len() - 1
    }

    pub fn append_child(
        &mut self,
        parent: usize,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) {
        let n = self.push(kind, name, content);
        self.nodes[n].parent = Some(parent);
        self.nodes[parent].children.push(n);
    }

    /// Insert a new node immediately before `sibling`. Panics if `sibling`
    /// is the root (callers must skip such operations).
    pub fn insert_before(
        &mut self,
        sibling: usize,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) {
        let parent = self.nodes[sibling].parent.expect("sibling has a parent");
        let pos = self.nodes[parent]
            .children
            .iter()
            .position(|&c| c == sibling)
            .expect("sibling is linked under its parent");
        let n = self.push(kind, name, content);
        self.nodes[n].parent = Some(parent);
        self.nodes[parent].children.insert(pos, n);
    }

    /// Unlink the subtree rooted at `id`. Panics if `id` is the root.
    pub fn delete_subtree(&mut self, id: usize) {
        let parent = self.nodes[id].parent.expect("cannot delete the root");
        self.nodes[parent].children.retain(|&c| c != id);
        self.nodes[id].parent = None;
    }

    /// Serialize exactly the way the store's `to_document` path does:
    /// rebuild a `Document` through `DocumentBuilder` and render it.
    pub fn to_xml(&self) -> String {
        let mut b = DocumentBuilder::new(&self.nodes[self.root].name);
        let mut stack: Vec<(usize, NodeId)> = vec![(self.root, NodeId::ROOT)];
        while let Some((id, target)) = stack.pop() {
            for &c in &self.nodes[id].children {
                let node = &self.nodes[c];
                let content = node.content.as_deref().unwrap_or_default();
                match node.kind {
                    NodeKind::Element => {
                        let t = b.element(target, &node.name);
                        stack.push((c, t));
                    }
                    NodeKind::Attribute => {
                        b.attribute(target, &node.name, content);
                    }
                    NodeKind::Text => {
                        b.text(target, content);
                    }
                    NodeKind::Comment => {
                        b.comment(target, content);
                    }
                    NodeKind::ProcessingInstruction => {
                        b.processing_instruction(target, &node.name, content);
                    }
                }
            }
        }
        b.build().to_xml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::parse;

    #[test]
    fn model_roundtrips_a_parsed_document() {
        let xml = "<a x=\"1\"><b>hi</b><!--note--><c><d/>tail</c></a>";
        let doc = parse(xml).unwrap();
        let model = ModelTree::from_document(&doc);
        assert_eq!(model.to_xml(), doc.to_xml());
    }

    #[test]
    fn mutations_track_document_structure() {
        let doc = parse("<a><b/><c/></a>").unwrap();
        let mut model = ModelTree::from_document(&doc);
        let els = model.elements();
        assert_eq!(els.len(), 3);
        model.append_child(els[0], NodeKind::Text, "#text", Some("x"));
        model.insert_before(els[2], NodeKind::Element, "mid", None);
        model.delete_subtree(els[1]);
        assert_eq!(model.to_xml(), "<a><mid/><c/>x</a>");
        assert_eq!(model.element_count(), 3);
    }
}
