//! Replication failover campaign: primary + hot standby + promote.
//!
//! [`run_repl_soak`] spawns a *primary* `natix serve` child, puts the
//! seeded [`FaultProxy`] in front of it, and spawns a *follower*
//! (`natix serve --replica-of <proxy>`) that must bootstrap and stay
//! caught up **through** the mistreated link (resets, stalls, partial
//! frames). An update storm runs against the primary until it is
//! SIGKILLed at a seeded point — a failover, not a graceful handover.
//! The follower is then promoted and audited:
//!
//! * **Acked-prefix equivalence** — the promoted document contains
//!   exactly a prefix of the update storm, and that prefix covers every
//!   update whose commit epoch is ≤ the follower's applied epoch at
//!   promotion time (an ack over the replication stream is a durability
//!   promise; at most the unacked tail may be missing).
//! * **Integrity** — the promoted store passes a wire `fsck` scrub.
//! * **Fencing** — a crafted divergent batch is refused *before*
//!   promotion with a typed invalid-update (chain mismatch), and
//!   *after* promotion with the typed `fenced` error carrying the
//!   fencing epoch, so a deposed primary can never push the new
//!   primary off its history.
//! * **Role contract** — while a replica, writes get the typed
//!   read-only retry-after and `stats` reports the applied epoch;
//!   after promotion the same daemon accepts writes.
//!
//! Rounds alternate [`ProxyPlan::gentle`] and [`ProxyPlan::harsh`] so
//! both CI-mild and hostile links are swept. This backs
//! `natix soak --repl`.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use natix_core::Ekm;
use natix_datagen::{xmark, GenConfig};
use natix_server::{Client, ErrKind, Request, ResponseBody, ShedKind, UpdateOp};
use natix_store::{bulkload_with, BatchKind, FilePager, ReplBatch, StoreConfig, PAGE_SIZE};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::proxy::{FaultProxy, ProxyPlan};

/// Configuration for [`run_repl_soak`].
#[derive(Debug, Clone)]
pub struct ReplSoakConfig {
    /// Base seed; round `i` mixes in `i` (document, kill point, proxy).
    pub seed: u64,
    /// Failover rounds (one primary + follower pair each).
    pub rounds: usize,
    /// Updates offered per round; the primary SIGKILL lands at a seeded
    /// point inside the storm.
    pub updates_per_round: usize,
    /// XMark scale of the seeded primary document.
    pub scale: f64,
    /// Path of the `natix` binary to spawn for `serve`.
    pub server_bin: PathBuf,
}

impl ReplSoakConfig {
    /// CI smoke tier: two rounds (one gentle, one harsh link).
    pub fn quick(server_bin: PathBuf) -> ReplSoakConfig {
        ReplSoakConfig {
            seed: 0x4E50_11CA ^ 0x5EED,
            rounds: 2,
            updates_per_round: 30,
            scale: 0.002,
            server_bin,
        }
    }

    /// The acceptance tier: more rounds, larger documents and storms.
    pub fn full(server_bin: PathBuf) -> ReplSoakConfig {
        ReplSoakConfig {
            seed: 0x4E50_11CA ^ 0x5EED,
            rounds: 6,
            updates_per_round: 90,
            scale: 0.005,
            server_bin,
        }
    }
}

/// Result of [`run_repl_soak`].
#[derive(Debug)]
pub struct ReplSoakReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Updates the primary acknowledged across all rounds.
    pub acked: u64,
    /// Acked updates found on the promoted follower (the rest were an
    /// unacked replication tail, which is legitimate loss).
    pub replicated: u64,
    /// Successful promotions (must equal `rounds`).
    pub failovers: usize,
    /// Contract violations (empty on success).
    pub failures: Vec<String>,
}

impl ReplSoakReport {
    /// Did every failover promote to an acked-prefix, fsck-clean,
    /// properly fenced primary?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} rounds, {} failovers, {} acked updates, {} on the promoted store, {} failures",
            self.rounds,
            self.failovers,
            self.acked,
            self.replicated,
            self.failures.len()
        )
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("natix-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A spawned `natix serve` child plus its parsed listen address. The
/// stdout pipe's read end stays open for the child's lifetime (dropping
/// it would EPIPE the daemon's own prints); drop kills the child so a
/// failed round can never leak a daemon.
struct ServeChild {
    child: std::process::Child,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
}

impl ServeChild {
    fn spawn(bin: &Path, store: &Path, extra: &[String]) -> Result<ServeChild, String> {
        let mut child = std::process::Command::new(bin)
            .arg("serve")
            .arg(store)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {bin:?}: {e}"))?;
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut reader = std::io::BufReader::new(stdout);
        let mut banner = String::new();
        if reader.read_line(&mut banner).is_err() || !banner.contains("listening on ") {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("no listen banner, got {banner:?}"));
        }
        let addr = banner
            .rsplit("listening on ")
            .next()
            .unwrap()
            .trim()
            .to_string();
        Ok(ServeChild {
            child,
            _stdout: reader,
            addr,
        })
    }

    /// SIGKILL — the failover trigger, not a graceful shutdown.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One part of a batch that can never extend any real history: its
/// `prev_epoch` is far past anything the follower has applied, so the
/// chain check must refuse it (and the fence must after promotion).
fn divergent_part(beyond_epoch: u64) -> Vec<u8> {
    let batch = ReplBatch {
        kind: BatchKind::Incremental,
        prev_epoch: beyond_epoch + 1_000_000,
        epoch: beyond_epoch + 1_000_001,
        pages: vec![(2, Box::new([0u8; PAGE_SIZE]))],
    };
    batch.encode_parts().remove(0)
}

/// Poll the replica until its applied epoch is nonzero (bootstrapped).
fn wait_bootstrap(addr: &str, budget: Duration) -> Result<u64, String> {
    let deadline = Instant::now() + budget;
    let mut last_err = String::from("never connected");
    while Instant::now() < deadline {
        match Client::connect(addr).and_then(|mut c| c.ping()) {
            Ok(epoch) if epoch > 0 => return Ok(epoch),
            Ok(_) => last_err = "applied epoch still 0".to_string(),
            Err(e) => last_err = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!("replica never bootstrapped: {last_err}"))
}

/// Poll the replica until its applied epoch stops advancing (three
/// identical consecutive polls): with the primary dead, whatever batches
/// were in flight have landed or never will.
fn wait_settle(addr: &str, budget: Duration) -> Result<u64, String> {
    let deadline = Instant::now() + budget;
    let mut c = Client::connect(addr).map_err(|e| format!("settle connect: {e}"))?;
    let mut last = c.ping().map_err(|e| format!("settle ping: {e}"))?;
    let mut stable = 0u32;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(150));
        let now = c.ping().map_err(|e| format!("settle ping: {e}"))?;
        if now == last {
            stable += 1;
            if stable >= 3 {
                return Ok(now);
            }
        } else {
            stable = 0;
            last = now;
        }
    }
    Err("replica applied epoch never settled".to_string())
}

/// One failover round. Returns `(acked, replicated, promoted)`.
fn repl_round(
    config: &ReplSoakConfig,
    round: usize,
    failures: &mut Vec<String>,
) -> (u64, u64, bool) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("round {round}: {msg}"));
    };
    let mut rng = StdRng::seed_from_u64(config.seed ^ (round as u64).wrapping_mul(0x9E37_79B9));
    let dir = scratch_dir(&format!("round-{round}"));
    let primary_store = dir.join("primary.natix");
    {
        let doc = xmark(GenConfig {
            scale: config.scale,
            seed: config.seed ^ round as u64,
        });
        let pager = FilePager::create(&primary_store).expect("create primary store");
        drop(
            bulkload_with(&doc, &Ekm, 128, Box::new(pager), StoreConfig::default())
                .expect("bulkload primary store"),
        );
    }

    let mut primary = match ServeChild::spawn(&config.server_bin, &primary_store, &[]) {
        Ok(c) => c,
        Err(e) => {
            fail(failures, format!("primary: {e}"));
            return (0, 0, false);
        }
    };
    // The replication link runs through the fault proxy; rounds
    // alternate between a mild and a hostile link. The plans are scaled
    // for bulk page streams: the stock gentle/harsh plans chop into
    // 3–7 byte chunks (right for small request frames, pathological for
    // a multi-hundred-KB snapshot part), so these keep MTU-ish
    // fragmentation while still injecting stalls and mid-frame resets.
    let plan_seed = config.seed ^ (round as u64).rotate_left(17);
    let plan = if round.is_multiple_of(2) {
        ProxyPlan {
            seed: plan_seed,
            max_stall_ms: 10,
            stall_per_mille: 30,
            max_chunk: 1500,
            reset_per_mille: 1,
            bytes_per_sec: 0,
        }
    } else {
        ProxyPlan {
            seed: plan_seed,
            max_stall_ms: 30,
            stall_per_mille: 60,
            max_chunk: 900,
            reset_per_mille: 2,
            bytes_per_sec: 2 * 1024 * 1024,
        }
    };
    let upstream = primary.addr.parse().expect("primary addr parses");
    let proxy = match FaultProxy::start(upstream, plan) {
        Ok(p) => p,
        Err(e) => {
            fail(failures, format!("proxy start: {e}"));
            return (0, 0, false);
        }
    };
    let replica_store = dir.join("replica.natix");
    let replica_of = vec!["--replica-of".to_string(), proxy.addr().to_string()];
    let replica = match ServeChild::spawn(&config.server_bin, &replica_store, &replica_of) {
        Ok(c) => c,
        Err(e) => {
            fail(failures, format!("replica: {e}"));
            return (0, 0, false);
        }
    };

    // The follower must bootstrap through the mistreated link before the
    // storm starts (the snapshot retries across proxy resets).
    if let Err(e) = wait_bootstrap(&replica.addr, Duration::from_secs(30)) {
        fail(failures, e);
        return (0, 0, false);
    }

    // Replica contract while following: writes are refused with the
    // typed read-only retry-after, and stats names the role.
    match Client::connect(replica.addr.as_str()).and_then(|mut c| {
        c.request(&Request::Update {
            target: "/site".to_string(),
            op: UpdateOp::AppendText {
                text: "must not land".to_string(),
            },
        })
    }) {
        Ok(resp) => match resp.body {
            ResponseBody::RetryAfter {
                kind: ShedKind::ReadOnly,
                ..
            } => {}
            other => fail(failures, format!("replica accepted a write: {other:?}")),
        },
        Err(e) => fail(failures, format!("replica write probe: {e}")),
    }
    match Client::connect(replica.addr.as_str()).and_then(|mut c| c.stats()) {
        Ok(text) => {
            if !text.contains("role         : replica") || !text.contains("applied epoch") {
                fail(failures, format!("replica stats missing role:\n{text}"));
            }
        }
        Err(e) => fail(failures, format!("replica stats: {e}")),
    }

    // The update storm against the primary; the kill lands mid-storm.
    // Each ack records the commit epoch so the audit can split acked
    // updates into "replicated by promotion time" vs "unacked tail".
    let kill_at = rng.gen_range(config.updates_per_round / 4..config.updates_per_round);
    let mut acked: Vec<(usize, u64)> = Vec::new();
    let mut lag_line_seen = false;
    match Client::connect(primary.addr.as_str()) {
        Ok(mut w) => {
            for i in 0..config.updates_per_round {
                if i == kill_at {
                    break;
                }
                let req = Request::Update {
                    target: "/site".to_string(),
                    op: UpdateOp::AppendText {
                        text: format!("repl marker {round}.{i} end"),
                    },
                };
                match w.request_retry(&req, 100) {
                    Ok((resp, _)) if resp.body == ResponseBody::UpdateDone => {
                        acked.push((i, resp.epoch))
                    }
                    Ok((resp, _)) => {
                        fail(failures, format!("update {i}: {resp:?}"));
                        break;
                    }
                    Err(e) => {
                        fail(failures, format!("update {i}: {e}"));
                        break;
                    }
                }
                // Mid-storm: the primary's stats must expose the
                // follower count and replication lag. The follower may
                // be between proxy-induced reconnects on any single
                // poll, so it only has to show up once per round.
                if !lag_line_seen && i % 8 == 4 {
                    if let Ok(text) = w.stats() {
                        if let Some(line) = text.lines().find(|l| l.starts_with("replication")) {
                            if line.contains("1 followers") && line.contains("lag") {
                                lag_line_seen = true;
                            }
                        } else {
                            fail(
                                failures,
                                "primary stats lost the replication line".to_string(),
                            );
                        }
                    }
                }
            }
        }
        Err(e) => fail(failures, format!("writer connect: {e}")),
    }
    if !lag_line_seen {
        // Last chance before the kill: poll a few more times — harsh
        // rounds can keep the follower disconnected for a while.
        for _ in 0..40 {
            if let Ok(text) = Client::connect(primary.addr.as_str()).and_then(|mut c| c.stats()) {
                if text
                    .lines()
                    .any(|l| l.starts_with("replication") && l.contains("1 followers"))
                {
                    lag_line_seen = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    if !lag_line_seen {
        fail(
            failures,
            "primary stats never reported the subscribed follower".to_string(),
        );
    }

    // Swept kill points: even (gentle-link) rounds let the follower
    // fully catch up before the kill — then *every* acked update must
    // survive promotion; odd (harsh-link) rounds kill mid-lag, so an
    // unacked replication tail is legitimately lost but the survivors
    // must still form an exact prefix.
    if round.is_multiple_of(2) {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut caught_up = false;
        while Instant::now() < deadline {
            if let Ok(text) = Client::connect(primary.addr.as_str()).and_then(|mut c| c.stats()) {
                // Both clauses matter: a momentarily-disconnected
                // follower reports "0 followers, lag 0 epochs", which
                // must not count as caught up.
                if text.lines().any(|l| {
                    l.starts_with("replication")
                        && l.contains("1 followers")
                        && l.contains("lag 0 epochs")
                }) {
                    caught_up = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if !caught_up {
            fail(
                failures,
                "follower never caught up (lag 0) on a gentle link".to_string(),
            );
        }
    }

    // Failover: SIGKILL the primary, let the follower settle.
    primary.kill();
    let applied = match wait_settle(&replica.addr, Duration::from_secs(15)) {
        Ok(a) => a,
        Err(e) => {
            fail(failures, e);
            return (acked.len() as u64, 0, false);
        }
    };

    // A divergent batch must be refused *before* promotion: the chain
    // check, not the fence, catches it (typed invalid-update).
    match Client::connect(replica.addr.as_str()).and_then(|mut c| {
        c.request(&Request::ReplApply {
            payload: divergent_part(applied),
        })
    }) {
        Ok(resp) => match resp.body {
            ResponseBody::Error {
                kind: ErrKind::InvalidUpdate,
                message,
            } if message.contains("chain mismatch") => {}
            other => fail(
                failures,
                format!("divergent batch pre-promote: expected a chain mismatch, got {other:?}"),
            ),
        },
        Err(e) => fail(failures, format!("divergent batch pre-promote: {e}")),
    }

    // Promote. The fencing epoch is the recovery-bumped epoch of the
    // promoted store, so it is at least the applied epoch.
    let fence_epoch = match Client::connect(replica.addr.as_str()).and_then(|mut c| c.promote()) {
        Ok(epoch) => epoch,
        Err(e) => {
            fail(failures, format!("promote: {e}"));
            return (acked.len() as u64, 0, false);
        }
    };
    if fence_epoch < applied {
        fail(
            failures,
            format!("fencing epoch {fence_epoch} below applied epoch {applied}"),
        );
    }

    // Acked-prefix audit: the promoted document holds exactly a prefix
    // of the storm, covering at least every ack with epoch ≤ applied.
    let mut replicated = 0u64;
    match Client::connect(replica.addr.as_str()).and_then(|mut c| c.dump()) {
        Ok((_, xml)) => {
            let mut present = Vec::new();
            for i in 0..config.updates_per_round {
                let marker = format!("repl marker {round}.{i} end");
                match xml.matches(&marker).count() {
                    0 => {}
                    1 => present.push(i),
                    n => fail(failures, format!("marker {i} appears {n} times")),
                }
            }
            if !present.iter().enumerate().all(|(pos, &i)| pos == i) {
                fail(
                    failures,
                    format!("promoted store holds a non-prefix marker set: {present:?}"),
                );
            }
            for &(i, epoch) in &acked {
                if epoch <= applied {
                    if present.contains(&i) {
                        replicated += 1;
                    } else {
                        fail(
                            failures,
                            format!(
                                "acked update {i} (epoch {epoch} ≤ applied {applied}) \
                                 missing after promotion"
                            ),
                        );
                    }
                } else if present.contains(&i) {
                    // Ahead of the acked cut but still on the promoted
                    // store: fine, it was replicated before the kill.
                    replicated += 1;
                }
            }
        }
        Err(e) => fail(failures, format!("post-promote dump: {e}")),
    }

    // The promoted store must scrub clean over the wire.
    match Client::connect(replica.addr.as_str()).and_then(|mut c| c.fsck()) {
        Ok((clean, report)) => {
            if !clean {
                fail(failures, format!("post-promote fsck:\n{report}"));
            }
        }
        Err(e) => fail(failures, format!("post-promote fsck: {e}")),
    }

    // Fencing: the same divergent batch now gets the typed fenced error
    // carrying the fencing epoch — a deposed primary's pushes bounce.
    match Client::connect(replica.addr.as_str()).and_then(|mut c| {
        c.request(&Request::ReplApply {
            payload: divergent_part(applied),
        })
    }) {
        Ok(resp) => match resp.body {
            ResponseBody::Error {
                kind: ErrKind::Fenced,
                ..
            } => {
                if resp.epoch != fence_epoch {
                    fail(
                        failures,
                        format!(
                            "fenced response carried epoch {} instead of {fence_epoch}",
                            resp.epoch
                        ),
                    );
                }
            }
            other => fail(
                failures,
                format!("divergent batch post-promote: expected fenced, got {other:?}"),
            ),
        },
        Err(e) => fail(failures, format!("divergent batch post-promote: {e}")),
    }

    // The promoted daemon serves writes now.
    match Client::connect(replica.addr.as_str()).and_then(|mut c| {
        c.request_retry(
            &Request::Update {
                target: "/site".to_string(),
                op: UpdateOp::AppendText {
                    text: format!("post-promote marker {round}"),
                },
            },
            50,
        )
    }) {
        Ok((resp, _)) if resp.body == ResponseBody::UpdateDone => {}
        Ok((resp, _)) => fail(failures, format!("post-promote update: {resp:?}")),
        Err(e) => fail(failures, format!("post-promote update: {e}")),
    }

    // Graceful teardown: the promoted daemon drains on a wire shutdown
    // (the replication client thread must not wedge the drain even
    // though its old primary is gone). A failed shutdown falls through
    // to the drop-kill.
    let mut replica = replica;
    match Client::connect(replica.addr.as_str()).and_then(|mut c| c.shutdown_server()) {
        Ok(()) => {
            // Bounded drain wait: a daemon that cannot drain within the
            // budget is a bug (a wedged replication client would show up
            // here) — report it and fall through to the drop-kill.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match replica.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(50))
                    }
                    Ok(None) => {
                        fail(
                            failures,
                            "promoted daemon did not drain within 10s of shutdown".to_string(),
                        );
                        break;
                    }
                    Err(e) => {
                        fail(failures, format!("waiting for drained daemon: {e}"));
                        break;
                    }
                }
            }
        }
        Err(e) => fail(failures, format!("post-promote shutdown: {e}")),
    }
    drop(replica);
    let _ = proxy.stop();
    let _ = std::fs::remove_dir_all(&dir);
    (acked.len() as u64, replicated, true)
}

/// Run the full failover campaign against spawned `natix serve` pairs.
pub fn run_repl_soak(config: &ReplSoakConfig) -> ReplSoakReport {
    let mut failures = Vec::new();
    let mut acked = 0u64;
    let mut replicated = 0u64;
    let mut failovers = 0usize;
    for round in 0..config.rounds {
        let (a, r, promoted) = repl_round(config, round, &mut failures);
        acked += a;
        replicated += r;
        if promoted {
            failovers += 1;
        }
    }
    ReplSoakReport {
        rounds: config.rounds,
        acked,
        replicated,
        failovers,
        failures,
    }
}
