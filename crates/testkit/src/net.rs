//! Client-facing network harnesses over `natix serve`.
//!
//! Two campaigns extend the chaos/stress machinery across the wire:
//!
//! * [`run_net_load`] — an in-process server under closed-loop client
//!   fleets of increasing size. Per level it records request latency
//!   percentiles, throughput and the shed rate (retry-after responses
//!   per offered request), while every client checks the snapshot
//!   contract at the wire: per-connection epochs never regress and two
//!   clients that dump the same epoch see byte-identical documents.
//!   This backs `natix stress --net` and `BENCH_serve.json`.
//! * [`run_serve_soak`] — a power-cut campaign against a *child process*
//!   running `natix serve`. Reader clients and an update storm run
//!   against the daemon until it is SIGKILLed mid-storm; the store file
//!   is then reopened (running crash recovery), must pass consistency
//!   and fsck, and must contain every update the server acknowledged —
//!   an ack over the wire is a durability promise. Killing the process
//!   (not the machine) means every completed `write` survives in the
//!   page cache, so *any* resulting file state is a legitimate recovery
//!   target and the assertion is universal, not timing-dependent.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use natix_core::Ekm;
use natix_datagen::{xmark, GenConfig};
use natix_server::{serve, Client, Request, ResponseBody, ServeConfig, ServeSummary, UpdateOp};
use natix_store::{bulkload_with, fsck, FilePager, StoreConfig, XmlStore};
use rand::{rngs::StdRng, Rng, SeedableRng};

// ------------------------------------------------------------- net load

/// Configuration for [`run_net_load`].
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Base seed for workload generation.
    pub seed: u64,
    /// Client-fleet sizes to sweep (offered-load levels).
    pub levels: Vec<usize>,
    /// Requests each client completes per level.
    pub requests_per_client: usize,
    /// XMark scale of the served document.
    pub scale: f64,
    /// Server connection workers.
    pub workers: usize,
    /// Store-service queue bound.
    pub queue_depth: usize,
    /// Snapshot-pin budget.
    pub max_pins: u32,
}

impl NetLoadConfig {
    /// CI smoke tier: two small levels, seconds.
    pub fn quick() -> NetLoadConfig {
        NetLoadConfig {
            seed: 0x5E17_E0AD,
            levels: vec![1, 4],
            requests_per_client: 40,
            scale: 0.005,
            workers: 6,
            queue_depth: 64,
            max_pins: 64,
        }
    }

    /// The acceptance tier: a full offered-load sweep.
    pub fn full() -> NetLoadConfig {
        NetLoadConfig {
            seed: 0x5E17_E0AD,
            levels: vec![1, 2, 4, 8, 16],
            requests_per_client: 250,
            scale: 0.02,
            // One worker per client at the top level: contention is
            // measured at the store, not the accept queue.
            workers: 16,
            queue_depth: 64,
            // Small enough that the 8- and 16-client levels contend for
            // admission and the shed-rate column comes alive.
            max_pins: 8,
        }
    }
}

/// Measurements of one offered-load level.
#[derive(Debug, Clone)]
pub struct NetLevelReport {
    /// Concurrent clients at this level.
    pub clients: usize,
    /// Requests that completed with a non-shed response.
    pub completed: u64,
    /// Retry-after responses received (each is one shed request).
    pub sheds: u64,
    /// Updates among the completed requests.
    pub updates: u64,
    /// Median request latency (microseconds, retries included).
    pub p50_us: u64,
    /// 99th-percentile request latency.
    pub p99_us: u64,
    /// Worst request latency.
    pub max_us: u64,
    /// Wall-clock seconds for the level.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub rps: f64,
    /// Sheds per offered request (`sheds / (completed + sheds)`).
    pub shed_rate: f64,
}

/// Result of [`run_net_load`].
#[derive(Debug)]
pub struct NetLoadReport {
    /// One entry per offered-load level, in sweep order.
    pub levels: Vec<NetLevelReport>,
    /// Final server counters after the graceful shutdown.
    pub server: ServeSummary,
    /// Contract violations (empty on success).
    pub failures: Vec<String>,
}

impl NetLoadReport {
    /// Did every level complete with zero violations and zero protocol
    /// errors at the server?
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.server.proto_errors == 0 && self.server.worker_panics == 0
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for l in &self.levels {
            s.push_str(&format!(
                "  {:>2} clients: {:>6} req, p50 {:>6} us, p99 {:>7} us, {:>7.0} req/s, shed rate {:.3}\n",
                l.clients, l.completed, l.p50_us, l.p99_us, l.rps, l.shed_rate
            ));
        }
        s.push_str(&format!(
            "  server: {} ({} failures)",
            self.server,
            self.failures.len()
        ));
        s
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("natix-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn build_store_file(dir: &Path, scale: f64, seed: u64) -> PathBuf {
    let path = dir.join("served.natix");
    let doc = xmark(GenConfig { scale, seed });
    let pager = FilePager::create(&path).expect("create store file");
    drop(
        bulkload_with(&doc, &Ekm, 128, Box::new(pager), StoreConfig::default())
            .expect("bulkload served store"),
    );
    path
}

/// What one closed-loop client observed during a level.
struct ClientObservation {
    latencies_us: Vec<u64>,
    completed: u64,
    sheds: u64,
    updates: u64,
    /// `(epoch, document hash)` per dump, for cross-client comparison.
    dumps: Vec<(u64, u64)>,
    failures: Vec<String>,
}

fn client_loop(
    addr: std::net::SocketAddr,
    id: usize,
    level: usize,
    requests: usize,
    seed: u64,
) -> ClientObservation {
    let mut obs = ClientObservation {
        latencies_us: Vec::with_capacity(requests),
        completed: 0,
        sheds: 0,
        updates: 0,
        dumps: Vec::new(),
        failures: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ (level as u64) << 24 ^ id as u64);
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            obs.failures.push(format!("client {id}: connect: {e}"));
            return obs;
        }
    };
    let mut last_epoch = 0u64;
    // While a session is pinned, reads come from its snapshot and must
    // all report the pin epoch; between pins, epochs are monotone.
    let mut pin_epoch: Option<u64> = None;
    for i in 0..requests {
        let req = if pin_epoch.is_some() {
            match rng.gen_range(0..100u32) {
                0..=19 => Request::End,
                20..=59 => Request::Query {
                    xpath: "//keyword".to_string(),
                    count_only: true,
                },
                60..=79 => Request::Query {
                    xpath: "//item".to_string(),
                    count_only: false,
                },
                _ => Request::Dump { degraded_ok: false },
            }
        } else {
            match rng.gen_range(0..100u32) {
                0..=19 => Request::Begin,
                20..=44 => Request::Query {
                    xpath: "//keyword".to_string(),
                    count_only: true,
                },
                45..=54 => Request::Query {
                    xpath: "//item".to_string(),
                    count_only: false,
                },
                55..=69 => Request::Dump { degraded_ok: false },
                70..=74 => Request::Stats,
                75..=79 => Request::Fsck,
                _ => Request::Update {
                    target: "/site".to_string(),
                    op: UpdateOp::AppendText {
                        text: format!("load marker {level}.{id}.{i}"),
                    },
                },
            }
        };
        let started = Instant::now();
        match c.request_retry(&req, 200) {
            Ok((resp, retries)) => {
                obs.latencies_us.push(started.elapsed().as_micros() as u64);
                obs.completed += 1;
                obs.sheds += retries as u64;
                match (&req, pin_epoch) {
                    (Request::Begin, _) => pin_epoch = Some(resp.epoch),
                    (Request::End, _) => pin_epoch = None,
                    (_, Some(pinned)) => {
                        // Snapshot isolation at the wire: a pinned
                        // session never sees another epoch.
                        if resp.epoch != pinned {
                            obs.failures.push(format!(
                                "client {id}: pinned at epoch {pinned} but {req:?} reported {}",
                                resp.epoch
                            ));
                        }
                    }
                    (_, None) => {
                        if resp.epoch > 0 && resp.epoch < last_epoch {
                            obs.failures.push(format!(
                                "client {id}: epoch regressed {last_epoch} -> {} on {req:?}",
                                resp.epoch
                            ));
                        }
                    }
                }
                last_epoch = last_epoch.max(resp.epoch);
                match &resp.body {
                    ResponseBody::UpdateDone => obs.updates += 1,
                    ResponseBody::DumpResult { xml, full, .. } => {
                        if !full {
                            obs.failures
                                .push(format!("client {id}: degraded dump without opting in"));
                        }
                        let mut h = DefaultHasher::new();
                        xml.hash(&mut h);
                        obs.dumps.push((resp.epoch, h.finish()));
                    }
                    ResponseBody::Error { kind, message } => {
                        obs.failures
                            .push(format!("client {id}: {kind} error on {req:?}: {message}"));
                    }
                    _ => {}
                }
            }
            Err(e) => {
                obs.failures.push(format!("client {id}: request {i}: {e}"));
                return obs;
            }
        }
    }
    obs
}

/// Sweep the configured fleet sizes against one in-process server and
/// measure latency, throughput and shed behaviour per level.
pub fn run_net_load(config: &NetLoadConfig) -> NetLoadReport {
    let dir = scratch_dir("load");
    let store = build_store_file(&dir, config.scale, config.seed);
    let handle = serve(ServeConfig {
        store,
        workers: config.workers,
        queue_depth: config.queue_depth,
        max_pins: config.max_pins,
        ..ServeConfig::default()
    })
    .expect("start load server");
    let addr = handle.addr();

    let mut levels = Vec::new();
    let mut failures = Vec::new();
    for &clients in &config.levels {
        let started = Instant::now();
        let threads: Vec<_> = (0..clients)
            .map(|id| {
                let requests = config.requests_per_client;
                let seed = config.seed;
                std::thread::spawn(move || client_loop(addr, id, clients, requests, seed))
            })
            .collect();
        let observations: Vec<ClientObservation> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        let elapsed_s = started.elapsed().as_secs_f64();

        let mut latencies: Vec<u64> = Vec::new();
        let mut completed = 0u64;
        let mut sheds = 0u64;
        let mut updates = 0u64;
        let mut by_epoch: HashMap<u64, u64> = HashMap::new();
        for obs in observations {
            latencies.extend(obs.latencies_us);
            completed += obs.completed;
            sheds += obs.sheds;
            updates += obs.updates;
            failures.extend(obs.failures);
            for (epoch, hash) in obs.dumps {
                if let Some(prev) = by_epoch.insert(epoch, hash) {
                    if prev != hash {
                        failures.push(format!(
                            "level {clients}: two clients saw different documents at epoch {epoch}"
                        ));
                    }
                }
            }
        }
        latencies.sort_unstable();
        let offered = completed + sheds;
        levels.push(NetLevelReport {
            clients,
            completed,
            sheds,
            updates,
            p50_us: percentile_us(&latencies, 50.0),
            p99_us: percentile_us(&latencies, 99.0),
            max_us: latencies.last().copied().unwrap_or(0),
            elapsed_s,
            rps: if elapsed_s > 0.0 {
                completed as f64 / elapsed_s
            } else {
                0.0
            },
            shed_rate: if offered > 0 {
                sheds as f64 / offered as f64
            } else {
                0.0
            },
        });
    }

    // The store under load must still scrub clean before shutdown.
    match Client::connect(addr).and_then(|mut c| {
        let r = c.fsck()?;
        c.shutdown_server()?;
        Ok(r)
    }) {
        Ok((clean, report)) => {
            if !clean {
                failures.push(format!("post-load fsck not clean:\n{report}"));
            }
        }
        Err(e) => failures.push(format!("post-load fsck/shutdown: {e}")),
    }
    let server = handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    NetLoadReport {
        levels,
        server,
        failures,
    }
}

// ----------------------------------------------------------- serve soak

/// Configuration for [`run_serve_soak`].
#[derive(Debug, Clone)]
pub struct ServeSoakConfig {
    /// Base seed; round `i` mixes in `i`.
    pub seed: u64,
    /// Power-cut rounds (one daemon spawn + kill each).
    pub rounds: usize,
    /// Updates offered per round; the kill lands at a seeded random
    /// point inside the storm.
    pub updates_per_round: usize,
    /// Concurrent reader clients per round.
    pub readers: usize,
    /// Path of the `natix` binary to spawn for `serve`.
    pub server_bin: PathBuf,
}

impl ServeSoakConfig {
    /// CI smoke tier.
    pub fn quick(server_bin: PathBuf) -> ServeSoakConfig {
        ServeSoakConfig {
            seed: 0x50A4_0000 ^ 0x5EED,
            rounds: 2,
            updates_per_round: 40,
            readers: 2,
            server_bin,
        }
    }

    /// The acceptance tier.
    pub fn full(server_bin: PathBuf) -> ServeSoakConfig {
        ServeSoakConfig {
            seed: 0x50A4_0000 ^ 0x5EED,
            rounds: 8,
            updates_per_round: 120,
            readers: 3,
            server_bin,
        }
    }
}

/// Result of [`run_serve_soak`].
#[derive(Debug)]
pub struct ServeSoakReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Updates acknowledged across all rounds (all must survive).
    pub acked: u64,
    /// Acknowledged updates found intact after recovery.
    pub recovered: u64,
    /// Contract violations (empty on success).
    pub failures: Vec<String>,
}

impl ServeSoakReport {
    /// Did every acknowledged update survive every power cut?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} rounds, {} acked updates, {} recovered, {} failures",
            self.rounds,
            self.acked,
            self.recovered,
            self.failures.len()
        )
    }
}

/// One round: spawn the daemon, load it, SIGKILL it mid-storm, then
/// recover the store file and audit the acks.
fn soak_round(config: &ServeSoakConfig, round: usize, failures: &mut Vec<String>) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (round as u64).wrapping_mul(0x9E37_79B9));
    let dir = scratch_dir(&format!("soak-{round}"));
    let store = dir.join("soak.natix");
    {
        let doc = natix_xml::parse("<list><e>one entry of text</e><e>two entry of text</e></list>")
            .expect("seed doc");
        let pager = FilePager::create(&store).expect("create soak store");
        drop(
            bulkload_with(&doc, &Ekm, 16, Box::new(pager), StoreConfig::default())
                .expect("bulkload soak store"),
        );
    }

    // Spawn the daemon and learn its ephemeral port from the banner line.
    let mut child = match std::process::Command::new(&config.server_bin)
        .arg("serve")
        .arg(&store)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("round {round}: spawn {:?}: {e}", config.server_bin));
            return (0, 0);
        }
    };
    let stdout = child.stdout.take().expect("child stdout piped");
    // Keep the pipe's read end open for the child's lifetime: dropping
    // it would EPIPE the daemon's own stdout prints.
    let mut stdout_reader = std::io::BufReader::new(stdout);
    let mut banner = String::new();
    if stdout_reader.read_line(&mut banner).is_err() || !banner.contains("listening on ") {
        failures.push(format!("round {round}: no listen banner, got {banner:?}"));
        let _ = child.kill();
        let _ = child.wait();
        return (0, 0);
    }
    let addr = banner
        .rsplit("listening on ")
        .next()
        .unwrap()
        .trim()
        .to_string();

    // Reader clients exercise the snapshot contract until the kill.
    let stop = Arc::new(AtomicBool::new(false));
    let reader_failures = Arc::new(Mutex::new(Vec::<String>::new()));
    let readers: Vec<_> = (0..config.readers)
        .map(|r| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let sink = Arc::clone(&reader_failures);
            std::thread::spawn(move || {
                let Ok(mut c) = Client::connect(addr.as_str()) else {
                    if !stop.load(Ordering::SeqCst) {
                        sink.lock()
                            .unwrap()
                            .push(format!("reader {r}: connect failed"));
                    }
                    return;
                };
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    match c.request_retry(&Request::Dump { degraded_ok: false }, 20) {
                        Ok((resp, _)) => {
                            if resp.epoch < last_epoch {
                                sink.lock()
                                    .unwrap()
                                    .push(format!("reader {r}: epoch regressed"));
                            }
                            last_epoch = resp.epoch;
                        }
                        Err(_) => {
                            // Only a pre-kill failure is a violation; the
                            // kill itself tears connections mid-request.
                            if !stop.load(Ordering::SeqCst) {
                                sink.lock()
                                    .unwrap()
                                    .push(format!("reader {r}: request failed before the kill"));
                            }
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    // The update storm; the kill lands mid-storm at a seeded point.
    let kill_at = rng.gen_range(config.updates_per_round / 4..config.updates_per_round);
    let mut acked: Vec<usize> = Vec::new();
    match Client::connect(addr.as_str()) {
        Ok(mut w) => {
            for i in 0..config.updates_per_round {
                if i == kill_at {
                    break;
                }
                let req = Request::Update {
                    target: "/list".to_string(),
                    op: UpdateOp::AppendText {
                        text: format!("soak marker {round}.{i} end"),
                    },
                };
                match w.request_retry(&req, 100) {
                    Ok((resp, _)) if resp.body == ResponseBody::UpdateDone => acked.push(i),
                    Ok((resp, _)) => {
                        failures.push(format!("round {round}: update {i}: {resp:?}"));
                        break;
                    }
                    Err(e) => {
                        failures.push(format!("round {round}: update {i}: {e}"));
                        break;
                    }
                }
            }
        }
        Err(e) => failures.push(format!("round {round}: writer connect: {e}")),
    }

    // Power cut: SIGKILL, no shutdown handshake. Completed writes
    // survive in the page cache; in-flight ones may tear.
    stop.store(true, Ordering::SeqCst);
    let _ = child.kill();
    let _ = child.wait();
    drop(stdout_reader);
    for t in readers {
        let _ = t.join();
    }
    failures.extend(reader_failures.lock().unwrap().drain(..));

    // Recovery audit: reopen (replays the journal), then scrub.
    let mut recovered = 0u64;
    match FilePager::open(&store).and_then(|p| XmlStore::open(Box::new(p), StoreConfig::default()))
    {
        Ok(mut re) => {
            if let Err(e) = re.check_consistency() {
                failures.push(format!("round {round}: post-kill consistency: {e}"));
            }
            match re.to_document() {
                Ok(doc) => {
                    let xml = doc.to_xml();
                    for &i in &acked {
                        let marker = format!("soak marker {round}.{i} end");
                        if xml.matches(&marker).count() == 1 {
                            recovered += 1;
                        } else {
                            failures.push(format!(
                                "round {round}: acked update {i} lost or duplicated after power cut"
                            ));
                        }
                    }
                }
                Err(e) => failures.push(format!("round {round}: post-kill read: {e}")),
            }
        }
        Err(e) => failures.push(format!("round {round}: post-kill reopen: {e}")),
    }
    match FilePager::open(&store) {
        Ok(mut p) => {
            let report = fsck(&mut p, false);
            if !report.clean() {
                failures.push(format!("round {round}: post-kill fsck:\n{report}"));
            }
        }
        Err(e) => failures.push(format!("round {round}: post-kill fsck open: {e}")),
    }
    let _ = std::fs::remove_dir_all(&dir);
    (acked.len() as u64, recovered)
}

// ----------------------------------------------------------- lease leak

/// Configuration for [`run_lease_leak`].
#[derive(Debug, Clone)]
pub struct LeaseLeakConfig {
    /// Base seed (document generation).
    pub seed: u64,
    /// Lease TTL handed to the server (ms). The whole scenario takes a
    /// few multiples of this.
    pub lease_ttl_ms: u64,
    /// Well-behaved clients competing for the pin budget.
    pub victims: usize,
    /// Updates issued while the leak starves the budget (they grow the
    /// reclamation backlog the stuck pin blocks).
    pub updates: usize,
    /// XMark scale of the served document.
    pub scale: f64,
}

impl LeaseLeakConfig {
    /// CI smoke tier (~2 lease TTLs of wall clock).
    pub fn quick() -> LeaseLeakConfig {
        LeaseLeakConfig {
            seed: 0x0001_EA5E,
            lease_ttl_ms: 400,
            victims: 2,
            updates: 6,
            scale: 0.002,
        }
    }

    /// The acceptance tier: longer TTL, more victims.
    pub fn full() -> LeaseLeakConfig {
        LeaseLeakConfig {
            seed: 0x0001_EA5E,
            lease_ttl_ms: 800,
            victims: 4,
            updates: 12,
            scale: 0.005,
        }
    }
}

/// Result of [`run_lease_leak`].
#[derive(Debug)]
pub struct LeaseLeakReport {
    /// Sheds the victims ate while the leaker held the only pin slot.
    pub starved_sheds: u64,
    /// Sheds after one lease TTL (must be 0: the reaper freed the slot).
    pub recovered_sheds: u64,
    /// Successful victim pins after the TTL.
    pub recovered_pins: u64,
    /// Reclamation backlog at the peak of the leak and after recovery.
    pub backlog_peak: u64,
    pub backlog_after: u64,
    /// Final server counters.
    pub server: ServeSummary,
    /// Contract violations (empty on success).
    pub failures: Vec<String>,
}

impl LeaseLeakReport {
    /// Did the reaper unstarve the budget and unblock reclamation?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} sheds while leaked, {} after expiry ({} pins ok), backlog {} -> {}, {} lease expirations, {} failures",
            self.starved_sheds,
            self.recovered_sheds,
            self.recovered_pins,
            self.backlog_peak,
            self.backlog_after,
            self.server.lease_expirations,
            self.failures.len()
        )
    }
}

/// Pull the `backlog : N superseded pages` figure out of the stats text.
fn parse_backlog(stats: &str) -> Option<u64> {
    let line = stats
        .lines()
        .find(|l| l.trim_start().starts_with("backlog"))?;
    line.split(':')
        .nth(1)?
        .trim()
        .split(' ')
        .next()?
        .parse()
        .ok()
}

/// One deliberate leaker must never starve the other clients for more
/// than a lease TTL: it pins the *only* admission slot and goes silent;
/// well-behaved victims shed until the reaper expires the lease, then
/// pin freely (shed rate returns to 0). The leaker's next request is
/// answered with the typed session-expired response, after which a fresh
/// `begin` works. Updates issued throughout prove the stuck pin's
/// reclamation backlog drains once the lease is reaped.
pub fn run_lease_leak(config: &LeaseLeakConfig) -> LeaseLeakReport {
    let ttl = std::time::Duration::from_millis(config.lease_ttl_ms);
    let dir = scratch_dir("lease");
    let store = build_store_file(&dir, config.scale, config.seed);
    let handle = serve(ServeConfig {
        store,
        workers: config.victims + 3,
        // One pin slot: the leak starves the whole budget.
        max_pins: 1,
        lease_ttl_ms: config.lease_ttl_ms,
        ..ServeConfig::default()
    })
    .expect("start lease server");
    let addr = handle.addr();
    let mut failures = Vec::new();

    // The leaker pins the only slot and goes silent.
    let mut leaker = Client::connect(addr).expect("leaker connect");
    if let Err(e) = leaker.begin() {
        failures.push(format!("leaker begin: {e}"));
    }
    let pinned_at = Instant::now();

    let mut victims: Vec<Client> = (0..config.victims.max(1))
        .map(|_| Client::connect(addr).expect("victim connect"))
        .collect();
    let mut writer = Client::connect(addr).expect("writer connect");

    // Phase A — starvation: while the lease is live, every victim pin
    // attempt must shed (round-robin so victims never shed each other).
    let mut starved_sheds = 0u64;
    let mut update_no = 0usize;
    let phase_a_end = pinned_at + ttl.mul_f64(0.7);
    'phase_a: while Instant::now() < phase_a_end {
        for (v, c) in victims.iter_mut().enumerate() {
            match c.request(&Request::Begin) {
                Ok(resp) => match resp.body {
                    ResponseBody::RetryAfter { .. } => starved_sheds += 1,
                    ResponseBody::SessionPinned => {
                        failures.push(format!("victim {v} pinned while the leak was live"));
                        let _ = c.end();
                    }
                    other => failures.push(format!("victim {v} begin: {other:?}")),
                },
                Err(e) => failures.push(format!("victim {v} begin: {e}")),
            }
        }
        if update_no < config.updates {
            update_no += 1;
            let req = Request::Update {
                target: "/site".to_string(),
                op: UpdateOp::AppendText {
                    text: format!("leak marker {update_no}"),
                },
            };
            if let Err(e) = writer.request_retry(&req, 50) {
                failures.push(format!("update {update_no}: {e}"));
                break 'phase_a;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let backlog_peak = match writer.stats() {
        Ok(text) => parse_backlog(&text).unwrap_or(0),
        Err(e) => {
            failures.push(format!("stats at leak peak: {e}"));
            0
        }
    };
    if backlog_peak == 0 {
        failures.push("stuck pin did not accumulate a reclamation backlog".to_string());
    }

    // Let the lease expire and the reaper run (TTL + a reaper tick).
    let deadline = pinned_at + ttl + ttl.mul_f64(0.5);
    while Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Phase B — recovery: within one TTL of the expiry the shed rate is
    // back to 0 and pins flow again.
    let mut recovered_sheds = 0u64;
    let mut recovered_pins = 0u64;
    let phase_b_end = Instant::now() + ttl;
    while Instant::now() < phase_b_end {
        for (v, c) in victims.iter_mut().enumerate() {
            match c.request(&Request::Begin) {
                Ok(resp) => match resp.body {
                    ResponseBody::RetryAfter { .. } => recovered_sheds += 1,
                    ResponseBody::SessionPinned => {
                        recovered_pins += 1;
                        if let Err(e) = c.end() {
                            failures.push(format!("victim {v} end: {e}"));
                        }
                    }
                    other => failures.push(format!("victim {v} post-expiry begin: {other:?}")),
                },
                Err(e) => failures.push(format!("victim {v} post-expiry begin: {e}")),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    if recovered_sheds > 0 {
        failures.push(format!(
            "shed rate did not return to 0 within one TTL ({recovered_sheds} sheds)"
        ));
    }
    if recovered_pins == 0 {
        failures.push("no victim managed to pin after the lease expired".to_string());
    }

    // The leaker is told exactly once, then recovers by re-beginning.
    match leaker.query("//keyword") {
        Err(natix_server::ClientError::SessionExpired) => {}
        Ok(_) => failures.push("leaker was not told its session expired".to_string()),
        Err(e) => failures.push(format!("leaker post-expiry query: {e}")),
    }
    match leaker.begin() {
        Ok(_) => {
            if let Err(e) = leaker.end() {
                failures.push(format!("leaker re-begin end: {e}"));
            }
        }
        Err(e) => failures.push(format!("leaker re-begin: {e}")),
    }

    // Reclamation proceeded once the pin was reaped: a few more commits
    // drain the backlog the leak accumulated.
    for i in 0..3 {
        let req = Request::Update {
            target: "/site".to_string(),
            op: UpdateOp::AppendText {
                text: format!("post-leak marker {i}"),
            },
        };
        if let Err(e) = writer.request_retry(&req, 50) {
            failures.push(format!("post-leak update {i}: {e}"));
        }
    }
    let backlog_after = match writer.stats() {
        Ok(text) => parse_backlog(&text).unwrap_or(u64::MAX),
        Err(e) => {
            failures.push(format!("stats after recovery: {e}"));
            u64::MAX
        }
    };
    if backlog_peak > 0 && backlog_after >= backlog_peak {
        failures.push(format!(
            "reclamation backlog did not drain ({backlog_peak} -> {backlog_after})"
        ));
    }

    match Client::connect(addr).and_then(|mut c| {
        let r = c.fsck()?;
        c.shutdown_server()?;
        Ok(r)
    }) {
        Ok((clean, report)) => {
            if !clean {
                failures.push(format!("post-leak fsck not clean:\n{report}"));
            }
        }
        Err(e) => failures.push(format!("post-leak fsck/shutdown: {e}")),
    }
    let server = handle.join();
    if server.lease_expirations == 0 {
        failures.push("server counted no lease expirations".to_string());
    }
    let _ = std::fs::remove_dir_all(&dir);
    LeaseLeakReport {
        starved_sheds,
        recovered_sheds,
        recovered_pins,
        backlog_peak,
        backlog_after,
        server,
        failures,
    }
}

/// Run the full power-cut campaign against spawned `natix serve`
/// daemons.
pub fn run_serve_soak(config: &ServeSoakConfig) -> ServeSoakReport {
    let mut failures = Vec::new();
    let mut acked = 0u64;
    let mut recovered = 0u64;
    for round in 0..config.rounds {
        let (a, r) = soak_round(config, round, &mut failures);
        acked += a;
        recovered += r;
    }
    ServeSoakReport {
        rounds: config.rounds,
        acked,
        recovered,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_leak_quick_unstarves_within_one_ttl() {
        let report = run_lease_leak(&LeaseLeakConfig::quick());
        assert!(
            report.ok(),
            "lease leak scenario failed: {}\n{}",
            report.summary(),
            report.failures.join("\n")
        );
        assert!(report.starved_sheds > 0, "leak never starved the budget");
    }
}
