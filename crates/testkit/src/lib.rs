//! Model-based crash/update fuzz harness for the natix store.
//!
//! The harness drives [`natix_store::XmlStore`] and an in-memory oracle
//! ([`ModelTree`]) through identical seeded traces of update operations
//! over the Table 1 evaluation documents, checking after every step:
//!
//! 1. **Oracle equivalence** — the store serializes to exactly the
//!    oracle's document;
//! 2. **Structural consistency** — the full record-graph validator
//!    (`check_consistency`) passes, including record weight limits;
//! 3. **Crash safety** — replaying the step from a pre-step disk
//!    snapshot with a power cut (clean or torn) at every write event,
//!    then reopening, recovers to the pre- or post-step document; and a
//!    transient write-error probe leaves the *live* handle consistent.
//!
//! Crash recovery is additionally followed by an `fsck` scrub: every
//! power cut must leave a store that both recovers correctly *and*
//! passes the integrity scrubber.
//!
//! A second sweep — [`run_corruption_trace`] / [`run_corruption_campaign`]
//! — rots every page class of every committed state (payload bit-rot and
//! checksum damage) and asserts detect-or-correct against the oracle:
//! strict reads either return exactly the committed document or fail
//! with a corruption error, and `fsck` repair salvages the survivors
//! with an exact quarantine/damage report.
//!
//! Failing traces are shrunk to a minimal reproduction and rendered as a
//! line-format script replayable with [`replay`], plus a ready-to-paste
//! regression test ([`Failure::regression_test`]).
//!
//! Entry points: [`run_campaign`] with [`CampaignConfig::quick`] (CI
//! smoke tier, seconds) or [`CampaignConfig::full`] (≥1000 crash
//! points); [`run_trace`] for a single trace; [`replay`] for scripts.

mod bulk;
mod chaos;
mod exhaust;
mod fuzz;
mod group;
mod model;
mod net;
mod ops;
mod proxy;
mod repl;

pub use bulk::{run_bulkload_campaign, BulkCampaignConfig, BulkFailure, BulkReport};

pub use exhaust::{run_diskfull_campaign, run_diskfull_trace, DiskFullConfig};

pub use chaos::{
    run_chaos, run_interleaving, ChaosConfig, ChaosFailure, ChaosReport, InterleavingStats,
};
pub use fuzz::{
    min_record_limit, replay, run_campaign, run_corruption_campaign, run_corruption_trace,
    run_trace, shrink_trace, workload_by_name, workloads, CampaignConfig, CampaignReport,
    CorruptionOutcome, CrashMode, Failure, RunOutcome, TraceFailure, Workload,
};
pub use group::{
    run_group_commit_campaign, run_group_commit_trace, GroupCommitConfig, GroupCommitReport,
    GroupFailure, GroupOutcome,
};
pub use model::ModelTree;
pub use net::{
    percentile_us, run_lease_leak, run_net_load, run_serve_soak, LeaseLeakConfig, LeaseLeakReport,
    NetLevelReport, NetLoadConfig, NetLoadReport, ServeSoakConfig, ServeSoakReport,
};
pub use ops::{format_op, generate_trace, name_for, parse_op, text_for, Op};
pub use proxy::{
    run_proxy_chaos, FaultProxy, ProxyChaosConfig, ProxyChaosReport, ProxyPlan, ProxyStats,
};
pub use repl::{run_repl_soak, ReplSoakConfig, ReplSoakReport};
