//! End-to-end runs of the fuzz harness: the quick campaign (the CI
//! smoke tier) must pass cleanly and deterministically, and scripts
//! must replay.

use natix_testkit::{
    replay, run_campaign, run_corruption_campaign, run_corruption_trace, run_trace,
    workload_by_name, CampaignConfig, CrashMode, Failure, Op,
};

#[test]
fn quick_campaign_is_clean() {
    let cfg = CampaignConfig::quick();
    let report = run_campaign(&cfg, |_| {});
    for f in &report.failures {
        eprintln!("{f}");
    }
    assert!(report.ok(), "{}", report.summary());
    assert_eq!(report.runs, 6, "one run per Table 1 workload");
    assert!(
        report.crash_points > 50,
        "sweep exercised too few crash points: {}",
        report.summary()
    );
}

#[test]
fn campaign_outcomes_are_reproducible() {
    let cfg = CampaignConfig::quick();
    let a = run_campaign(&cfg, |_| {});
    let b = run_campaign(&cfg, |_| {});
    assert_eq!(a.summary(), b.summary());
}

#[test]
fn handwritten_script_replays_clean() {
    let outcome = replay(
        "\
# exercise appends, a split-prone text run, an insert and a delete
workload SigmodRecord.xml scale 0.001 gen-seed 1 k 24
append-element 3 0
append-text 3 1
append-text 3 2
insert-before 5 3
delete 7
",
    )
    .unwrap();
    assert_eq!(outcome.ops_applied + outcome.ops_skipped, 5);
    assert!(outcome.crash_points > 10);
}

#[test]
fn replay_rejects_malformed_scripts() {
    assert!(replay("").is_err());
    assert!(replay("workload nope.xml scale 0.001 gen-seed 1 k 24\n").is_err());
    assert!(replay("workload SigmodRecord.xml scale x gen-seed 1 k 24").is_err());
    assert!(
        replay("workload SigmodRecord.xml scale 0.001 gen-seed 1 k 24\nfrobnicate 1\n").is_err()
    );
}

#[test]
fn uncapped_sweep_covers_every_write_of_a_splitting_run() {
    // One workload, uncapped: every write event of every step gets a
    // power cut. Small record limit forces record splits mid-trace.
    let w = workload_by_name("partsupp.xml", 0.001, 1).unwrap();
    let trace = [
        Op::AppendText { target: 2, tag: 0 },
        Op::AppendText { target: 2, tag: 1 },
        Op::AppendText { target: 2, tag: 2 },
        Op::Delete { target: 2 },
    ];
    let outcome = run_trace(
        &w.doc,
        16,
        &trace,
        CrashMode::Sweep {
            max_points_per_op: 0,
        },
    )
    .unwrap_or_else(|f| panic!("step {}: {}", f.step, f.message));
    assert_eq!(outcome.ops_applied, 4);
    // Each commit writes catalog + journal + headers: a full sweep of
    // four ops has a real write window.
    assert!(outcome.crash_points > 40, "{outcome:?}");
}

#[test]
fn failure_rendering_is_replayable_and_pasteable() {
    let f = Failure {
        workload: "SigmodRecord.xml".to_string(),
        scale: 0.001,
        gen_seed: 1,
        k: 24,
        fuzz_seed: 9,
        step: 1,
        crash: Some((3, true)),
        message: "example".to_string(),
        trace: vec![
            Op::AppendElement { target: 3, tag: 0 },
            Op::Delete { target: 5 },
        ],
    };
    let script = f.script();
    assert_eq!(
        script,
        "workload SigmodRecord.xml scale 0.001 gen-seed 1 k 24\nappend-element 3 0\ndelete 5\n"
    );
    // The rendered regression test embeds the script verbatim.
    let test = f.regression_test();
    assert!(test.contains("fn regression_SigmodRecord_k24_seed9()"));
    assert!(test.contains(&script));
    assert!(test.contains("natix_testkit::replay"));
    // And the embedded script actually replays (the trace is benign).
    replay(&script).unwrap();
}

#[test]
fn quick_corruption_campaign_is_clean() {
    let cfg = CampaignConfig::quick();
    let report = run_corruption_campaign(&cfg, |_| {});
    for f in &report.failures {
        eprintln!("{f}");
    }
    assert!(report.ok(), "{}", report.summary());
    assert_eq!(report.runs, 6, "one run per Table 1 workload");
    // 12 injection slots per committed state; every run commits several
    // states, so the sweep must pile up real coverage.
    assert!(
        report.crash_points > 100,
        "too few corruption injections: {}",
        report.summary()
    );
}

#[test]
fn corruption_sweep_repairs_multi_record_stores() {
    // A split-prone trace on a multi-record store: the sweep must see at
    // least one detected-and-repaired injection (rotting a non-root
    // record page salvages the rest).
    let w = workload_by_name("partsupp.xml", 0.001, 1).unwrap();
    let trace = [
        Op::AppendText { target: 2, tag: 0 },
        Op::AppendText { target: 2, tag: 1 },
        Op::AppendText { target: 2, tag: 2 },
    ];
    let outcome = run_corruption_trace(&w.doc, 16, &trace)
        .unwrap_or_else(|f| panic!("step {}: {}", f.step, f.message));
    assert_eq!(outcome.ops_applied, 3);
    assert!(outcome.injections > 20, "{outcome:?}");
    assert!(outcome.repairs > 0, "{outcome:?}");
}

#[test]
fn shrink_returns_passing_traces_unchanged() {
    let w = workload_by_name("orders.xml", 0.001, 1).unwrap();
    let trace = natix_testkit::generate_trace(5, 4);
    let shrunk = natix_testkit::shrink_trace(&w.doc, 32, &trace, CrashMode::None);
    assert_eq!(shrunk, trace, "a clean trace must not be shrunk");
}
