//! Quick-tier power-cut campaign over the sharded streaming bulkload.

use natix_testkit::{run_bulkload_campaign, BulkCampaignConfig};

#[test]
fn bulkload_power_cut_quick_campaign_is_clean() {
    let cfg = BulkCampaignConfig::quick();
    let report = run_bulkload_campaign(&cfg, |_| {});
    assert!(report.horizon > 0, "horizon was never measured");
    assert!(report.cuts > 0, "no cuts swept");
    let failures: Vec<String> = report.failures.iter().map(|f| f.to_string()).collect();
    assert!(
        report.ok(),
        "bulkload crash contract violated:\n{}",
        failures.join("\n")
    );
}
