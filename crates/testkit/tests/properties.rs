//! Property wrapper around the fuzz harness: random (workload, seed, K)
//! cells must run a crash-swept trace cleanly. On failure the proptest
//! shim prints the case inputs — workload index, fuzz seed, and K — so
//! a CI failure is reproducible locally with the same numbers.

use std::collections::HashSet;

use natix_core::Ekm;
use natix_store::{
    bulkload_with, corrupt_page_of_class, fsck, OpenMode, PageClass, SharedMemPager, StoreConfig,
    XmlStore,
};
use natix_testkit::{generate_trace, min_record_limit, run_trace, workloads, CrashMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_traces_with_crash_sweeps_stay_oracle_equivalent(
        workload in 0usize..6,
        fuzz_seed in 0u64..1_000_000,
        k in 8u64..200,
    ) {
        let w = &workloads(0.001, 1)[workload];
        let trace = generate_trace(fuzz_seed, 5);
        let r = run_trace(
            &w.doc,
            k,
            &trace,
            CrashMode::Sweep { max_points_per_op: 6 },
        );
        prop_assert!(
            r.is_ok(),
            "workload={} fuzz_seed={} k={}: {:?}",
            w.name,
            fuzz_seed,
            k,
            r.err()
        );
    }

    /// Degraded reads are *exact*: after rotting a random record page
    /// and repairing, the damage report must equal the repair quarantine,
    /// and the degraded document must equal a partial read of the
    /// undamaged twin excluding exactly the reported records.
    #[test]
    fn damage_reports_are_exact_after_record_rot(
        workload in 0usize..6,
        rot_seed in 0u64..1_000_000,
        k in 8u64..200,
    ) {
        let w = &workloads(0.001, 1)[workload];
        let k = k.max(min_record_limit(&w.doc));
        let config = StoreConfig {
            record_limit_slots: k,
            ..Default::default()
        };
        let disk = SharedMemPager::new();
        let store = bulkload_with(&w.doc, &Ekm, k, Box::new(disk.clone()), config).unwrap();
        drop(store);
        let snap = disk.snapshot();

        let mut branch = SharedMemPager::from_snapshot(&snap);
        let hit = corrupt_page_of_class(&mut branch, rot_seed, PageClass::Record, 3).unwrap();
        prop_assert!(hit.is_some(), "no record page in {}", w.name);
        let report = fsck(&mut branch, true);
        if !report.repaired {
            // Only a lost root may stop the salvage.
            prop_assert!(
                report.findings.iter().any(|f| f.code == "root-unrecoverable"),
                "repair refused without losing the root: {}",
                report
            );
            return Ok(());
        }
        prop_assert!(fsck(&mut branch.clone(), false).clean());

        let quarantine: HashSet<u32> = report.quarantined.iter().copied().collect();
        let mut degraded =
            XmlStore::open_with(Box::new(branch.clone()), config, OpenMode::Degraded).unwrap();
        let (doc, damage) = degraded.to_document_degraded().unwrap();
        let missing = damage.records();
        prop_assert_eq!(&missing, &quarantine, "damage report vs repair quarantine");
        // Intervals are topmost-only, so no record repeats.
        prop_assert_eq!(damage.missing.len(), missing.len());

        let mut clean =
            XmlStore::open(Box::new(SharedMemPager::from_snapshot(&snap)), config).unwrap();
        let want = clean.to_document_partial(&missing).unwrap().to_xml();
        prop_assert_eq!(doc.to_xml(), want);
    }
}
