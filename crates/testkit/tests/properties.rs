//! Property wrapper around the fuzz harness: random (workload, seed, K)
//! cells must run a crash-swept trace cleanly. On failure the proptest
//! shim prints the case inputs — workload index, fuzz seed, and K — so
//! a CI failure is reproducible locally with the same numbers.

use natix_testkit::{generate_trace, run_trace, workloads, CrashMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_traces_with_crash_sweeps_stay_oracle_equivalent(
        workload in 0usize..6,
        fuzz_seed in 0u64..1_000_000,
        k in 8u64..200,
    ) {
        let w = &workloads(0.001, 1)[workload];
        let trace = generate_trace(fuzz_seed, 5);
        let r = run_trace(
            &w.doc,
            k,
            &trace,
            CrashMode::Sweep { max_points_per_op: 6 },
        );
        prop_assert!(
            r.is_ok(),
            "workload={} fuzz_seed={} k={}: {:?}",
            w.name,
            fuzz_seed,
            k,
            r.err()
        );
    }
}
