//! `mondial-3.0.xml`-like generator: geographic data with deeply nested
//! country → province → city structure — the paper's example of "nested
//! structures with larger subtrees".

use natix_xml::{Document, DocumentBuilder, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::text::TextGen;
use crate::GenConfig;

fn city(b: &mut DocumentBuilder, rng: &mut StdRng, parent: NodeId, country_code: &str) {
    let city = b.element(parent, "city");
    b.attribute(city, "country", country_code);
    let name = b.element(city, "name");
    b.text(name, &TextGen::title(rng, 1));
    let pop = b.element(city, "population");
    b.attribute(pop, "year", "95");
    b.text(pop, &format!("{}", rng.gen_range(1_000..5_000_000u32)));
}

/// Generate the Mondial-like document.
///
/// Calibration: 231 countries × ~18 provinces × ~6 cities plus
/// organizations with member lists ≈ 152k nodes at ≈2.1 slots/node
/// (paper: 152,218 nodes, weight/K = 1236).
pub fn mondial(cfg: GenConfig) -> Document {
    let mut rng = cfg.rng();
    let countries = cfg.count(231, 1);
    let organizations = cfg.count(200, 1);
    let mut b = DocumentBuilder::new("mondial");
    let root = NodeId::ROOT;

    for ci in 0..countries {
        let code = format!("C{ci:03}");
        let country = b.element(root, "country");
        b.attribute(country, "car_code", &code);
        b.attribute(
            country,
            "area",
            &format!("{}", rng.gen_range(1_000..2_000_000u32)),
        );
        b.attribute(country, "capital", &format!("cty-{ci}-0"));
        let name = b.element(country, "name");
        b.text(name, &TextGen::title(&mut rng, 1));
        let pop = b.element(country, "population");
        b.text(pop, &format!("{}", rng.gen_range(100_000..100_000_000u64)));

        for _ in 0..rng.gen_range(1..=3) {
            let eg = b.element(country, "ethnicgroups");
            b.attribute(eg, "percentage", &format!("{}", rng.gen_range(1..100u32)));
            b.text(eg, &TextGen::title(&mut rng, 1));
        }
        for _ in 0..rng.gen_range(1..=2) {
            let rel = b.element(country, "religions");
            b.attribute(rel, "percentage", &format!("{}", rng.gen_range(1..100u32)));
            b.text(rel, &TextGen::title(&mut rng, 1));
        }

        let provinces = rng.gen_range(8..=18);
        for _ in 0..provinces {
            let prov = b.element(country, "province");
            b.attribute(prov, "country", &code);
            let pname = b.element(prov, "name");
            b.text(pname, &TextGen::title(&mut rng, 1));
            let parea = b.element(prov, "area");
            b.text(parea, &format!("{}", rng.gen_range(100..200_000u32)));
            let ppop = b.element(prov, "population");
            b.text(ppop, &format!("{}", rng.gen_range(10_000..10_000_000u32)));
            for _ in 0..rng.gen_range(3..=8) {
                city(&mut b, &mut rng, prov, &code);
            }
        }
    }

    for oi in 0..organizations {
        let org = b.element(root, "organization");
        b.attribute(org, "id", &format!("org-{oi}"));
        let name = b.element(org, "name");
        b.text(name, &TextGen::title(&mut rng, 3));
        let abbrev = b.element(org, "abbrev");
        b.text(abbrev, &TextGen::word(&mut rng)[..3].to_uppercase());
        let established = b.element(org, "established");
        b.text(established, &TextGen::date(&mut rng));
        for _ in 0..rng.gen_range(3..=20) {
            let members = b.element(org, "members");
            b.attribute(members, "type", "member");
            b.attribute(
                members,
                "country",
                &format!("C{:03}", rng.gen_range(0..countries)),
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let d = mondial(GenConfig {
            scale: 0.02,
            seed: 5,
        });
        let t = d.tree();
        let country = t.children(d.root())[0];
        assert_eq!(d.name(country), "country");
        // Country has provinces with nested cities.
        let prov = t
            .children(country)
            .iter()
            .copied()
            .find(|&c| d.name(c) == "province")
            .expect("province");
        assert!(t.children(prov).iter().any(|&c| d.name(c) == "city"));
    }

    #[test]
    fn calibration_at_full_scale() {
        let d = mondial(GenConfig {
            scale: 1.0,
            seed: 5,
        });
        let nodes = d.len() as f64;
        assert!(
            (nodes - 152_218.0).abs() / 152_218.0 < 0.15,
            "node count {nodes} too far from paper's 152218"
        );
        // Slightly lighter than the paper's 2.08 (our place names are
        // shorter than Mondial's); shape, not absolute weight, is what the
        // partitioners react to. Documented in EXPERIMENTS.md.
        let avg = d.total_weight() as f64 / nodes;
        assert!((1.4..2.6).contains(&avg), "avg slots/node {avg}");
    }
}
