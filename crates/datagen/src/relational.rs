//! Relational-style documents: XML dumps of the TPC-H `PARTSUPP` and
//! `ORDERS` relations, as found in the UW XML repository.
//!
//! These are the paper's "very simple structure" documents: one huge
//! sibling list of small fixed-shape rows under a single root. They are the
//! worst case for parent-child-only partitioning (KM) and showcase the
//! over-90% partition reduction of sibling partitioning (Table 1: 1091 vs
//! 15876 partitions for partsupp).

use natix_xml::{Document, DocumentBuilder};
use rand::Rng;

use crate::text::TextGen;
use crate::GenConfig;

/// `partsupp.xml`: 8727 rows × 11 nodes + root ≈ 96,005 nodes at scale 1.0.
///
/// Row shape: `<T><PS_PARTKEY/><PS_SUPPKEY/><PS_AVAILQTY/><PS_SUPPLYCOST/>
/// <PS_COMMENT/></T>` with text children; comments average ~100 bytes,
/// matching the paper's weight/node ratio of ≈2.7 slots.
pub fn partsupp(cfg: GenConfig) -> Document {
    let mut rng = cfg.rng();
    let rows = cfg.count(8727, 2);
    let mut b = DocumentBuilder::new("table");
    let root = natix_xml::NodeId::ROOT;
    for row in 0..rows {
        let t = b.element(root, "T");
        let f = b.element(t, "PS_PARTKEY");
        b.text(f, &format!("{}", row / 4 + 1));
        let f = b.element(t, "PS_SUPPKEY");
        b.text(f, &format!("{}", rng.gen_range(1..1000u32)));
        let f = b.element(t, "PS_AVAILQTY");
        b.text(f, &format!("{}", rng.gen_range(1..10000u32)));
        let f = b.element(t, "PS_SUPPLYCOST");
        b.text(f, &TextGen::decimal(&mut rng, 1000));
        let f = b.element(t, "PS_COMMENT");
        b.text(f, &TextGen::sentence_between(&mut rng, 12, 20));
    }
    b.build()
}

/// `orders.xml`: 15,789 rows × 19 nodes + root ≈ 300,005 nodes at scale 1.0.
///
/// Nine short columns plus a comment; lighter rows than partsupp
/// (≈1.9 slots/node in the paper).
pub fn orders(cfg: GenConfig) -> Document {
    let mut rng = cfg.rng();
    let rows = cfg.count(15_789, 2);
    let mut b = DocumentBuilder::new("table");
    let root = natix_xml::NodeId::ROOT;
    const STATUS: &[&str] = &["O", "F", "P"];
    const PRIORITY: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
    for row in 0..rows {
        let t = b.element(root, "T");
        let field = |b: &mut DocumentBuilder, name: &str, value: &str| {
            let f = b.element(t, name);
            b.text(f, value);
        };
        field(&mut b, "O_ORDERKEY", &format!("{}", row * 4 + 1));
        field(
            &mut b,
            "O_CUSTKEY",
            &format!("{}", rng.gen_range(1..15000u32)),
        );
        field(
            &mut b,
            "O_ORDERSTATUS",
            STATUS[rng.gen_range(0..STATUS.len())],
        );
        field(&mut b, "O_TOTALPRICE", &TextGen::decimal(&mut rng, 400_000));
        field(&mut b, "O_ORDERDATE", &TextGen::date(&mut rng));
        field(
            &mut b,
            "O_ORDERPRIORITY",
            PRIORITY[rng.gen_range(0..PRIORITY.len())],
        );
        field(
            &mut b,
            "O_CLERK",
            &format!("Clerk#{:09}", rng.gen_range(1..1000u32)),
        );
        field(&mut b, "O_SHIPPRIORITY", "0");
        field(
            &mut b,
            "O_COMMENT",
            &TextGen::sentence_between(&mut rng, 4, 8),
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partsupp_row_shape() {
        let d = partsupp(GenConfig {
            scale: 0.001,
            seed: 1,
        });
        let t = d.tree();
        assert_eq!(d.name(d.root()), "table");
        let rows = t.children(d.root());
        assert!(!rows.is_empty());
        for &r in rows {
            assert_eq!(d.name(r), "T");
            assert_eq!(t.child_count(r), 5);
            // Each field has one text child.
            for &f in t.children(r) {
                assert_eq!(t.child_count(f), 1);
            }
        }
        // 11 nodes per row + root.
        assert_eq!(d.len(), rows.len() * 11 + 1);
    }

    #[test]
    fn orders_row_shape() {
        let d = orders(GenConfig {
            scale: 0.001,
            seed: 1,
        });
        let t = d.tree();
        let rows = t.children(d.root());
        for &r in rows {
            assert_eq!(t.child_count(r), 9);
        }
        assert_eq!(d.len(), rows.len() * 19 + 1);
    }

    #[test]
    fn node_counts_scale_to_paper_sizes() {
        // At scale 1.0 the counts match Table 1 within 1%.
        let rows: usize = 8727;
        assert!((rows * 11 + 1).abs_diff(96_005) < 1000);
        let rows: usize = 15_789;
        assert!((rows * 19 + 1).abs_diff(300_005) < 3100);
    }

    #[test]
    fn weight_profile_close_to_paper() {
        // partsupp: paper weight/K = 1026 at 96005 nodes -> ~2.74 slots per
        // node. Accept 2.2..3.3.
        let d = partsupp(GenConfig {
            scale: 0.01,
            seed: 2,
        });
        let avg = d.total_weight() as f64 / d.len() as f64;
        assert!((2.2..3.3).contains(&avg), "partsupp avg {avg}");
        // orders: 2247*256/300005 ~ 1.92. Accept 1.6..2.3.
        let d = orders(GenConfig {
            scale: 0.01,
            seed: 2,
        });
        let avg = d.total_weight() as f64 / d.len() as f64;
        assert!((1.6..2.3).contains(&avg), "orders avg {avg}");
    }
}
