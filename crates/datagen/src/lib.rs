//! Seeded synthetic XML document generators.
//!
//! The paper evaluates on five documents from the University of Washington
//! XML repository plus an XMark document (scale 0.1). Those artifacts are
//! not redistributable here, so this crate generates *structurally
//! equivalent* documents (see DESIGN.md §5): same element vocabulary, the
//! same two structural regimes — flat "relational" tables (`partsupp`,
//! `orders`) versus nested hierarchies (`mondial`, `xmark`) — and node
//! counts / weight profiles calibrated to Table 1 of the paper.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible bit-for-bit.
//!
//! | Generator | Paper document | Nodes (paper, scale 1.0) |
//! |-----------|----------------|--------------------------|
//! | [`sigmod`] | SigmodRecord.xml | 42,054 |
//! | [`mondial`] | mondial-3.0.xml | 152,218 |
//! | [`partsupp`] | partsupp.xml | 96,005 |
//! | [`uwm`] | uwm.xml | 189,542 |
//! | [`orders`] | orders.xml | 300,005 |
//! | [`xmark`] | xmark0p1.xml (sf 0.1) | 549,213 |

mod mondial;
mod relational;
mod sigmod;
mod text;
mod uwm;
mod xmark;

pub use mondial::mondial;
pub use relational::{orders, partsupp};
pub use sigmod::sigmod;
pub use text::TextGen;
pub use uwm::uwm;
pub use xmark::xmark;

use natix_xml::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration shared by all generators.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Size multiplier; 1.0 reproduces the paper's document sizes (for
    /// [`xmark`], 1.0 means XMark scale factor 0.1 as used in the paper).
    pub scale: f64,
    /// RNG seed; equal seeds give identical documents.
    pub seed: u64,
}

impl GenConfig {
    /// Config at the given scale with the default seed.
    pub fn at_scale(scale: f64) -> GenConfig {
        GenConfig {
            scale,
            seed: 0x4e_4154_4958_u64, // "NATIX"
        }
    }

    pub(crate) fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Scale a paper-size count, keeping at least `min`.
    pub(crate) fn count(&self, paper: usize, min: usize) -> usize {
        ((paper as f64 * self.scale).round() as usize).max(min)
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig::at_scale(1.0)
    }
}

/// The six evaluation documents of Table 1, in the paper's row order.
///
/// `scale` multiplies every document's size (1.0 = paper scale); the
/// returned names match the table's `Document` column.
pub fn evaluation_suite(scale: f64, seed: u64) -> Vec<(&'static str, Document)> {
    let cfg = |offset: u64| GenConfig {
        scale,
        seed: seed.wrapping_add(offset),
    };
    vec![
        ("SigmodRecord.xml", sigmod(cfg(1))),
        ("mondial-3.0.xml", mondial(cfg(2))),
        ("partsupp.xml", partsupp(cfg(3))),
        ("uwm.xml", uwm(cfg(4))),
        ("orders.xml", orders(cfg(5))),
        ("xmark0p1.xml", xmark(cfg(6))),
    ]
}

/// Lazy corpus of `n` small documents cycling the six Table 1
/// generators at their minimum size (scale 0 pins every generator to
/// its structural minimum — tens of nodes per document).
///
/// Documents are produced one at a time, so a bulkload over the
/// iterator holds O(1) documents in memory no matter how large `n` is.
/// Deterministic: document `i` depends only on `seed + i`.
pub fn small_docs(n: usize, seed: u64) -> SmallDocs {
    SmallDocs { next: 0, n, seed }
}

/// Iterator returned by [`small_docs`].
pub struct SmallDocs {
    next: usize,
    n: usize,
    seed: u64,
}

impl Iterator for SmallDocs {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        if self.next >= self.n {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let cfg = GenConfig {
            scale: 0.0,
            seed: self.seed.wrapping_add(i as u64),
        };
        let doc = match i % 6 {
            0 => sigmod(cfg),
            1 => mondial(cfg),
            2 => partsupp(cfg),
            3 => uwm(cfg),
            4 => orders(cfg),
            _ => xmark(cfg),
        };
        Some(doc.to_xml())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.next;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let a = partsupp(GenConfig {
            scale: 0.01,
            seed: 7,
        });
        let b = partsupp(GenConfig {
            scale: 0.01,
            seed: 7,
        });
        assert_eq!(a.to_xml(), b.to_xml());
        let c = partsupp(GenConfig {
            scale: 0.01,
            seed: 8,
        });
        assert_ne!(a.to_xml(), c.to_xml());
    }

    #[test]
    fn small_docs_are_small_lazy_and_deterministic() {
        let a: Vec<String> = small_docs(12, 9).collect();
        let b: Vec<String> = small_docs(12, 9).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for (i, xml) in a.iter().enumerate() {
            assert!(xml.len() < 64 * 1024, "doc {i} too large: {}", xml.len());
            assert!(xml.starts_with('<'), "doc {i} not XML");
        }
        // Different seeds give different corpora.
        let c: Vec<String> = small_docs(12, 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn suite_has_six_documents() {
        let suite = evaluation_suite(0.002, 42);
        assert_eq!(suite.len(), 6);
        for (name, doc) in &suite {
            assert!(doc.len() > 10, "{name} too small: {}", doc.len());
        }
    }
}
