//! `SigmodRecord.xml`-like generator: SIGMOD Record issues with articles
//! and author lists — shallow, regular, moderate text.

use natix_xml::{Document, DocumentBuilder};
use rand::Rng;

use crate::text::TextGen;
use crate::GenConfig;

/// Generate the SigmodRecord-like document.
///
/// Calibration: 119 issues × ~22 articles × (title/initPage/endPage +
/// 1..4 authors) ≈ 42k nodes at ≈2.1 slots/node (paper: 42,054 nodes,
/// weight/K = 352 at K = 256).
pub fn sigmod(cfg: GenConfig) -> Document {
    let mut rng = cfg.rng();
    let issues = cfg.count(119, 1);
    let mut b = DocumentBuilder::new("SigmodRecord");
    let root = natix_xml::NodeId::ROOT;
    for i in 0..issues {
        let issue = b.element(root, "issue");
        let vol = b.element(issue, "volume");
        b.text(vol, &format!("{}", 11 + i / 4));
        let num = b.element(issue, "number");
        b.text(num, &format!("{}", i % 4 + 1));
        let articles = b.element(issue, "articles");
        let n_articles = rng.gen_range(18..=27);
        let mut page = 1u32;
        for _ in 0..n_articles {
            let article = b.element(articles, "article");
            let title = b.element(article, "title");
            let title_words = rng.gen_range(4..=9);
            b.text(title, &TextGen::title(&mut rng, title_words));
            let init = b.element(article, "initPage");
            b.text(init, &format!("{page}"));
            let len = rng.gen_range(1..=14u32);
            let end = b.element(article, "endPage");
            b.text(end, &format!("{}", page + len));
            page += len + 1;
            let authors = b.element(article, "authors");
            let n_authors = rng.gen_range(1..=4);
            for pos in 0..n_authors {
                let author = b.element(authors, "author");
                b.attribute(author, "position", &format!("{pos:02}"));
                b.text(author, &TextGen::person_name(&mut rng));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let d = sigmod(GenConfig {
            scale: 0.02,
            seed: 3,
        });
        let t = d.tree();
        assert_eq!(d.name(d.root()), "SigmodRecord");
        let issue = t.children(d.root())[0];
        assert_eq!(d.name(issue), "issue");
        let kids: Vec<&str> = t.children(issue).iter().map(|&c| d.name(c)).collect();
        assert_eq!(&kids[..3], &["volume", "number", "articles"]);
    }

    #[test]
    fn calibration_at_full_scale() {
        let d = sigmod(GenConfig {
            scale: 1.0,
            seed: 3,
        });
        let nodes = d.len() as f64;
        assert!(
            (nodes - 42_054.0).abs() / 42_054.0 < 0.15,
            "node count {nodes} too far from paper's 42054"
        );
        let avg = d.total_weight() as f64 / nodes;
        assert!((1.7..2.6).contains(&avg), "avg slots/node {avg}");
    }
}
