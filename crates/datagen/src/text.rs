//! Deterministic prose generation for text nodes.
//!
//! XMark famously generates element content from a Shakespeare word list;
//! we use a fixed vocabulary of similar word-length distribution so content
//! byte counts (and therefore slot weights) behave the same way.

use rand::rngs::StdRng;
use rand::Rng;

/// Fixed vocabulary (97 words, mean length ≈ 5.4 bytes — close to the
/// Shakespeare list XMark samples from).
const WORDS: &[&str] = &[
    "noble",
    "haste",
    "sword",
    "merry",
    "crown",
    "honest",
    "labour",
    "tongue",
    "spirit",
    "wisdom",
    "gentle",
    "summer",
    "winter",
    "sorrow",
    "fortune",
    "virtue",
    "breath",
    "heaven",
    "shadow",
    "silver",
    "golden",
    "throne",
    "castle",
    "garden",
    "forest",
    "battle",
    "soldier",
    "captain",
    "servant",
    "master",
    "daughter",
    "brother",
    "mother",
    "father",
    "kingdom",
    "country",
    "letter",
    "answer",
    "reason",
    "season",
    "morning",
    "evening",
    "promise",
    "journey",
    "measure",
    "treasure",
    "pleasure",
    "danger",
    "stranger",
    "courage",
    "passion",
    "fashion",
    "moment",
    "present",
    "ancient",
    "silent",
    "secret",
    "sacred",
    "bitter",
    "better",
    "matter",
    "mercy",
    "glory",
    "story",
    "stone",
    "flame",
    "flower",
    "river",
    "ocean",
    "island",
    "mountain",
    "valley",
    "thunder",
    "lightning",
    "whisper",
    "murmur",
    "slumber",
    "wonder",
    "wander",
    "banner",
    "manner",
    "honour",
    "armour",
    "favour",
    "vapour",
    "velvet",
    "violet",
    "scarlet",
    "crimson",
    "purple",
    "marble",
    "temple",
    "candle",
    "cradle",
    "needle",
    "people",
    "simple",
];

/// Seeded text generator.
#[derive(Debug)]
pub struct TextGen;

impl TextGen {
    /// One random word.
    pub fn word(rng: &mut StdRng) -> &'static str {
        WORDS[rng.gen_range(0..WORDS.len())]
    }

    /// A sentence of `n` words separated by single spaces.
    pub fn sentence(rng: &mut StdRng, n: usize) -> String {
        let mut s = String::with_capacity(n * 7);
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(Self::word(rng));
        }
        s
    }

    /// A sentence whose word count is uniform in `lo..=hi`.
    pub fn sentence_between(rng: &mut StdRng, lo: usize, hi: usize) -> String {
        let n = rng.gen_range(lo..=hi);
        Self::sentence(rng, n)
    }

    /// A capitalized multi-word title.
    pub fn title(rng: &mut StdRng, words: usize) -> String {
        let mut s = String::with_capacity(words * 8);
        for i in 0..words {
            if i > 0 {
                s.push(' ');
            }
            let w = Self::word(rng);
            let mut cs = w.chars();
            if let Some(first) = cs.next() {
                s.extend(first.to_uppercase());
                s.push_str(cs.as_str());
            }
        }
        s
    }

    /// A personal name, `First Last`.
    pub fn person_name(rng: &mut StdRng) -> String {
        Self::title(rng, 2)
    }

    /// A decimal string like `1234.56`.
    pub fn decimal(rng: &mut StdRng, max_int: u32) -> String {
        format!(
            "{}.{:02}",
            rng.gen_range(0..max_int),
            rng.gen_range(0..100u32)
        )
    }

    /// A date string `YYYY/MM/DD` in the XMark style.
    pub fn date(rng: &mut StdRng) -> String {
        format!(
            "{:04}/{:02}/{:02}",
            rng.gen_range(1998..2002u32),
            rng.gen_range(1..13u32),
            rng.gen_range(1..29u32)
        )
    }

    /// A time string `HH:MM:SS`.
    pub fn time(rng: &mut StdRng) -> String {
        format!(
            "{:02}:{:02}:{:02}",
            rng.gen_range(0..24u32),
            rng.gen_range(0..60u32),
            rng.gen_range(0..60u32)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sentences_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(TextGen::sentence(&mut a, 10), TextGen::sentence(&mut b, 10));
    }

    #[test]
    fn sentence_word_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = TextGen::sentence(&mut rng, 7);
        assert_eq!(s.split(' ').count(), 7);
        let s = TextGen::sentence_between(&mut rng, 3, 5);
        let n = s.split(' ').count();
        assert!((3..=5).contains(&n));
    }

    #[test]
    fn title_is_capitalized() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = TextGen::title(&mut rng, 3);
        for w in t.split(' ') {
            assert!(w.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn formatted_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = TextGen::date(&mut rng);
        assert_eq!(d.len(), 10);
        let t = TextGen::time(&mut rng);
        assert_eq!(t.len(), 8);
        let m = TextGen::decimal(&mut rng, 1000);
        assert!(m.contains('.'));
    }
}
