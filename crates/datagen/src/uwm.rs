//! `uwm.xml`-like generator: university course listings with sections —
//! many small, shallow records with short text fields.

use natix_xml::{Document, DocumentBuilder, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::text::TextGen;
use crate::GenConfig;

fn leaf(b: &mut DocumentBuilder, rng: &mut StdRng, parent: NodeId, name: &str, words: usize) {
    let e = b.element(parent, name);
    b.text(e, &TextGen::sentence_between(rng, 1, words.max(1)));
}

/// Generate the UWM-like course catalog.
///
/// Calibration: 3,270 course listings × ~58 nodes (three sections with
/// instructor/days/hours/room fields) ≈ 190k nodes at ≈1.9 slots/node
/// (paper: 189,542 nodes, weight/K = 1446).
pub fn uwm(cfg: GenConfig) -> Document {
    let mut rng = cfg.rng();
    let listings = cfg.count(3_270, 1);
    let mut b = DocumentBuilder::new("root");
    let root = NodeId::ROOT;
    const DAYS: &[&str] = &["MWF", "TTh", "MW", "F", "Daily"];
    const QUARTERS: &[&str] = &["autumn", "winter", "spring", "summer"];

    for li in 0..listings {
        let listing = b.element(root, "course_listing");
        let course = b.element(listing, "course");
        b.text(
            course,
            &format!(
                "{} {}",
                TextGen::word(&mut rng).to_uppercase(),
                100 + li % 500
            ),
        );
        let title = b.element(listing, "title");
        let title_words = rng.gen_range(2..=5);
        b.text(title, &TextGen::title(&mut rng, title_words));
        let credits = b.element(listing, "credits");
        b.text(credits, &format!("{}", rng.gen_range(1..=5)));
        if rng.gen_bool(0.4) {
            leaf(&mut b, &mut rng, listing, "restrictions", 6);
        }
        let sections = b.element(listing, "sections");
        for si in 0..rng.gen_range(2..=4) {
            let section = b.element(sections, "section");
            b.attribute(section, "id", &format!("{}", (b'A' + si) as char));
            let sln = b.element(section, "sln");
            b.text(sln, &format!("{}", rng.gen_range(10_000..99_999u32)));
            let quarter = b.element(section, "quarter");
            b.text(quarter, QUARTERS[rng.gen_range(0..QUARTERS.len())]);
            let instructors = b.element(section, "instructors");
            for _ in 0..rng.gen_range(1..=2) {
                let inst = b.element(instructors, "instructor");
                b.text(inst, &TextGen::person_name(&mut rng));
            }
            let days = b.element(section, "days");
            b.text(days, DAYS[rng.gen_range(0..DAYS.len())]);
            let hours = b.element(section, "hours");
            b.text(
                hours,
                &format!(
                    "{}:30-{}:20",
                    rng.gen_range(8..15u32),
                    rng.gen_range(9..17u32)
                ),
            );
            let room = b.element(section, "room");
            b.text(
                room,
                &format!(
                    "{} {}",
                    TextGen::word(&mut rng).to_uppercase(),
                    rng.gen_range(100..400u32)
                ),
            );
            if rng.gen_bool(0.3) {
                leaf(&mut b, &mut rng, section, "section_note", 8);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let d = uwm(GenConfig {
            scale: 0.01,
            seed: 6,
        });
        let t = d.tree();
        let listing = t.children(d.root())[0];
        assert_eq!(d.name(listing), "course_listing");
        let sections = t
            .children(listing)
            .iter()
            .copied()
            .find(|&c| d.name(c) == "sections")
            .unwrap();
        let section = t.children(sections)[0];
        assert_eq!(d.name(section), "section");
        assert!(t.children(section).iter().any(|&c| d.name(c) == "sln"));
    }

    #[test]
    fn calibration_at_full_scale() {
        let d = uwm(GenConfig {
            scale: 1.0,
            seed: 6,
        });
        let nodes = d.len() as f64;
        assert!(
            (nodes - 189_542.0).abs() / 189_542.0 < 0.15,
            "node count {nodes} too far from paper's 189542"
        );
        let avg = d.total_weight() as f64 / nodes;
        assert!((1.6..2.4).contains(&avg), "avg slots/node {avg}");
    }
}
