//! XMark-like auction-site generator (Schmidt et al., VLDB 2002).
//!
//! Reproduces the element vocabulary and shape that the XPathMark queries
//! Q1-Q7 traverse: `site/regions/*/item`, `closed_auction/annotation/
//! description/parlist/listitem/text/keyword`, `mail`, `//keyword`, etc.
//! Scale 1.0 corresponds to the paper's XMark scale factor 0.1
//! (549,213 nodes, ≈3.5 slots/node).

use natix_xml::{Document, DocumentBuilder, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::text::TextGen;
use crate::GenConfig;

/// Region element names and their share of the items (XMark's built-in
/// distribution, scaled from sf = 1 counts).
const REGIONS: &[(&str, usize)] = &[
    ("africa", 55),
    ("asia", 200),
    ("australia", 220),
    ("europe", 600),
    ("namerica", 1000),
    ("samerica", 100),
];

const PERSONS: usize = 2550;
const OPEN_AUCTIONS: usize = 1200;
const CLOSED_AUCTIONS: usize = 975;
const CATEGORIES: usize = 100;

struct Gen {
    b: DocumentBuilder,
    rng: StdRng,
}

impl Gen {
    fn leaf(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        let e = self.b.element(parent, name);
        self.b.text(e, value);
        e
    }

    /// Mixed content: alternating free text and inline `keyword` / `bold` /
    /// `emph` elements, as XMark produces inside `text` elements.
    fn mixed(&mut self, parent: NodeId) {
        let runs = self.rng.gen_range(2..=4);
        for _ in 0..runs {
            let words = self.rng.gen_range(8..=16);
            let s = TextGen::sentence(&mut self.rng, words);
            self.b.text(parent, &s);
            let inline = match self.rng.gen_range(0..4u32) {
                0 => "keyword",
                1 => "bold",
                2 => "emph",
                _ => "keyword",
            };
            let e = self.b.element(parent, inline);
            let words = self.rng.gen_range(1..=3);
            let s = TextGen::sentence(&mut self.rng, words);
            self.b.text(e, &s);
        }
    }

    /// `<text>` element with mixed content.
    fn text_elem(&mut self, parent: NodeId) {
        let t = self.b.element(parent, "text");
        self.mixed(t);
    }

    /// `<parlist><listitem>(text | parlist)</listitem>…</parlist>`.
    fn parlist(&mut self, parent: NodeId, depth: usize) {
        let pl = self.b.element(parent, "parlist");
        let items = self.rng.gen_range(2..=5);
        for _ in 0..items {
            let li = self.b.element(pl, "listitem");
            if depth < 2 && self.rng.gen_bool(0.2) {
                self.parlist(li, depth + 1);
            } else {
                self.text_elem(li);
            }
        }
    }

    /// `<description>(text | parlist)</description>`.
    fn description(&mut self, parent: NodeId) {
        let d = self.b.element(parent, "description");
        if self.rng.gen_bool(0.5) {
            self.parlist(d, 0);
        } else {
            self.text_elem(d);
        }
    }

    fn mail(&mut self, parent: NodeId) {
        let m = self.b.element(parent, "mail");
        let from = TextGen::person_name(&mut self.rng);
        self.leaf(m, "from", &from);
        let to = TextGen::person_name(&mut self.rng);
        self.leaf(m, "to", &to);
        let date = TextGen::date(&mut self.rng);
        self.leaf(m, "date", &date);
        self.text_elem(m);
    }

    fn item(&mut self, parent: NodeId, id: usize) {
        let item = self.b.element(parent, "item");
        self.b.attribute(item, "id", &format!("item{id}"));
        let loc = TextGen::title(&mut self.rng, 1);
        self.leaf(item, "location", &loc);
        let qty = format!("{}", self.rng.gen_range(1..=5u32));
        self.leaf(item, "quantity", &qty);
        let name = TextGen::title(&mut self.rng, 2);
        self.leaf(item, "name", &name);
        let pay = TextGen::sentence_between(&mut self.rng, 2, 5);
        self.leaf(item, "payment", &pay);
        self.description(item);
        let ship = TextGen::sentence_between(&mut self.rng, 2, 6);
        self.leaf(item, "shipping", &ship);
        for _ in 0..self.rng.gen_range(1..=2) {
            let inc = self.b.element(item, "incategory");
            let cat = format!("category{}", self.rng.gen_range(0..CATEGORIES.max(1)));
            self.b.attribute(inc, "category", &cat);
        }
        let mailbox = self.b.element(item, "mailbox");
        for _ in 0..self.rng.gen_range(1..=5) {
            self.mail(mailbox);
        }
    }

    fn person(&mut self, parent: NodeId, id: usize) {
        let p = self.b.element(parent, "person");
        self.b.attribute(p, "id", &format!("person{id}"));
        let name = TextGen::person_name(&mut self.rng);
        self.leaf(p, "name", &name);
        let email = format!(
            "mailto:{}@{}.com",
            TextGen::word(&mut self.rng),
            TextGen::word(&mut self.rng)
        );
        self.leaf(p, "emailaddress", &email);
        if self.rng.gen_bool(0.5) {
            let phone = format!(
                "+{} ({}) {}",
                self.rng.gen_range(1..99u32),
                self.rng.gen_range(100..999u32),
                self.rng.gen_range(1_000_000..9_999_999u32)
            );
            self.leaf(p, "phone", &phone);
        }
        if self.rng.gen_bool(0.7) {
            let addr = self.b.element(p, "address");
            let street = format!(
                "{} {} St",
                self.rng.gen_range(1..99u32),
                TextGen::title(&mut self.rng, 1)
            );
            self.leaf(addr, "street", &street);
            let city = TextGen::title(&mut self.rng, 1);
            self.leaf(addr, "city", &city);
            let country = TextGen::title(&mut self.rng, 1);
            self.leaf(addr, "country", &country);
            let zip = format!("{}", self.rng.gen_range(10_000..99_999u32));
            self.leaf(addr, "zipcode", &zip);
        }
        if self.rng.gen_bool(0.3) {
            let hp = format!(
                "http://www.{}.com/~{}",
                TextGen::word(&mut self.rng),
                TextGen::word(&mut self.rng)
            );
            self.leaf(p, "homepage", &hp);
        }
        if self.rng.gen_bool(0.25) {
            let cc = format!(
                "{} {} {} {}",
                self.rng.gen_range(1000..9999u32),
                self.rng.gen_range(1000..9999u32),
                self.rng.gen_range(1000..9999u32),
                self.rng.gen_range(1000..9999u32)
            );
            self.leaf(p, "creditcard", &cc);
        }
        let profile = self.b.element(p, "profile");
        let income = TextGen::decimal(&mut self.rng, 100_000);
        self.b.attribute(profile, "income", &income);
        for _ in 0..self.rng.gen_range(1..=4) {
            let interest = self.b.element(profile, "interest");
            let cat = format!("category{}", self.rng.gen_range(0..CATEGORIES.max(1)));
            self.b.attribute(interest, "category", &cat);
        }
        if self.rng.gen_bool(0.3) {
            let edu = ["High School", "College", "Graduate School", "Other"]
                [self.rng.gen_range(0..4usize)];
            self.leaf(profile, "education", edu);
        }
        if self.rng.gen_bool(0.5) {
            let g = if self.rng.gen_bool(0.5) {
                "male"
            } else {
                "female"
            };
            self.leaf(profile, "gender", g);
        }
        let business = if self.rng.gen_bool(0.5) { "Yes" } else { "No" };
        self.leaf(profile, "business", business);
        if self.rng.gen_bool(0.3) {
            let age = format!("{}", self.rng.gen_range(18..80u32));
            self.leaf(profile, "age", &age);
        }
        let watches = self.b.element(p, "watches");
        for _ in 0..self.rng.gen_range(1..=6) {
            let w = self.b.element(watches, "watch");
            let auction = format!(
                "open_auction{}",
                self.rng.gen_range(0..OPEN_AUCTIONS.max(1))
            );
            self.b.attribute(w, "open_auction", &auction);
        }
    }

    fn bidder(&mut self, parent: NodeId) {
        let bd = self.b.element(parent, "bidder");
        let date = TextGen::date(&mut self.rng);
        self.leaf(bd, "date", &date);
        let time = TextGen::time(&mut self.rng);
        self.leaf(bd, "time", &time);
        let pr = self.b.element(bd, "personref");
        let person = format!("person{}", self.rng.gen_range(0..PERSONS.max(1)));
        self.b.attribute(pr, "person", &person);
        let inc = TextGen::decimal(&mut self.rng, 50);
        self.leaf(bd, "increase", &inc);
    }

    fn annotation(&mut self, parent: NodeId) {
        let a = self.b.element(parent, "annotation");
        let author = self.b.element(a, "author");
        let person = format!("person{}", self.rng.gen_range(0..PERSONS.max(1)));
        self.b.attribute(author, "person", &person);
        self.description(a);
        let h = format!("{}", self.rng.gen_range(1..=10u32));
        self.leaf(a, "happiness", &h);
    }

    fn open_auction(&mut self, parent: NodeId, id: usize, items: usize) {
        let a = self.b.element(parent, "open_auction");
        self.b.attribute(a, "id", &format!("open_auction{id}"));
        let initial = TextGen::decimal(&mut self.rng, 300);
        self.leaf(a, "initial", &initial);
        if self.rng.gen_bool(0.4) {
            let res = TextGen::decimal(&mut self.rng, 500);
            self.leaf(a, "reserve", &res);
        }
        for _ in 0..self.rng.gen_range(3..=12) {
            self.bidder(a);
        }
        let cur = TextGen::decimal(&mut self.rng, 1000);
        self.leaf(a, "current", &cur);
        if self.rng.gen_bool(0.5) {
            self.leaf(a, "privacy", "Yes");
        }
        let itemref = self.b.element(a, "itemref");
        let item = format!("item{}", self.rng.gen_range(0..items.max(1)));
        self.b.attribute(itemref, "item", &item);
        let seller = self.b.element(a, "seller");
        let person = format!("person{}", self.rng.gen_range(0..PERSONS.max(1)));
        self.b.attribute(seller, "person", &person);
        self.annotation(a);
        let qty = format!("{}", self.rng.gen_range(1..=5u32));
        self.leaf(a, "quantity", &qty);
        self.leaf(a, "type", "Regular");
        let interval = self.b.element(a, "interval");
        let start = TextGen::date(&mut self.rng);
        self.leaf(interval, "start", &start);
        let end = TextGen::date(&mut self.rng);
        self.leaf(interval, "end", &end);
    }

    fn closed_auction(&mut self, parent: NodeId, items: usize) {
        let a = self.b.element(parent, "closed_auction");
        let seller = self.b.element(a, "seller");
        let person = format!("person{}", self.rng.gen_range(0..PERSONS.max(1)));
        self.b.attribute(seller, "person", &person);
        let buyer = self.b.element(a, "buyer");
        let person = format!("person{}", self.rng.gen_range(0..PERSONS.max(1)));
        self.b.attribute(buyer, "person", &person);
        let itemref = self.b.element(a, "itemref");
        let item = format!("item{}", self.rng.gen_range(0..items.max(1)));
        self.b.attribute(itemref, "item", &item);
        let price = TextGen::decimal(&mut self.rng, 1000);
        self.leaf(a, "price", &price);
        let date = TextGen::date(&mut self.rng);
        self.leaf(a, "date", &date);
        let qty = format!("{}", self.rng.gen_range(1..=5u32));
        self.leaf(a, "quantity", &qty);
        self.leaf(a, "type", "Regular");
        self.annotation(a);
    }

    fn category(&mut self, parent: NodeId, id: usize) {
        let c = self.b.element(parent, "category");
        self.b.attribute(c, "id", &format!("category{id}"));
        let name = TextGen::title(&mut self.rng, 1);
        self.leaf(c, "name", &name);
        self.description(c);
    }
}

/// Generate the XMark-like document. `cfg.scale = 1.0` ≙ XMark sf 0.1.
pub fn xmark(cfg: GenConfig) -> Document {
    let mut g = Gen {
        b: DocumentBuilder::new("site"),
        rng: cfg.rng(),
    };
    let root = NodeId::ROOT;

    let regions = g.b.element(root, "regions");
    let mut item_id = 0usize;
    for &(region, paper_count) in REGIONS {
        let r = g.b.element(regions, region);
        for _ in 0..cfg.count(paper_count, 1) {
            g.item(r, item_id);
            item_id += 1;
        }
    }
    let total_items = item_id;

    let categories = g.b.element(root, "categories");
    for i in 0..cfg.count(CATEGORIES, 1) {
        g.category(categories, i);
    }

    let catgraph = g.b.element(root, "catgraph");
    for _ in 0..cfg.count(CATEGORIES, 1) {
        let edge = g.b.element(catgraph, "edge");
        let from = format!("category{}", g.rng.gen_range(0..CATEGORIES.max(1)));
        g.b.attribute(edge, "from", &from);
        let to = format!("category{}", g.rng.gen_range(0..CATEGORIES.max(1)));
        g.b.attribute(edge, "to", &to);
    }

    let people = g.b.element(root, "people");
    for i in 0..cfg.count(PERSONS, 1) {
        g.person(people, i);
    }

    let open = g.b.element(root, "open_auctions");
    for i in 0..cfg.count(OPEN_AUCTIONS, 1) {
        g.open_auction(open, i, total_items);
    }

    let closed = g.b.element(root, "closed_auctions");
    for _ in 0..cfg.count(CLOSED_AUCTIONS, 1) {
        g.closed_auction(closed, total_items);
    }

    g.b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(d: &Document, parent: NodeId, name: &str) -> Option<NodeId> {
        d.tree()
            .children(parent)
            .iter()
            .copied()
            .find(|&c| d.name(c) == name)
    }

    #[test]
    fn has_xpathmark_paths() {
        let d = xmark(GenConfig {
            scale: 0.02,
            seed: 9,
        });
        // /site/regions/*/item
        let regions = find(&d, d.root(), "regions").unwrap();
        let region = d.tree().children(regions)[0];
        assert!(find(&d, region, "item").is_some());
        // /site/closed_auctions/closed_auction/annotation
        let closed = find(&d, d.root(), "closed_auctions").unwrap();
        let ca = d.tree().children(closed)[0];
        assert!(find(&d, ca, "annotation").is_some());
        // keywords exist somewhere
        let keywords = d
            .tree()
            .node_ids()
            .filter(|&v| d.name(v) == "keyword")
            .count();
        assert!(keywords > 0, "no keyword elements generated");
        // mail elements exist
        let mails = d.tree().node_ids().filter(|&v| d.name(v) == "mail").count();
        assert!(mails > 0);
    }

    #[test]
    fn calibration_at_full_scale() {
        let d = xmark(GenConfig {
            scale: 1.0,
            seed: 9,
        });
        let nodes = d.len() as f64;
        assert!(
            (nodes - 549_213.0).abs() / 549_213.0 < 0.15,
            "node count {nodes} too far from paper's 549213"
        );
        let avg = d.total_weight() as f64 / nodes;
        assert!((2.4..4.2).contains(&avg), "avg slots/node {avg}");
    }
}
