fn main() {
    for (name, doc) in natix_datagen::evaluation_suite(1.0, 42) {
        let n = doc.len();
        let w = doc.total_weight();
        println!(
            "{name:20} nodes={n:8} weight={w:9} w/K={:6} avg={:.2}",
            w / 256,
            w as f64 / n as f64
        );
    }
}
