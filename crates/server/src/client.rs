//! Blocking client for the `natix serve` wire protocol.
//!
//! [`Client`] is one connection: each call writes a request frame and
//! blocks for the response frame. Sockets carry generous read/write
//! timeouts so a wedged server surfaces as an error, never a hang.
//! [`Client::request_retry`] additionally honors typed
//! [`ResponseBody::RetryAfter`] responses by sleeping the advertised
//! hint and retrying, which is the cooperative half of the server's
//! backpressure contract.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::server::read_response;
use crate::wire::{write_frame, ProtoError, Request, Response, ResponseBody};

/// Socket-level timeout for client reads and writes.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One blocking connection to a `natix serve` daemon.
pub struct Client {
    stream: TcpStream,
}

/// Client-side failure: transport/protocol trouble, or giving up on a
/// server that keeps shedding.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, framing or decoding failed.
    Proto(ProtoError),
    /// The server kept answering retry-after past the retry budget.
    StillOverloaded {
        /// Attempts made (initial + retries).
        attempts: u32,
        /// What the server reported as saturated.
        what: String,
    },
    /// The session's pin lease expired server-side and the pin was
    /// released; the well-behaved recovery is [`Client::begin`] again.
    SessionExpired,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::StillOverloaded { attempts, what } => {
                write!(
                    f,
                    "server still overloaded ({what}) after {attempts} attempts"
                )
            }
            ClientError::SessionExpired => {
                write!(f, "session lease expired (pin released); begin again")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

impl Client {
    /// Connect to a serving daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT))?;
        Ok(Client { stream })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        Ok(read_response(&mut self.stream)?)
    }

    /// Send a request, honoring retry-after responses: sleep the hinted
    /// backoff and retry, up to `max_retries` extra attempts.
    pub fn request_retry(
        &mut self,
        req: &Request,
        max_retries: u32,
    ) -> Result<(Response, u32), ClientError> {
        let mut retries = 0u32;
        loop {
            let resp = self.request(req)?;
            match &resp.body {
                ResponseBody::RetryAfter { millis, what, .. } => {
                    if retries >= max_retries {
                        return Err(ClientError::StillOverloaded {
                            attempts: retries + 1,
                            what: what.clone(),
                        });
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_millis((*millis).max(1) as u64));
                }
                _ => return Ok((resp, retries)),
            }
        }
    }

    /// Health check; returns the committed epoch.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let resp = self.request(&Request::Ping)?;
        match resp.body {
            ResponseBody::Pong => Ok(resp.epoch),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Pin this connection's session to the committed epoch.
    pub fn begin(&mut self) -> Result<u64, ClientError> {
        let resp = self.request(&Request::Begin)?;
        match resp.body {
            ResponseBody::SessionPinned => Ok(resp.epoch),
            other => Err(unexpected("session pin", &other)),
        }
    }

    /// Release this connection's session pin.
    pub fn end(&mut self) -> Result<(), ClientError> {
        let resp = self.request(&Request::End)?;
        match resp.body {
            ResponseBody::SessionReleased => Ok(()),
            other => Err(unexpected("session release", &other)),
        }
    }

    /// Evaluate an XPath query; returns `(epoch, count, rendered hits)`.
    pub fn query(&mut self, xpath: &str) -> Result<(u64, u32, Vec<String>), ClientError> {
        let resp = self.request(&Request::Query {
            xpath: xpath.to_string(),
            count_only: false,
        })?;
        match resp.body {
            ResponseBody::QueryResult { count, lines } => Ok((resp.epoch, count, lines)),
            other => Err(unexpected("query result", &other)),
        }
    }

    /// Serialize the committed document; returns `(epoch, xml)`.
    pub fn dump(&mut self) -> Result<(u64, String), ClientError> {
        let resp = self.request(&Request::Dump { degraded_ok: false })?;
        match resp.body {
            ResponseBody::DumpResult { xml, .. } => Ok((resp.epoch, xml)),
            other => Err(unexpected("dump result", &other)),
        }
    }

    /// Ask the server to run fsck; returns `(clean, report)`.
    pub fn fsck(&mut self) -> Result<(bool, String), ClientError> {
        let resp = self.request(&Request::Fsck)?;
        match resp.body {
            ResponseBody::FsckResult { clean, report } => Ok((clean, report)),
            other => Err(unexpected("fsck result", &other)),
        }
    }

    /// Fetch the server's stats text.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Request::Stats)?;
        match resp.body {
            ResponseBody::StatsText(text) => Ok(text),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Promote a replica to primary; returns the fencing epoch.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        let resp = self.request(&Request::ReplPromote)?;
        match resp.body {
            ResponseBody::ReplPromoted => Ok(resp.epoch),
            other => Err(unexpected("promotion ack", &other)),
        }
    }

    /// Request a graceful server shutdown.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let resp = self.request(&Request::Shutdown)?;
        match resp.body {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown ack", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    // An expired lease can answer any verb; surface it typed so callers
    // can re-`begin` instead of treating it as protocol trouble.
    if matches!(got, ResponseBody::SessionExpired) {
        return ClientError::SessionExpired;
    }
    ClientError::Proto(ProtoError::Io(std::io::Error::other(format!(
        "expected {wanted}, got {got:?}"
    ))))
}
