//! The `natix serve` daemon: a TCP front door over [`SharedStore`].
//!
//! Three kinds of threads cooperate:
//!
//! * **acceptor** — accepts connections on a [`std::net::TcpListener`]
//!   and queues them for the worker pool;
//! * **workers** — each handles one connection at a time: read a frame,
//!   decode it, forward the request to the store service over a *bounded*
//!   queue, and write the reply. A full queue is the first backpressure
//!   gate: the worker answers [`ResponseBody::RetryAfter`] without ever
//!   touching the store;
//! * **store service** — the single thread that owns the [`SharedStore`]
//!   (the concurrent facade is deliberately single-threaded; see
//!   `natix_store::concurrent`). It maps connections onto snapshot pins:
//!   [`Request::Begin`] pins the committed epoch for the connection, and
//!   every read on a pinned connection is served from that epoch until
//!   [`Request::End`] or disconnect. Unpinned reads open a per-request
//!   snapshot. Admission control ([`natix_store::AdmissionConfig`]) is
//!   the second backpressure gate; its `Overloaded`/`Timeout` errors map
//!   to typed retry-after responses.
//!
//! Graceful shutdown ([`Request::Shutdown`] or [`ServerHandle::shutdown`])
//! stops the acceptor, lets every worker finish the frame it is reading
//! (with a drain grace period), answers everything already queued, and
//! only then releases the remaining session pins and runs deferred store
//! maintenance — in-flight requests drain before pins are torn down.

use std::collections::{HashMap, HashSet};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use natix_store::{
    fsck, AdmissionConfig, ApplyOutcome, CapturePager, ErrorCategory, FilePager, Follower,
    ReplicaSource, ServedRead, SharedStore, Snapshot, StoreConfig, StoreError, XmlStore,
    READ_ONLY_RETRY_HINT_MS,
};
use natix_xml::NodeKind;
use natix_xpath::eval;

use crate::wire::{
    read_frame, write_frame, ErrKind, ProtoError, Request, Response, ResponseBody, ShedKind,
    UpdateOp, MAX_FRAME,
};

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the store file to serve (opened with crash recovery).
    pub store: PathBuf,
    /// Listen address; use port 0 for an ephemeral port (the bound
    /// address is in [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection workers (concurrent connections served).
    pub workers: usize,
    /// Bound of the store-service request queue — the first backpressure
    /// gate. Requests arriving at a full queue are shed with a typed
    /// retry-after response.
    pub queue_depth: usize,
    /// Snapshot pins allowed in flight at once (session pins plus
    /// per-request snapshots) — the second backpressure gate.
    pub max_pins: u32,
    /// Per-snapshot backend page-read budget (0 = unlimited); exhaustion
    /// sheds the read with a timeout retry-after.
    pub read_page_budget: u64,
    /// Buffer-pool page budget override for the served store.
    pub pool_pages: Option<usize>,
    /// Session-pin lease TTL in milliseconds. A pinned session that goes
    /// this long without sending any request has its pin released by the
    /// store service (unblocking reclamation and freeing the admission
    /// slot); the session's next request is answered with
    /// [`ResponseBody::SessionExpired`] so well-behaved clients
    /// re-`begin`. 0 disables lease expiry.
    pub lease_ttl_ms: u64,
    /// Run as a replica of this `HOST:PORT` primary: serve read-only
    /// queries from replicated state, refuse writes with a typed
    /// read-only shed, and keep pulling batches until promoted.
    pub replica_of: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store: PathBuf::new(),
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_pins: 64,
            read_page_budget: 0,
            pool_pages: None,
            lease_ttl_ms: 30_000,
            replica_of: None,
        }
    }
}

/// Failure to start the server.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the listen address.
    Bind(std::io::Error),
    /// Could not open the store.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind: {e}"),
            ServeError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Monotonic counters kept by the server, snapshot into [`ServeSummary`].
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    queue_shed: AtomicU64,
    proto_errors: AtomicU64,
    worker_panics: AtomicU64,
    lease_expirations: AtomicU64,
    write_timeout_kills: AtomicU64,
}

/// Point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded into requests.
    pub requests: u64,
    /// OK responses sent.
    pub ok: u64,
    /// Typed error responses sent.
    pub errors: u64,
    /// Retry-after responses sent (queue and admission sheds).
    pub shed: u64,
    /// Sheds at the queue gate specifically (subset of `shed`).
    pub queue_shed: u64,
    /// Malformed frames answered with a protocol error.
    pub proto_errors: u64,
    /// Connection handlers that panicked (must stay 0; the pool
    /// survives them).
    pub worker_panics: u64,
    /// Session pins released by the lease reaper because the session
    /// went idle past its TTL.
    pub lease_expirations: u64,
    /// Connections closed because a response write hit the write
    /// deadline (stalled reader).
    pub write_timeout_kills: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conn, {} req ({} ok, {} err, {} shed of which {} queue, {} proto), {} panics, {} leases expired, {} write kills",
            self.connections,
            self.requests,
            self.ok,
            self.errors,
            self.shed,
            self.queue_shed,
            self.proto_errors,
            self.worker_panics,
            self.lease_expirations,
            self.write_timeout_kills
        )
    }
}

/// One request in flight from a worker to the store service.
enum ServiceMsg {
    Request {
        conn: u64,
        req: Request,
        reply: Sender<Response>,
    },
    Disconnect {
        conn: u64,
    },
}

/// Handle over a running server. Dropping it does *not* stop the server;
/// call [`ServerHandle::shutdown`] (or send [`Request::Shutdown`] over
/// the wire) and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to shut down gracefully (idempotent).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Snapshot of the counters so far.
    pub fn summary(&self) -> ServeSummary {
        let c = &self.counters;
        ServeSummary {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            ok: c.ok.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            queue_shed: c.queue_shed.load(Ordering::Relaxed),
            proto_errors: c.proto_errors.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            lease_expirations: c.lease_expirations.load(Ordering::Relaxed),
            write_timeout_kills: c.write_timeout_kills.load(Ordering::Relaxed),
        }
    }

    /// Wait for the server to finish (after a shutdown was requested) and
    /// return the final counters.
    pub fn join(mut self) -> ServeSummary {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.summary()
    }
}

/// Start the daemon: bind, open the store (running crash recovery), and
/// spawn the acceptor, worker pool and store service. Returns once the
/// store is open and the listener is accepting.
pub fn serve(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&config.addr).map_err(ServeError::Bind)?;
    let addr = listener.local_addr().map_err(ServeError::Bind)?;
    listener.set_nonblocking(true).map_err(ServeError::Bind)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let promoted = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let (store_tx, store_rx) = mpsc::sync_channel::<ServiceMsg>(config.queue_depth.max(1));
    let (ready_tx, ready_rx) = mpsc::channel::<Result<(), StoreError>>();

    let mut threads = Vec::new();

    // Store service: owns the SharedStore (single-threaded facade) and
    // the session → snapshot-pin table.
    {
        let config = config.clone();
        let counters = Arc::clone(&counters);
        let promoted = Arc::clone(&promoted);
        threads.push(
            std::thread::Builder::new()
                .name("natix-store-svc".into())
                .spawn(move || store_service(config, store_rx, ready_tx, counters, promoted))
                .expect("spawn store service"),
        );
    }
    match ready_rx.recv() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            // The store thread already exited; reap it.
            for t in threads {
                let _ = t.join();
            }
            return Err(ServeError::Store(e));
        }
        Err(_) => {
            return Err(ServeError::Store(StoreError::Io {
                source: std::io::Error::other("store service died during startup"),
                page: None,
                op: "open",
            }))
        }
    }

    let (conn_tx, conn_rx) = mpsc::sync_channel::<(TcpStream, u64)>(config.workers.max(1) * 2);
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    for i in 0..config.workers.max(1) {
        let conn_rx = Arc::clone(&conn_rx);
        let store_tx = store_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let counters = Arc::clone(&counters);
        threads.push(
            std::thread::Builder::new()
                .name(format!("natix-worker-{i}"))
                .spawn(move || worker_loop(conn_rx, store_tx, shutdown, counters))
                .expect("spawn worker"),
        );
    }
    // A replica keeps a fetch loop pulling batches from the primary and
    // feeding them through the same service queue the workers use, so
    // applies serialize with reads in arrival order.
    if let Some(source) = config.replica_of.clone() {
        let store_tx = store_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let promoted = Arc::clone(&promoted);
        threads.push(
            std::thread::Builder::new()
                .name("natix-repl-client".into())
                .spawn(move || repl_client_loop(source, store_tx, shutdown, promoted))
                .expect("spawn repl client"),
        );
    }
    // The workers (and a replica's fetch loop) hold the only long-lived
    // senders: when the last one exits after a shutdown, the store
    // service drains and stops.
    drop(store_tx);

    {
        let shutdown = Arc::clone(&shutdown);
        let counters = Arc::clone(&counters);
        threads.push(
            std::thread::Builder::new()
                .name("natix-acceptor".into())
                .spawn(move || acceptor_loop(listener, conn_tx, shutdown, counters))
                .expect("spawn acceptor"),
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        counters,
        threads,
    })
}

fn acceptor_loop(
    listener: TcpListener,
    conn_tx: SyncSender<(TcpStream, u64)>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut next_conn = 1u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                if stream.set_nonblocking(false).is_err()
                    || conn_tx.send((stream, next_conn)).is_err()
                {
                    break;
                }
                next_conn += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn worker_loop(
    conn_rx: Arc<Mutex<Receiver<(TcpStream, u64)>>>,
    store_tx: SyncSender<ServiceMsg>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    loop {
        // Hold the queue lock only while waiting, so workers take turns.
        let next = {
            let rx = conn_rx.lock().expect("conn queue poisoned");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok((stream, conn)) => {
                // A panicking handler must not shrink the pool: count it,
                // drop the connection, keep serving.
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_conn(stream, conn, &store_tx, &shutdown, &counters)
                }));
                if r.is_err() {
                    counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
                let _ = store_tx.send(ServiceMsg::Disconnect { conn });
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// What one attempt to read a frame from a connection produced.
enum FrameOutcome {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// The peer closed at a frame boundary, or the connection is idle
    /// while the server shuts down.
    Close,
    /// An undelimitable length prefix; answer and close.
    BadLength(u32),
    /// Transport failure (including mid-frame disconnects); just close.
    Broken,
}

/// Read one frame, tolerating read timeouts so the worker can observe the
/// shutdown flag: an *idle* connection closes immediately on shutdown,
/// while a frame already in progress gets a drain grace period.
fn read_frame_shutdown_aware(stream: &mut TcpStream, shutdown: &AtomicBool) -> FrameOutcome {
    let mut len = [0u8; 4];
    match read_full(stream, &mut len, shutdown, true) {
        ReadFull::Done => {}
        ReadFull::CleanClose | ReadFull::IdleShutdown => return FrameOutcome::Close,
        ReadFull::Broken => return FrameOutcome::Broken,
    }
    let n = u32::from_le_bytes(len);
    if n == 0 || n > MAX_FRAME {
        return FrameOutcome::BadLength(n);
    }
    let mut body = vec![0u8; n as usize];
    match read_full(stream, &mut body, shutdown, false) {
        ReadFull::Done => FrameOutcome::Frame(body),
        ReadFull::CleanClose | ReadFull::Broken | ReadFull::IdleShutdown => FrameOutcome::Broken,
    }
}

enum ReadFull {
    Done,
    CleanClose,
    IdleShutdown,
    Broken,
}

fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
) -> ReadFull {
    let mut got = 0usize;
    let mut drain_deadline: Option<Instant> = None;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && at_boundary {
                    ReadFull::CleanClose
                } else {
                    ReadFull::Broken
                };
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    if got == 0 && at_boundary {
                        return ReadFull::IdleShutdown;
                    }
                    // Mid-frame: let the peer finish within the grace
                    // window, then give up.
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                    if Instant::now() >= deadline {
                        return ReadFull::Broken;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadFull::Broken,
        }
    }
    ReadFull::Done
}

/// How long a worker keeps waiting for the rest of an in-progress frame
/// after shutdown is requested.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Poll interval of connection reads (frequency at which the shutdown
/// flag is observed on idle connections).
const READ_POLL: Duration = Duration::from_millis(50);

/// Deadline for writing a response frame. A peer that stops draining its
/// receive buffer would otherwise park the worker in `write_all` forever;
/// expiry is connection-fatal (the frame may be torn mid-write) and is
/// counted in [`ServeSummary::write_timeout_kills`].
const WRITE_DEADLINE: Duration = Duration::from_secs(5);

fn send_response(stream: &mut TcpStream, resp: &Response) -> Result<(), ProtoError> {
    let mut body = resp.encode();
    if body.len() > MAX_FRAME as usize {
        // A response that cannot be framed (absurdly large query result)
        // degrades to a typed error instead of a broken stream.
        body = Response {
            epoch: resp.epoch,
            body: ResponseBody::Error {
                kind: ErrKind::Internal,
                message: "response exceeds frame limit".to_string(),
            },
        }
        .encode();
    }
    write_frame(stream, &body)
}

/// Send a response, counting write-deadline expiries. Returns `false`
/// when the connection must close.
fn send_counted(stream: &mut TcpStream, resp: &Response, counters: &Counters) -> bool {
    match send_response(stream, resp) {
        Ok(()) => true,
        Err(ProtoError::Io(e))
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            counters.write_timeout_kills.fetch_add(1, Ordering::Relaxed);
            false
        }
        Err(_) => false,
    }
}

fn handle_conn(
    mut stream: TcpStream,
    conn: u64,
    store_tx: &SyncSender<ServiceMsg>,
    shutdown: &AtomicBool,
    counters: &Counters,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_DEADLINE));
    loop {
        let body = match read_frame_shutdown_aware(&mut stream, shutdown) {
            FrameOutcome::Frame(b) => b,
            FrameOutcome::Close | FrameOutcome::Broken => break,
            FrameOutcome::BadLength(n) => {
                counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_counted(
                    &mut stream,
                    &Response {
                        epoch: 0,
                        body: ResponseBody::Error {
                            kind: ErrKind::Proto,
                            message: format!("bad frame length {n} (max {MAX_FRAME})"),
                        },
                    },
                    counters,
                );
                break;
            }
        };
        let req = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                // The frame was delimited; answer typed and keep going.
                counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                let ok = send_counted(
                    &mut stream,
                    &Response {
                        epoch: 0,
                        body: ResponseBody::Error {
                            kind: ErrKind::Proto,
                            message: e.to_string(),
                        },
                    },
                    counters,
                );
                if ok {
                    continue;
                }
                break;
            }
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(req, Request::Shutdown) {
            counters.ok.fetch_add(1, Ordering::Relaxed);
            let _ = send_counted(
                &mut stream,
                &Response {
                    epoch: 0,
                    body: ResponseBody::ShuttingDown,
                },
                counters,
            );
            shutdown.store(true, Ordering::SeqCst);
            break;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let resp = match store_tx.try_send(ServiceMsg::Request {
            conn,
            req,
            reply: reply_tx,
        }) {
            Ok(()) => match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response {
                    epoch: 0,
                    body: ResponseBody::Error {
                        kind: ErrKind::Internal,
                        message: "store service unavailable".to_string(),
                    },
                },
            },
            Err(TrySendError::Full(_)) => {
                counters.queue_shed.fetch_add(1, Ordering::Relaxed);
                Response {
                    epoch: 0,
                    body: ResponseBody::RetryAfter {
                        kind: ShedKind::Overloaded,
                        millis: 2,
                        what: "queue".to_string(),
                    },
                }
            }
            Err(TrySendError::Disconnected(_)) => Response {
                epoch: 0,
                body: ResponseBody::Error {
                    kind: ErrKind::Internal,
                    message: "store service stopped".to_string(),
                },
            },
        };
        match &resp.body {
            ResponseBody::Error { .. } => counters.errors.fetch_add(1, Ordering::Relaxed),
            ResponseBody::RetryAfter { .. } => counters.shed.fetch_add(1, Ordering::Relaxed),
            _ => counters.ok.fetch_add(1, Ordering::Relaxed),
        };
        if !send_counted(&mut stream, &resp, counters) {
            break;
        }
    }
}

// ------------------------------------------------------- store service

/// One pinned session: the snapshot pin plus its lease bookkeeping.
struct Session {
    snap: Snapshot,
    /// When the pin was acquired (for oldest-pin-age observability).
    pinned_at: Instant,
    /// Last time any request arrived on this session (lease renewal).
    renewed: Instant,
}

/// Release every session whose lease is overdue. Dropping the
/// [`Snapshot`] releases the pin (the store applies the deferred release
/// on its next write or maintenance pass, unblocking reclamation); the
/// connection is remembered in `expired` so its next request is answered
/// with [`ResponseBody::SessionExpired`] exactly once.
fn reap_leases(
    sessions: &mut HashMap<u64, Session>,
    expired: &mut HashSet<u64>,
    counters: &Counters,
    ttl: Duration,
) {
    let now = Instant::now();
    let overdue: Vec<u64> = sessions
        .iter()
        .filter(|(_, s)| now.duration_since(s.renewed) > ttl)
        .map(|(&conn, _)| conn)
        .collect();
    for conn in overdue {
        sessions.remove(&conn);
        expired.insert(conn);
        counters.lease_expirations.fetch_add(1, Ordering::Relaxed);
    }
}

/// What the store service is serving: a writable primary that also
/// feeds subscribed followers, or a read-only replica applying batches.
/// [`Request::ReplPromote`] swaps a `Replica` to a `Primary` in place.
///
/// Exactly one `Role` exists per daemon, so the size gap between the
/// variants costs nothing — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Role {
    Primary {
        shared: SharedStore,
        repl: ReplicaSource,
        /// The fencing epoch when this primary was promoted from a
        /// replica: [`Request::ReplApply`] is refused with
        /// [`ErrKind::Fenced`] instead of a plain bad-request.
        fence: Option<u64>,
    },
    Replica {
        follower: Follower,
        /// Lazily opened read-only store over the applied state,
        /// invalidated whenever a batch lands.
        reader: Option<XmlStore>,
        source: String,
        path: PathBuf,
        store_config: StoreConfig,
        admission: AdmissionConfig,
    },
}

/// Open the primary serving stack over `path`: raw file → write capture
/// (feeding replication cuts) → shared store, plus the replication
/// source draining the capture.
fn open_primary_role(
    path: &Path,
    store_config: StoreConfig,
    admission: AdmissionConfig,
    fence: Option<u64>,
) -> Result<Role, StoreError> {
    let backend = FilePager::open(path)?;
    let capture = CapturePager::new(Box::new(backend));
    let handle = capture.handle();
    let shared = SharedStore::open(
        Box::new(capture),
        Box::new(path.to_path_buf()),
        store_config,
        admission,
    )?;
    let repl = ReplicaSource::new(
        Box::new(path.to_path_buf()),
        handle,
        shared.committed_epoch(),
    );
    Ok(Role::Primary {
        shared,
        repl,
        fence,
    })
}

fn store_service(
    config: ServeConfig,
    rx: Receiver<ServiceMsg>,
    ready: Sender<Result<(), StoreError>>,
    counters: Arc<Counters>,
    promoted: Arc<AtomicBool>,
) {
    let mut store_config = StoreConfig::default();
    if let Some(n) = config.pool_pages {
        store_config.buffer_pages = n;
    }
    let admission = AdmissionConfig {
        max_inflight_reads: config.max_pins,
        read_page_budget: config.read_page_budget,
    };
    let mut role = match &config.replica_of {
        // A replica opens nothing up front: a missing file simply means
        // the first fetch bootstraps it from a snapshot.
        Some(source) => Role::Replica {
            follower: Follower::open(config.store.clone(), store_config),
            reader: None,
            source: source.clone(),
            path: config.store.clone(),
            store_config,
            admission,
        },
        None => match open_primary_role(&config.store, store_config, admission, None) {
            Ok(r) => r,
            Err(e) => {
                let _ = ready.send(Err(e));
                return;
            }
        },
    };
    let _ = ready.send(Ok(()));

    let lease_ttl = match config.lease_ttl_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    // Wake often enough that a lease is reaped well within one TTL even
    // on a completely idle server.
    let tick = lease_ttl
        .map(|t| (t / 4).max(Duration::from_millis(10)))
        .unwrap_or(Duration::from_millis(500));

    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut expired: HashSet<u64> = HashSet::new();
    // Drain until every worker has dropped its sender: all in-flight
    // requests are answered before the session pins below are released.
    loop {
        match rx.recv_timeout(tick) {
            Ok(ServiceMsg::Request { conn, req, reply }) => {
                let resp = handle_request(
                    &mut role,
                    &mut sessions,
                    &mut expired,
                    &counters,
                    &promoted,
                    conn,
                    req,
                );
                let _ = reply.send(resp);
            }
            Ok(ServiceMsg::Disconnect { conn }) => {
                sessions.remove(&conn);
                expired.remove(&conn);
                if let Role::Primary { repl, .. } = &mut role {
                    repl.disconnect(conn);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some(ttl) = lease_ttl {
            reap_leases(&mut sessions, &mut expired, &counters, ttl);
        }
    }
    // Shutdown drain: release the pins still held only now, then run the
    // deferred checkpoint/reclamation those releases unblock. A pin the
    // reaper already released is gone from the map — clearing it again
    // here cannot double-release.
    sessions.clear();
    if let Role::Primary { shared, .. } = &role {
        let _ = shared.maintain();
    }
}

/// Map a store failure onto the wire: sheds become retry-after, the rest
/// become typed errors.
fn store_error_response(epoch: u64, e: &StoreError) -> Response {
    let body = match e.category() {
        ErrorCategory::Shed => ResponseBody::RetryAfter {
            kind: match e {
                StoreError::Timeout { .. } => ShedKind::Timeout,
                StoreError::ReadOnly { .. } => ShedKind::ReadOnly,
                _ => ShedKind::Overloaded,
            },
            millis: e.retry_after_hint_ms().unwrap_or(5) as u32,
            what: match e {
                StoreError::Overloaded { what, .. } | StoreError::Timeout { what, .. } => {
                    (*what).to_string()
                }
                StoreError::ReadOnly { reason } => (*reason).to_string(),
                _ => String::new(),
            },
        },
        ErrorCategory::Corrupt => ResponseBody::Error {
            kind: ErrKind::Corrupt,
            message: e.to_string(),
        },
        ErrorCategory::Io => ResponseBody::Error {
            kind: ErrKind::Io,
            message: e.to_string(),
        },
        ErrorCategory::InvalidRequest => ResponseBody::Error {
            kind: ErrKind::InvalidUpdate,
            message: e.to_string(),
        },
    };
    Response { epoch, body }
}

fn bad_request(epoch: u64, message: String) -> Response {
    Response {
        epoch,
        body: ResponseBody::Error {
            kind: ErrKind::BadRequest,
            message,
        },
    }
}

/// Most lines a query response will carry; hits beyond the cap are
/// counted but not rendered (the count field is always exact).
const MAX_QUERY_LINES: usize = 10_000;

#[allow(clippy::too_many_arguments)]
fn handle_request(
    role: &mut Role,
    sessions: &mut HashMap<u64, Session>,
    expired: &mut HashSet<u64>,
    counters: &Counters,
    promoted: &AtomicBool,
    conn: u64,
    req: Request,
) -> Response {
    match role {
        Role::Primary {
            shared,
            repl,
            fence,
        } => {
            let committed = shared.committed_epoch();
            match req {
                Request::ReplSubscribe { last_epoch } => {
                    repl.subscribe(conn, last_epoch);
                    Response {
                        epoch: committed,
                        body: ResponseBody::ReplSubscribed,
                    }
                }
                Request::ReplFetch { after_epoch, seq } => {
                    match repl.fetch(committed, after_epoch, seq) {
                        Ok(part) => Response {
                            epoch: committed,
                            body: ResponseBody::ReplBatchPart {
                                payload: part.unwrap_or_default(),
                            },
                        },
                        Err(e) => store_error_response(committed, &e),
                    }
                }
                Request::ReplAck { epoch } => {
                    repl.ack(conn, epoch);
                    Response {
                        epoch: committed,
                        body: ResponseBody::ReplAckOk,
                    }
                }
                // A promoted follower answers a deposed primary's pushes
                // with its fencing epoch; a never-promoted primary was
                // simply addressed wrongly.
                Request::ReplApply { .. } => match *fence {
                    Some(at) => Response {
                        epoch: at,
                        body: ResponseBody::Error {
                            kind: ErrKind::Fenced,
                            message: format!("fenced at epoch {at}: this store was promoted"),
                        },
                    },
                    None => bad_request(committed, "not a replica".to_string()),
                },
                Request::ReplPromote => bad_request(committed, "already a primary".to_string()),
                other => {
                    handle_primary_request(shared, repl, sessions, expired, counters, conn, other)
                }
            }
        }
        Role::Replica { .. } => handle_replica_request(role, counters, promoted, conn, req),
    }
}

fn handle_replica_request(
    role: &mut Role,
    counters: &Counters,
    promoted: &AtomicBool,
    conn: u64,
    req: Request,
) -> Response {
    let Role::Replica {
        follower,
        reader,
        source,
        path,
        store_config,
        admission,
    } = role
    else {
        unreachable!("dispatched on role");
    };
    let _ = conn;
    let applied = follower.epoch();
    // Writes and pins are refused the same way disk-full degradation
    // refuses them: a typed read-only shed the client can back off on
    // (and retry against the new primary after a failover).
    let read_only_shed = || Response {
        epoch: applied,
        body: ResponseBody::RetryAfter {
            kind: ShedKind::ReadOnly,
            millis: READ_ONLY_RETRY_HINT_MS as u32,
            what: "replica".to_string(),
        },
    };
    match req {
        Request::Ping => Response {
            epoch: applied,
            body: ResponseBody::Pong,
        },
        Request::Update { .. } | Request::Begin => read_only_shed(),
        Request::End => Response {
            epoch: applied,
            body: ResponseBody::SessionReleased,
        },
        Request::Query { xpath, count_only } => {
            let path_q = match natix_xpath::parse(&xpath) {
                Ok(p) => p,
                Err(e) => return bad_request(applied, format!("xpath: {e}")),
            };
            let store = match replica_reader(reader, follower) {
                Ok(s) => s,
                Err(e) => return store_error_response(applied, &e),
            };
            let mut run = || -> Result<(u32, Vec<String>), StoreError> {
                let hits = {
                    let mut nav = natix_xpath::StoreNavigator::new(store);
                    eval(&mut nav, &path_q)?
                };
                let count = hits.len() as u32;
                let mut lines = Vec::new();
                if !count_only {
                    for r in hits.iter().take(MAX_QUERY_LINES) {
                        lines.push(render_hit(store, *r)?);
                    }
                }
                Ok((count, lines))
            };
            match run() {
                Ok((count, lines)) => Response {
                    epoch: applied,
                    body: ResponseBody::QueryResult { count, lines },
                },
                Err(e) => store_error_response(applied, &e),
            }
        }
        Request::Dump { .. } => {
            let store = match replica_reader(reader, follower) {
                Ok(s) => s,
                Err(e) => return store_error_response(applied, &e),
            };
            match store.to_document() {
                Ok(doc) => Response {
                    epoch: applied,
                    body: ResponseBody::DumpResult {
                        full: true,
                        xml: doc.to_xml(),
                        damage: String::new(),
                    },
                },
                Err(e) => store_error_response(applied, &e),
            }
        }
        Request::Stats => {
            let (batches, snapshots, tails) = follower.counters();
            let text = format!(
                "role         : replica (of {source})\n\
                 applied epoch: {applied}\n\
                 batches      : {batches} applied, {snapshots} snapshots\n\
                 tails        : {tails} discarded\n\
                 fenced       : {}\n\
                 leases       : {} expired\n",
                match follower.fence() {
                    Some(at) => format!("yes (epoch {at})"),
                    None => "no".to_string(),
                },
                counters.lease_expirations.load(Ordering::Relaxed),
            );
            Response {
                epoch: applied,
                body: ResponseBody::StatsText(text),
            }
        }
        Request::Fsck => {
            if applied == 0 {
                return bad_request(0, "replica has not bootstrapped yet".to_string());
            }
            match FilePager::open(&*path) {
                Ok(mut pager) => {
                    let report = fsck(&mut pager, false);
                    Response {
                        epoch: applied,
                        body: ResponseBody::FsckResult {
                            clean: report.clean(),
                            report: report.to_string(),
                        },
                    }
                }
                Err(e) => store_error_response(applied, &e),
            }
        }
        Request::ReplApply { payload } => match follower.apply_part(&payload) {
            Ok(ApplyOutcome::Applied { epoch }) => {
                *reader = None;
                Response {
                    epoch,
                    body: ResponseBody::ReplApplied { complete: true },
                }
            }
            Ok(ApplyOutcome::Staged { .. }) => Response {
                epoch: applied,
                body: ResponseBody::ReplApplied { complete: false },
            },
            Ok(ApplyOutcome::Rejected { reason }) => match follower.fence() {
                Some(at) => Response {
                    epoch: at,
                    body: ResponseBody::Error {
                        kind: ErrKind::Fenced,
                        message: reason,
                    },
                },
                None => Response {
                    epoch: applied,
                    body: ResponseBody::Error {
                        kind: ErrKind::InvalidUpdate,
                        message: reason,
                    },
                },
            },
            Err(e) => store_error_response(applied, &e),
        },
        Request::ReplPromote => {
            let fence_epoch = match follower.promote() {
                Ok(e) => e,
                Err(e) => return store_error_response(applied, &e),
            };
            let (path, store_config, admission) = (path.clone(), *store_config, *admission);
            match open_primary_role(&path, store_config, admission, Some(fence_epoch)) {
                Ok(new_role) => {
                    *role = new_role;
                    promoted.store(true, Ordering::SeqCst);
                    Response {
                        epoch: fence_epoch,
                        body: ResponseBody::ReplPromoted,
                    }
                }
                Err(e) => store_error_response(fence_epoch, &e),
            }
        }
        Request::ReplSubscribe { .. } | Request::ReplFetch { .. } | Request::ReplAck { .. } => {
            bad_request(applied, "not a primary".to_string())
        }
        // Shutdown never reaches the store service (handled at the
        // worker); answer defensively anyway.
        Request::Shutdown => Response {
            epoch: applied,
            body: ResponseBody::ShuttingDown,
        },
    }
}

/// The replica's lazily cached read-only store over the applied state.
fn replica_reader<'a>(
    reader: &'a mut Option<XmlStore>,
    follower: &Follower,
) -> Result<&'a mut XmlStore, StoreError> {
    if reader.is_none() {
        *reader = Some(follower.reader()?);
    }
    Ok(reader.as_mut().expect("just opened"))
}

#[allow(clippy::too_many_arguments)]
fn handle_primary_request(
    shared: &SharedStore,
    repl: &mut ReplicaSource,
    sessions: &mut HashMap<u64, Session>,
    expired: &mut HashSet<u64>,
    counters: &Counters,
    conn: u64,
    req: Request,
) -> Response {
    let committed = shared.committed_epoch();
    // A session the reaper expired is told so exactly once; `begin`
    // (re-pin) and `end` (already released) proceed normally so the
    // recovery path is never itself refused.
    if expired.remove(&conn) && !matches!(req, Request::Begin | Request::End) {
        return Response {
            epoch: committed,
            body: ResponseBody::SessionExpired,
        };
    }
    // Any request on a pinned session renews its lease.
    if let Some(s) = sessions.get_mut(&conn) {
        s.renewed = Instant::now();
    }
    match req {
        Request::Ping => Response {
            epoch: committed,
            body: ResponseBody::Pong,
        },
        Request::Begin => {
            // Re-pinning moves the session to the latest epoch; release
            // the old pin first so it cannot occupy an admission slot.
            sessions.remove(&conn);
            match shared.begin_read() {
                Ok(snap) => {
                    let epoch = snap.epoch();
                    let now = Instant::now();
                    sessions.insert(
                        conn,
                        Session {
                            snap,
                            pinned_at: now,
                            renewed: now,
                        },
                    );
                    Response {
                        epoch,
                        body: ResponseBody::SessionPinned,
                    }
                }
                Err(e) => store_error_response(committed, &e),
            }
        }
        Request::End => {
            sessions.remove(&conn);
            Response {
                epoch: committed,
                body: ResponseBody::SessionReleased,
            }
        }
        Request::Query { xpath, count_only } => {
            let path = match natix_xpath::parse(&xpath) {
                Ok(p) => p,
                Err(e) => return bad_request(committed, format!("xpath: {e}")),
            };
            let run = |snap: &mut Snapshot| -> Result<(u32, Vec<String>), StoreError> {
                let store = snap.store();
                let hits = {
                    let mut nav = natix_xpath::StoreNavigator::new(store);
                    eval(&mut nav, &path)?
                };
                let count = hits.len() as u32;
                let mut lines = Vec::new();
                if !count_only {
                    for r in hits.iter().take(MAX_QUERY_LINES) {
                        lines.push(render_hit(store, *r)?);
                    }
                }
                Ok((count, lines))
            };
            match sessions.get_mut(&conn) {
                Some(s) => {
                    let snap = &mut s.snap;
                    let epoch = snap.epoch();
                    match run(snap) {
                        Ok((count, lines)) => Response {
                            epoch,
                            body: ResponseBody::QueryResult { count, lines },
                        },
                        Err(e) => store_error_response(epoch, &e),
                    }
                }
                None => match shared.begin_read() {
                    Ok(mut snap) => {
                        let epoch = snap.epoch();
                        match run(&mut snap) {
                            Ok((count, lines)) => Response {
                                epoch,
                                body: ResponseBody::QueryResult { count, lines },
                            },
                            Err(e) => store_error_response(epoch, &e),
                        }
                    }
                    Err(e) => store_error_response(committed, &e),
                },
            }
        }
        Request::Dump { degraded_ok } => match sessions.get_mut(&conn) {
            Some(s) => {
                let snap = &mut s.snap;
                let epoch = snap.epoch();
                match snap.document() {
                    Ok(doc) => Response {
                        epoch,
                        body: ResponseBody::DumpResult {
                            full: true,
                            xml: doc.to_xml(),
                            damage: String::new(),
                        },
                    },
                    Err(e) => store_error_response(epoch, &e),
                }
            }
            None if degraded_ok => match shared.read_document() {
                Ok(served) => {
                    let (full, damage) = match &served {
                        ServedRead::Full(_) => (true, String::new()),
                        ServedRead::Degraded(_, damage) => (false, damage.to_string()),
                    };
                    Response {
                        epoch: committed,
                        body: ResponseBody::DumpResult {
                            full,
                            xml: served.document().to_xml(),
                            damage,
                        },
                    }
                }
                Err(e) => store_error_response(committed, &e),
            },
            None => match shared.begin_read() {
                Ok(mut snap) => {
                    let epoch = snap.epoch();
                    match snap.document() {
                        Ok(doc) => Response {
                            epoch,
                            body: ResponseBody::DumpResult {
                                full: true,
                                xml: doc.to_xml(),
                                damage: String::new(),
                            },
                        },
                        Err(e) => store_error_response(epoch, &e),
                    }
                }
                Err(e) => store_error_response(committed, &e),
            },
        },
        Request::Update { target, op } => {
            let path = match natix_xpath::parse(&target) {
                Ok(p) => p,
                Err(e) => return bad_request(committed, format!("xpath: {e}")),
            };
            let mut writer = match shared.begin_write() {
                Ok(w) => w,
                Err(e) => return store_error_response(committed, &e),
            };
            let r = writer.mutate(|store| {
                let hit = {
                    let mut nav = natix_xpath::StoreNavigator::new(store);
                    eval(&mut nav, &path)?.into_iter().next()
                };
                let Some(node) = hit else {
                    return Err(StoreError::InvalidUpdate("update target matched no node"));
                };
                match &op {
                    UpdateOp::AppendElement { name } => store
                        .append_child(node, NodeKind::Element, name, None)
                        .map(|_| ()),
                    UpdateOp::AppendText { text } => store
                        .append_child(node, NodeKind::Text, "#text", Some(text))
                        .map(|_| ()),
                    UpdateOp::InsertBefore { name } => store
                        .insert_before(node, NodeKind::Element, name, None)
                        .map(|_| ()),
                    UpdateOp::DeleteSubtree => store.delete_subtree(node),
                }
            });
            drop(writer);
            match r {
                Ok(()) => Response {
                    epoch: shared.committed_epoch(),
                    body: ResponseBody::UpdateDone,
                },
                Err(e) => store_error_response(shared.committed_epoch(), &e),
            }
        }
        Request::Stats => {
            let storage = shared.storage_stats();
            let c = shared.stats();
            let oldest_pin_ms = sessions
                .values()
                .map(|s| s.pinned_at.elapsed().as_millis() as u64)
                .max()
                .unwrap_or(0);
            let read_only = match shared.read_only_reason() {
                Some(reason) => format!("yes ({reason})"),
                None => "no".to_string(),
            };
            let replication = match repl.lag(committed) {
                Some((followers, lag)) => {
                    format!("{followers} followers, lag {lag} epochs")
                }
                None => "0 followers, lag 0 epochs".to_string(),
            };
            let text = format!(
                "epoch        : {}\n\
                 live records : {}\n\
                 pages        : {}\n\
                 occupied     : {} KB\n\
                 snapshots    : {} opened, {} active\n\
                 pins         : {} session-pinned, oldest {} ms\n\
                 leases       : {} expired\n\
                 write kills  : {} connections\n\
                 backlog      : {} superseded pages\n\
                 read-only    : {}\n\
                 sheds        : {} reads, {} timeouts, {} degraded fallbacks\n\
                 commits      : {} ({} group, {} batched ops)\n\
                 checkpoints  : {} deferred, {} applied\n\
                 reclaimed    : {} pages ({} rounds pin-blocked)\n\
                 replication  : {}\n",
                storage.epoch,
                storage.live_records,
                storage.pages,
                storage.occupied_bytes / 1024,
                c.snapshots_opened,
                c.snapshots_active,
                sessions.len(),
                oldest_pin_ms,
                counters.lease_expirations.load(Ordering::Relaxed),
                counters.write_timeout_kills.load(Ordering::Relaxed),
                shared.reclaim_backlog(),
                read_only,
                c.reads_shed,
                c.reads_timed_out,
                c.degraded_fallbacks,
                c.commits,
                c.group_commits,
                c.batched_ops,
                c.checkpoints_deferred,
                c.checkpoints_applied,
                c.pages_reclaimed,
                c.reclaim_blocked_by_pins,
                replication,
            );
            Response {
                epoch: storage.epoch,
                body: ResponseBody::StatsText(text),
            }
        }
        Request::Fsck => match shared.scrub() {
            Ok(report) => Response {
                epoch: committed,
                body: ResponseBody::FsckResult {
                    clean: report.clean(),
                    report: report.to_string(),
                },
            },
            Err(e) => store_error_response(committed, &e),
        },
        // Shutdown never reaches the store service (handled at the
        // worker); answer defensively anyway.
        Request::Shutdown => Response {
            epoch: committed,
            body: ResponseBody::ShuttingDown,
        },
        // Replication verbs are answered by the role dispatcher before
        // this function is reached.
        Request::ReplSubscribe { .. }
        | Request::ReplFetch { .. }
        | Request::ReplAck { .. }
        | Request::ReplApply { .. }
        | Request::ReplPromote => bad_request(committed, "replication verb".to_string()),
    }
}

// ---------------------------------------------------- replica fetch loop

/// Pseudo connection id of the replica's own fetch loop on the service
/// queue (worker connection ids count up from 1).
const REPL_CONN: u64 = u64::MAX;

/// How long a caught-up replica waits before polling the primary again.
const REPL_POLL: Duration = Duration::from_millis(50);

/// Back-off between reconnection attempts to the primary.
const REPL_RECONNECT: Duration = Duration::from_millis(250);

/// Socket timeout towards the primary. Short enough that a stalled or
/// partitioned link cannot park the fetch loop (which holds a service
/// queue sender) past the shutdown drain.
const REPL_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The replica's fetch loop: subscribe to the primary, pull batch parts,
/// feed them through the local service queue (serializing with reads),
/// and ack every applied epoch. Exits on shutdown or promotion; any
/// remote failure reconnects with back-off and re-subscribes.
fn repl_client_loop(
    source: String,
    store_tx: SyncSender<ServiceMsg>,
    shutdown: Arc<AtomicBool>,
    promoted: Arc<AtomicBool>,
) {
    let stop = || shutdown.load(Ordering::SeqCst) || promoted.load(Ordering::SeqCst);
    // Interruptible sleep; false means the loop must exit.
    let pause = |d: Duration| -> bool {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline {
            if stop() {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        !stop()
    };
    // One request through the local service queue (retrying queue-full).
    let local = |req: Request| -> Option<Response> {
        loop {
            let (tx, rx) = mpsc::channel();
            match store_tx.try_send(ServiceMsg::Request {
                conn: REPL_CONN,
                req: req.clone(),
                reply: tx,
            }) {
                Ok(()) => return rx.recv().ok(),
                Err(TrySendError::Full(_)) => {
                    if stop() {
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(TrySendError::Disconnected(_)) => return None,
            }
        }
    };
    let remote = |stream: &mut TcpStream, req: &Request| -> Result<Response, ProtoError> {
        write_frame(stream, &req.encode())?;
        read_response(stream)
    };

    'outer: while !stop() {
        let Some(ping) = local(Request::Ping) else {
            break;
        };
        let mut local_epoch = ping.epoch;
        let mut stream = match TcpStream::connect(&*source) {
            Ok(s) => s,
            Err(_) => {
                if !pause(REPL_RECONNECT) {
                    break;
                }
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(REPL_IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(REPL_IO_TIMEOUT));
        match remote(
            &mut stream,
            &Request::ReplSubscribe {
                last_epoch: local_epoch,
            },
        ) {
            Ok(Response {
                body: ResponseBody::ReplSubscribed,
                ..
            }) => {}
            _ => {
                if !pause(REPL_RECONNECT) {
                    break;
                }
                continue;
            }
        }
        let mut seq = 0u32;
        loop {
            if stop() {
                break 'outer;
            }
            let fetched = remote(
                &mut stream,
                &Request::ReplFetch {
                    after_epoch: local_epoch,
                    seq,
                },
            );
            let payload = match fetched {
                Ok(Response {
                    body: ResponseBody::ReplBatchPart { payload },
                    ..
                }) => payload,
                // Transport trouble or an unexpected answer: reconnect.
                _ => break,
            };
            if payload.is_empty() {
                // Caught up: tell the primary where we are, then idle.
                seq = 0;
                if remote(&mut stream, &Request::ReplAck { epoch: local_epoch }).is_err() {
                    break;
                }
                if !pause(REPL_POLL) {
                    break 'outer;
                }
                continue;
            }
            let Some(outcome) = local(Request::ReplApply { payload }) else {
                break 'outer;
            };
            match outcome.body {
                ResponseBody::ReplApplied { complete: false } => seq += 1,
                ResponseBody::ReplApplied { complete: true } => {
                    local_epoch = outcome.epoch;
                    seq = 0;
                    if remote(&mut stream, &Request::ReplAck { epoch: local_epoch }).is_err() {
                        break;
                    }
                }
                // Promoted out from under the loop (the dispatcher now
                // answers as a fenced primary): stop replicating.
                ResponseBody::Error {
                    kind: ErrKind::Fenced | ErrKind::BadRequest,
                    ..
                } => break 'outer,
                // A torn part or a chain mismatch: restart the batch;
                // the primary serves a snapshot if the chain is gone.
                _ => {
                    seq = 0;
                    if !pause(REPL_POLL) {
                        break 'outer;
                    }
                }
            }
        }
        if !pause(REPL_RECONNECT) {
            break;
        }
    }
}

/// Render one query hit the way `natix query` prints it.
fn render_hit(store: &mut XmlStore, r: natix_store::NodeRef) -> Result<String, StoreError> {
    let (kind, label) = store.with_node(r, |n| (n.kind, n.label))?;
    let name = store.label_name(label).to_string();
    let content = store.node_content(r)?;
    Ok(match (kind, content) {
        (NodeKind::Element, _) => format!("<{name}>"),
        (NodeKind::Attribute, Some(v)) => format!("@{name}=\"{v}\""),
        (_, Some(v)) => v,
        (_, None) => format!("<{name}>"),
    })
}

/// Blocking frame read used by the client side (no shutdown awareness).
pub(crate) fn read_response(stream: &mut TcpStream) -> Result<Response, ProtoError> {
    let body = read_frame(stream)?;
    Response::decode(&body)
}
