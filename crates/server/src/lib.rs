//! `natix-server`: network access to a natix store.
//!
//! The crate has three layers:
//!
//! * [`wire`] — the length-prefixed binary protocol (frame I/O plus the
//!   [`wire::Request`]/[`wire::Response`] codec). Pure, deterministic,
//!   and fuzzed independently of any socket.
//! * [`server`] — the daemon: acceptor, worker pool and the single
//!   store-service thread that owns the `SharedStore` and maps
//!   connections onto snapshot pins.
//! * [`client`] — a blocking client that speaks the protocol and honors
//!   the server's typed retry-after backpressure.
//!
//! See `DESIGN.md` §15 for the wire format and the session → pin
//! lifecycle.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{serve, ServeConfig, ServeError, ServeSummary, ServerHandle};
pub use wire::{ErrKind, ProtoError, Request, Response, ResponseBody, ShedKind, UpdateOp};
