//! The `natix serve` wire protocol: length-prefixed binary frames over a
//! byte stream.
//!
//! A frame is a 4-byte little-endian body length followed by the body;
//! bodies are capped at [`MAX_FRAME`] bytes and must not be empty. A
//! request body is an opcode byte plus opcode-specific fields; a response
//! body is a status byte, the epoch the response was served at (0 when no
//! store state was consulted, e.g. a queue-level shed), and
//! status-specific fields. Strings are a 4-byte length plus UTF-8 bytes.
//!
//! Error handling is layered so a connection survives everything the
//! framing layer can still delimit:
//!
//! * an unparsable *body* inside a well-formed frame yields
//!   [`ProtoError::Malformed`] — the peer can answer with a typed error
//!   response and keep the connection, because the next frame boundary is
//!   still known;
//! * a length prefix of 0 or above [`MAX_FRAME`] yields
//!   [`ProtoError::BadLength`] — the stream position is unusable and the
//!   connection must close after an error response;
//! * a clean close at a frame boundary yields [`ProtoError::Closed`]; a
//!   disconnect mid-frame surfaces as [`ProtoError::Io`].

use std::io::{Read, Write};

/// Largest accepted frame body (16 MiB) — enough for any document this
/// store serves, small enough that a hostile length prefix cannot balloon
/// allocations.
pub const MAX_FRAME: u32 = 1 << 24;

/// Decode/transport failure at the protocol layer.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket-level failure (including disconnects mid-frame).
    Io(std::io::Error),
    /// Frame length prefix of 0 or above [`MAX_FRAME`]; the stream can no
    /// longer be delimited and the connection must close.
    BadLength(u32),
    /// A well-framed body that does not parse; the connection can
    /// continue after a typed error response.
    Malformed(&'static str),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::BadLength(n) => write!(f, "bad frame length {n} (max {MAX_FRAME})"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`ResponseBody::Pong`].
    Ping,
    /// Evaluate an XPath query against the session's pinned snapshot (or
    /// a per-request snapshot when none is pinned).
    Query {
        /// The XPath expression.
        xpath: String,
        /// Return only the hit count, no rendered results.
        count_only: bool,
    },
    /// Serialize the full document.
    Dump {
        /// Accept an unpinned degraded read when admission control sheds
        /// the pinned path (instead of a retry-after response).
        degraded_ok: bool,
    },
    /// Apply one update; the response's epoch is the new committed epoch.
    Update {
        /// XPath selecting the target node (first hit in document order).
        target: String,
        /// What to do at the target.
        op: UpdateOp,
    },
    /// Storage and concurrency counters.
    Stats,
    /// Scrub the backing file (read-only fsck) and report.
    Fsck,
    /// Pin the current committed epoch for this connection: every
    /// subsequent `Query`/`Dump` on the connection reads that epoch until
    /// `End` (or disconnect) releases the pin.
    Begin,
    /// Release the connection's pinned snapshot.
    End,
    /// Ask the server to shut down gracefully: stop accepting, drain
    /// in-flight requests, release pins, then exit.
    Shutdown,
    /// A follower announces itself to a primary at its current applied
    /// epoch; answered with [`ResponseBody::ReplSubscribed`].
    ReplSubscribe {
        /// Epoch of the follower's file (0 before bootstrap).
        last_epoch: u64,
    },
    /// A follower asks the primary for the next batch part after its
    /// applied epoch; answered with [`ResponseBody::ReplBatchPart`].
    ReplFetch {
        /// Epoch the follower's file is at.
        after_epoch: u64,
        /// 0-based part index within the batch being fetched.
        seq: u32,
    },
    /// A follower reports the epoch it has durably applied; answered
    /// with [`ResponseBody::ReplAckOk`].
    ReplAck {
        /// The durably applied epoch.
        epoch: u64,
    },
    /// Hand one replication batch part to a replica server (its own
    /// fetch loop sends this locally); answered with
    /// [`ResponseBody::ReplApplied`], or [`ErrKind::Fenced`] after
    /// promotion.
    ReplApply {
        /// One encoded part (`NRPB` framing, checksummed).
        payload: Vec<u8>,
    },
    /// Stop replicating and become a primary: discard any staged tail,
    /// run recovery, fence; answered with [`ResponseBody::ReplPromoted`].
    ReplPromote,
}

/// The mutation of a [`Request::Update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Append a new element child under the target element.
    AppendElement {
        /// Tag name of the new element.
        name: String,
    },
    /// Append a new text child under the target element.
    AppendText {
        /// Text content of the new node.
        text: String,
    },
    /// Insert a new element immediately before the target node.
    InsertBefore {
        /// Tag name of the new element.
        name: String,
    },
    /// Delete the subtree rooted at the target node.
    DeleteSubtree,
}

/// Why a request was shed ([`ResponseBody::RetryAfter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedKind {
    /// An admission or queue limit was full.
    Overloaded,
    /// The request exhausted its page-read deadline budget.
    Timeout,
    /// The store is in read-only degraded mode (resource exhaustion,
    /// e.g. a full disk): writes are refused with a long back-off until
    /// the backend recovers; reads keep being served.
    ReadOnly,
}

/// Failure class of a [`ResponseBody::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// The request frame was malformed at the protocol layer.
    Proto,
    /// The request was well-formed but semantically bad (e.g. an XPath
    /// that does not parse).
    BadRequest,
    /// An update was rejected by the store's invariants.
    InvalidUpdate,
    /// The store's at-rest bytes are damaged.
    Corrupt,
    /// An underlying I/O failure.
    Io,
    /// Server-side failure (e.g. the store service died).
    Internal,
    /// A promoted follower refused a replication batch from a deposed
    /// primary (the fencing epoch is in the response header).
    Fenced,
}

/// One server response: the epoch consulted plus a status-specific body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Committed epoch the response was served at; 0 when no store state
    /// was consulted (queue-level sheds, protocol errors).
    pub epoch: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// Status-specific payload of a [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Query`].
    QueryResult {
        /// Number of hits.
        count: u32,
        /// Rendered hits (empty when `count_only` was set).
        lines: Vec<String>,
    },
    /// Answer to [`Request::Dump`].
    DumpResult {
        /// True for a pinned, fully-verified read; false for a degraded
        /// fallback.
        full: bool,
        /// The serialized document.
        xml: String,
        /// Damage report of a degraded read (empty when `full`).
        damage: String,
    },
    /// Answer to [`Request::Update`]; the new epoch is in the header.
    UpdateDone,
    /// Answer to [`Request::Stats`]: rendered counter table.
    StatsText(String),
    /// Answer to [`Request::Fsck`].
    FsckResult {
        /// True when the scrub found nothing.
        clean: bool,
        /// The rendered report.
        report: String,
    },
    /// Answer to [`Request::Begin`]; the pinned epoch is in the header.
    SessionPinned,
    /// Answer to [`Request::End`].
    SessionReleased,
    /// The session's pin lease expired and the server already released
    /// the pin (leaked or idle session). Answered once to the session's
    /// next request; a well-behaved client re-`begin`s.
    SessionExpired,
    /// Answer to [`Request::Shutdown`]; the server drains and exits.
    ShuttingDown,
    /// The request failed; retrying without change will fail again.
    Error {
        /// Failure class.
        kind: ErrKind,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::ReplSubscribe`]; the primary's committed
    /// epoch is in the header.
    ReplSubscribed,
    /// Answer to [`Request::ReplFetch`]: one encoded batch part, or an
    /// empty payload when the follower is caught up. The header carries
    /// the primary's committed epoch.
    ReplBatchPart {
        /// One `NRPB`-framed part (empty = caught up).
        payload: Vec<u8>,
    },
    /// Answer to [`Request::ReplAck`].
    ReplAckOk,
    /// Answer to [`Request::ReplApply`]; the header carries the
    /// replica's applied epoch.
    ReplApplied {
        /// True when the part completed a batch (the file advanced);
        /// false when it was staged pending further parts.
        complete: bool,
    },
    /// Answer to [`Request::ReplPromote`]; the fencing epoch is in the
    /// header.
    ReplPromoted,
    /// The request was shed by backpressure; retry after the given
    /// back-off and it should eventually succeed.
    RetryAfter {
        /// Why it was shed.
        kind: ShedKind,
        /// Suggested client back-off in milliseconds.
        millis: u32,
        /// What was shed (`"read"`, `"write"`, `"queue"`, …).
        what: String,
    },
}

// ---------------------------------------------------------------- frames

/// Write one frame (length prefix + body). Bodies that cannot be
/// delimited (empty or over [`MAX_FRAME`]) are refused before any byte
/// is written, so a sender can never wedge the stream.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), ProtoError> {
    if body.is_empty() || body.len() > MAX_FRAME as usize {
        return Err(ProtoError::BadLength(
            body.len().min(u32::MAX as usize) as u32
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame body. [`ProtoError::Closed`] on a clean close before
/// the length prefix; [`ProtoError::Io`] on a mid-frame disconnect.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Err(ProtoError::Closed),
        Ok(n) => r.read_exact(&mut len[n..])?,
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let n = u32::from_le_bytes(len);
    if n == 0 || n > MAX_FRAME {
        return Err(ProtoError::BadLength(n));
    }
    let mut body = vec![0u8; n as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

// ---------------------------------------------------------------- codec

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(ProtoError::Malformed("truncated body"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("truncated u32"))?;
        let v = u32::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("truncated u64"))?;
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("string length exceeds body"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| ProtoError::Malformed("string is not UTF-8"))?;
        self.pos = end;
        Ok(s.to_string())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()? as usize;
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("byte-blob length exceeds body"))?;
        let v = self.buf[self.pos..end].to_vec();
        self.pos = end;
        Ok(v)
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after body"))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Wire opcode (documented in DESIGN.md §15).
pub const OP_PING: u8 = 1;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_QUERY: u8 = 2;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_DUMP: u8 = 3;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_UPDATE: u8 = 4;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_STATS: u8 = 5;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_FSCK: u8 = 6;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_BEGIN: u8 = 7;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_END: u8 = 8;
/// Wire opcode (documented in DESIGN.md §17).
pub const OP_REPL_SUBSCRIBE: u8 = 9;
/// Wire opcode (documented in DESIGN.md §17).
pub const OP_REPL_FETCH: u8 = 10;
/// Wire opcode (documented in DESIGN.md §17).
pub const OP_REPL_ACK: u8 = 11;
/// Wire opcode (documented in DESIGN.md §17).
pub const OP_REPL_APPLY: u8 = 12;
/// Wire opcode (documented in DESIGN.md §17).
pub const OP_REPL_PROMOTE: u8 = 13;
/// Wire opcode (documented in DESIGN.md §15).
pub const OP_SHUTDOWN: u8 = 127;

const UPD_APPEND_ELEMENT: u8 = 1;
const UPD_APPEND_TEXT: u8 = 2;
const UPD_INSERT_BEFORE: u8 = 3;
const UPD_DELETE: u8 = 4;

impl Request {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(OP_PING),
            Request::Query { xpath, count_only } => {
                out.push(OP_QUERY);
                out.push(u8::from(*count_only));
                put_str(&mut out, xpath);
            }
            Request::Dump { degraded_ok } => {
                out.push(OP_DUMP);
                out.push(u8::from(*degraded_ok));
            }
            Request::Update { target, op } => {
                out.push(OP_UPDATE);
                match op {
                    UpdateOp::AppendElement { name } => {
                        out.push(UPD_APPEND_ELEMENT);
                        put_str(&mut out, target);
                        put_str(&mut out, name);
                    }
                    UpdateOp::AppendText { text } => {
                        out.push(UPD_APPEND_TEXT);
                        put_str(&mut out, target);
                        put_str(&mut out, text);
                    }
                    UpdateOp::InsertBefore { name } => {
                        out.push(UPD_INSERT_BEFORE);
                        put_str(&mut out, target);
                        put_str(&mut out, name);
                    }
                    UpdateOp::DeleteSubtree => {
                        out.push(UPD_DELETE);
                        put_str(&mut out, target);
                    }
                }
            }
            Request::Stats => out.push(OP_STATS),
            Request::Fsck => out.push(OP_FSCK),
            Request::Begin => out.push(OP_BEGIN),
            Request::End => out.push(OP_END),
            Request::Shutdown => out.push(OP_SHUTDOWN),
            Request::ReplSubscribe { last_epoch } => {
                out.push(OP_REPL_SUBSCRIBE);
                out.extend_from_slice(&last_epoch.to_le_bytes());
            }
            Request::ReplFetch { after_epoch, seq } => {
                out.push(OP_REPL_FETCH);
                out.extend_from_slice(&after_epoch.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Request::ReplAck { epoch } => {
                out.push(OP_REPL_ACK);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Request::ReplApply { payload } => {
                out.push(OP_REPL_APPLY);
                put_bytes(&mut out, payload);
            }
            Request::ReplPromote => out.push(OP_REPL_PROMOTE),
        }
        out
    }

    /// Decode a frame body. [`ProtoError::Malformed`] leaves the
    /// connection usable (the frame was still delimited).
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_PING => Request::Ping,
            OP_QUERY => {
                let flags = c.u8()?;
                if flags > 1 {
                    return Err(ProtoError::Malformed("unknown query flags"));
                }
                Request::Query {
                    count_only: flags == 1,
                    xpath: c.str()?,
                }
            }
            OP_DUMP => {
                let flags = c.u8()?;
                if flags > 1 {
                    return Err(ProtoError::Malformed("unknown dump flags"));
                }
                Request::Dump {
                    degraded_ok: flags == 1,
                }
            }
            OP_UPDATE => {
                let op = c.u8()?;
                let target = c.str()?;
                let op = match op {
                    UPD_APPEND_ELEMENT => UpdateOp::AppendElement { name: c.str()? },
                    UPD_APPEND_TEXT => UpdateOp::AppendText { text: c.str()? },
                    UPD_INSERT_BEFORE => UpdateOp::InsertBefore { name: c.str()? },
                    UPD_DELETE => UpdateOp::DeleteSubtree,
                    _ => return Err(ProtoError::Malformed("unknown update op")),
                };
                Request::Update { target, op }
            }
            OP_STATS => Request::Stats,
            OP_FSCK => Request::Fsck,
            OP_BEGIN => Request::Begin,
            OP_END => Request::End,
            OP_SHUTDOWN => Request::Shutdown,
            OP_REPL_SUBSCRIBE => Request::ReplSubscribe {
                last_epoch: c.u64()?,
            },
            OP_REPL_FETCH => Request::ReplFetch {
                after_epoch: c.u64()?,
                seq: c.u32()?,
            },
            OP_REPL_ACK => Request::ReplAck { epoch: c.u64()? },
            OP_REPL_APPLY => Request::ReplApply {
                payload: c.bytes()?,
            },
            OP_REPL_PROMOTE => Request::ReplPromote,
            _ => return Err(ProtoError::Malformed("unknown opcode")),
        };
        c.done()?;
        Ok(req)
    }
}

const ST_OK_PONG: u8 = 0;
const ST_OK_QUERY: u8 = 1;
const ST_OK_DUMP: u8 = 2;
const ST_OK_UPDATE: u8 = 3;
const ST_OK_STATS: u8 = 4;
const ST_OK_FSCK: u8 = 5;
const ST_OK_BEGIN: u8 = 6;
const ST_OK_END: u8 = 7;
const ST_OK_SHUTDOWN: u8 = 8;
const ST_SESSION_EXPIRED: u8 = 9;
const ST_OK_REPL_SUBSCRIBE: u8 = 10;
const ST_OK_REPL_BATCH: u8 = 11;
const ST_OK_REPL_ACK: u8 = 12;
const ST_OK_REPL_APPLY: u8 = 13;
const ST_OK_REPL_PROMOTE: u8 = 14;
const ST_ERROR: u8 = 64;
const ST_RETRY_AFTER: u8 = 65;

impl ErrKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrKind::Proto => 0,
            ErrKind::BadRequest => 1,
            ErrKind::InvalidUpdate => 2,
            ErrKind::Corrupt => 3,
            ErrKind::Io => 4,
            ErrKind::Internal => 5,
            ErrKind::Fenced => 6,
        }
    }

    fn from_u8(b: u8) -> Result<ErrKind, ProtoError> {
        Ok(match b {
            0 => ErrKind::Proto,
            1 => ErrKind::BadRequest,
            2 => ErrKind::InvalidUpdate,
            3 => ErrKind::Corrupt,
            4 => ErrKind::Io,
            5 => ErrKind::Internal,
            6 => ErrKind::Fenced,
            _ => return Err(ProtoError::Malformed("unknown error kind")),
        })
    }
}

impl std::fmt::Display for ErrKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrKind::Proto => "protocol",
            ErrKind::BadRequest => "bad-request",
            ErrKind::InvalidUpdate => "invalid-update",
            ErrKind::Corrupt => "corrupt",
            ErrKind::Io => "io",
            ErrKind::Internal => "internal",
            ErrKind::Fenced => "fenced",
        };
        f.write_str(s)
    }
}

impl Response {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let status = match &self.body {
            ResponseBody::Pong => ST_OK_PONG,
            ResponseBody::QueryResult { .. } => ST_OK_QUERY,
            ResponseBody::DumpResult { .. } => ST_OK_DUMP,
            ResponseBody::UpdateDone => ST_OK_UPDATE,
            ResponseBody::StatsText(_) => ST_OK_STATS,
            ResponseBody::FsckResult { .. } => ST_OK_FSCK,
            ResponseBody::SessionPinned => ST_OK_BEGIN,
            ResponseBody::SessionReleased => ST_OK_END,
            ResponseBody::ShuttingDown => ST_OK_SHUTDOWN,
            ResponseBody::SessionExpired => ST_SESSION_EXPIRED,
            ResponseBody::ReplSubscribed => ST_OK_REPL_SUBSCRIBE,
            ResponseBody::ReplBatchPart { .. } => ST_OK_REPL_BATCH,
            ResponseBody::ReplAckOk => ST_OK_REPL_ACK,
            ResponseBody::ReplApplied { .. } => ST_OK_REPL_APPLY,
            ResponseBody::ReplPromoted => ST_OK_REPL_PROMOTE,
            ResponseBody::Error { .. } => ST_ERROR,
            ResponseBody::RetryAfter { .. } => ST_RETRY_AFTER,
        };
        out.push(status);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        match &self.body {
            ResponseBody::QueryResult { count, lines } => {
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&(lines.len() as u32).to_le_bytes());
                for l in lines {
                    put_str(&mut out, l);
                }
            }
            ResponseBody::DumpResult { full, xml, damage } => {
                out.push(u8::from(*full));
                put_str(&mut out, xml);
                put_str(&mut out, damage);
            }
            ResponseBody::StatsText(s) => put_str(&mut out, s),
            ResponseBody::FsckResult { clean, report } => {
                out.push(u8::from(*clean));
                put_str(&mut out, report);
            }
            ResponseBody::Error { kind, message } => {
                out.push(kind.to_u8());
                put_str(&mut out, message);
            }
            ResponseBody::RetryAfter { kind, millis, what } => {
                out.push(match kind {
                    ShedKind::Overloaded => 0,
                    ShedKind::Timeout => 1,
                    ShedKind::ReadOnly => 2,
                });
                out.extend_from_slice(&millis.to_le_bytes());
                put_str(&mut out, what);
            }
            ResponseBody::ReplBatchPart { payload } => put_bytes(&mut out, payload),
            ResponseBody::ReplApplied { complete } => out.push(u8::from(*complete)),
            ResponseBody::Pong
            | ResponseBody::UpdateDone
            | ResponseBody::SessionPinned
            | ResponseBody::SessionReleased
            | ResponseBody::SessionExpired
            | ResponseBody::ShuttingDown
            | ResponseBody::ReplSubscribed
            | ResponseBody::ReplAckOk
            | ResponseBody::ReplPromoted => {}
        }
        out
    }

    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(body);
        let status = c.u8()?;
        let epoch = c.u64()?;
        let body = match status {
            ST_OK_PONG => ResponseBody::Pong,
            ST_OK_QUERY => {
                let count = c.u32()?;
                let n = c.u32()? as usize;
                // Each line needs at least its 4-byte length: bound the
                // allocation by what the body can actually hold.
                if n > body.len() / 4 + 1 {
                    return Err(ProtoError::Malformed("line count exceeds body"));
                }
                let mut lines = Vec::with_capacity(n);
                for _ in 0..n {
                    lines.push(c.str()?);
                }
                ResponseBody::QueryResult { count, lines }
            }
            ST_OK_DUMP => ResponseBody::DumpResult {
                full: c.u8()? != 0,
                xml: c.str()?,
                damage: c.str()?,
            },
            ST_OK_UPDATE => ResponseBody::UpdateDone,
            ST_OK_STATS => ResponseBody::StatsText(c.str()?),
            ST_OK_FSCK => ResponseBody::FsckResult {
                clean: c.u8()? != 0,
                report: c.str()?,
            },
            ST_OK_BEGIN => ResponseBody::SessionPinned,
            ST_OK_END => ResponseBody::SessionReleased,
            ST_OK_SHUTDOWN => ResponseBody::ShuttingDown,
            ST_SESSION_EXPIRED => ResponseBody::SessionExpired,
            ST_OK_REPL_SUBSCRIBE => ResponseBody::ReplSubscribed,
            ST_OK_REPL_BATCH => ResponseBody::ReplBatchPart {
                payload: c.bytes()?,
            },
            ST_OK_REPL_ACK => ResponseBody::ReplAckOk,
            ST_OK_REPL_APPLY => {
                let flag = c.u8()?;
                if flag > 1 {
                    return Err(ProtoError::Malformed("unknown apply flag"));
                }
                ResponseBody::ReplApplied {
                    complete: flag == 1,
                }
            }
            ST_OK_REPL_PROMOTE => ResponseBody::ReplPromoted,
            ST_ERROR => ResponseBody::Error {
                kind: ErrKind::from_u8(c.u8()?)?,
                message: c.str()?,
            },
            ST_RETRY_AFTER => ResponseBody::RetryAfter {
                kind: match c.u8()? {
                    0 => ShedKind::Overloaded,
                    1 => ShedKind::Timeout,
                    2 => ShedKind::ReadOnly,
                    _ => return Err(ProtoError::Malformed("unknown shed kind")),
                },
                millis: c.u32()?,
                what: c.str()?,
            },
            _ => return Err(ProtoError::Malformed("unknown status")),
        };
        c.done()?;
        Ok(Response { epoch, body })
    }
}
