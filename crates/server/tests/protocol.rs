//! Satellite: protocol fuzz/property tests for the wire codec, no
//! sockets involved. Valid requests and responses round-trip exactly;
//! arbitrary bytes, random mutations of valid frames, and truncations
//! must never panic the decoder — every outcome is `Ok` or a typed
//! [`ProtoError`].

use natix_server::wire::{read_frame, write_frame, MAX_FRAME};
use natix_server::{ErrKind, ProtoError, Request, Response, ResponseBody, ShedKind, UpdateOp};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Short strings, including empties and non-ASCII, for protocol fields.
fn field_string() -> BoxedStrategy<String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
        .boxed()
}

fn update_op() -> BoxedStrategy<UpdateOp> {
    prop_oneof![
        field_string().prop_map(|name| UpdateOp::AppendElement { name }),
        field_string().prop_map(|text| UpdateOp::AppendText { text }),
        field_string().prop_map(|name| UpdateOp::InsertBefore { name }),
        (0u8..1u8).prop_map(|_| UpdateOp::DeleteSubtree),
    ]
    .boxed()
}

/// Opaque byte blobs for the replication payload fields (the wire layer
/// must carry them verbatim; their *content* is validated higher up).
fn payload_bytes() -> BoxedStrategy<Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..96).boxed()
}

fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        (0u8..1u8).prop_map(|_| Request::Ping),
        (field_string(), any::<bool>())
            .prop_map(|(xpath, count_only)| Request::Query { xpath, count_only }),
        any::<bool>().prop_map(|degraded_ok| Request::Dump { degraded_ok }),
        (field_string(), update_op()).prop_map(|(target, op)| Request::Update { target, op }),
        (0u8..1u8).prop_map(|_| Request::Stats),
        (0u8..1u8).prop_map(|_| Request::Fsck),
        (0u8..1u8).prop_map(|_| Request::Begin),
        (0u8..1u8).prop_map(|_| Request::End),
        (0u8..1u8).prop_map(|_| Request::Shutdown),
        any::<u64>().prop_map(|last_epoch| Request::ReplSubscribe { last_epoch }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(after_epoch, seq)| Request::ReplFetch { after_epoch, seq }),
        any::<u64>().prop_map(|epoch| Request::ReplAck { epoch }),
        payload_bytes().prop_map(|payload| Request::ReplApply { payload }),
        (0u8..1u8).prop_map(|_| Request::ReplPromote),
    ]
    .boxed()
}

fn err_kind() -> BoxedStrategy<ErrKind> {
    prop_oneof![
        (0u8..1u8).prop_map(|_| ErrKind::Proto),
        (0u8..1u8).prop_map(|_| ErrKind::BadRequest),
        (0u8..1u8).prop_map(|_| ErrKind::InvalidUpdate),
        (0u8..1u8).prop_map(|_| ErrKind::Corrupt),
        (0u8..1u8).prop_map(|_| ErrKind::Io),
        (0u8..1u8).prop_map(|_| ErrKind::Internal),
        (0u8..1u8).prop_map(|_| ErrKind::Fenced),
    ]
    .boxed()
}

fn response_body() -> BoxedStrategy<ResponseBody> {
    prop_oneof![
        (0u8..1u8).prop_map(|_| ResponseBody::Pong),
        (
            any::<u16>(),
            proptest::collection::vec(field_string(), 0..8)
        )
            .prop_map(|(count, lines)| ResponseBody::QueryResult {
                count: count as u32,
                lines,
            }),
        (any::<bool>(), field_string(), field_string())
            .prop_map(|(full, xml, damage)| { ResponseBody::DumpResult { full, xml, damage } }),
        (0u8..1u8).prop_map(|_| ResponseBody::UpdateDone),
        field_string().prop_map(ResponseBody::StatsText),
        (any::<bool>(), field_string())
            .prop_map(|(clean, report)| ResponseBody::FsckResult { clean, report }),
        (0u8..1u8).prop_map(|_| ResponseBody::SessionPinned),
        (0u8..1u8).prop_map(|_| ResponseBody::SessionReleased),
        (0u8..1u8).prop_map(|_| ResponseBody::ShuttingDown),
        (err_kind(), field_string())
            .prop_map(|(kind, message)| ResponseBody::Error { kind, message }),
        (any::<bool>(), any::<u16>(), field_string()).prop_map(|(t, millis, what)| {
            ResponseBody::RetryAfter {
                kind: if t {
                    ShedKind::Timeout
                } else {
                    ShedKind::Overloaded
                },
                millis: millis as u32,
                what,
            }
        }),
        (0u8..1u8).prop_map(|_| ResponseBody::ReplSubscribed),
        payload_bytes().prop_map(|payload| ResponseBody::ReplBatchPart { payload }),
        (0u8..1u8).prop_map(|_| ResponseBody::ReplAckOk),
        any::<bool>().prop_map(|complete| ResponseBody::ReplApplied { complete }),
        (0u8..1u8).prop_map(|_| ResponseBody::ReplPromoted),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every request survives an encode/decode round trip unchanged.
    #[test]
    fn request_roundtrip(req in request()) {
        let body = req.encode();
        let back = Request::decode(&body);
        prop_assert_eq!(back.ok(), Some(req));
    }

    /// Every response survives an encode/decode round trip unchanged.
    #[test]
    fn response_roundtrip(epoch in any::<u64>(), body in response_body()) {
        let resp = Response { epoch, body };
        let bytes = resp.encode();
        let back = Response::decode(&bytes);
        prop_assert_eq!(back.ok(), Some(resp));
    }

    /// Arbitrary byte soup decodes to `Ok` or a typed error — never a
    /// panic (the `proptest!` harness turns a panic into a failure with
    /// the offending input printed).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Random single-byte mutations of a valid request body decode to
    /// `Ok` (the mutation may land on a don't-care byte or produce
    /// another valid request) or a typed error — never a panic.
    #[test]
    fn mutated_request_bodies_never_panic(
        req in request(),
        muts in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut body = req.encode();
        for (pos, val) in muts {
            let idx = pos as usize % body.len();
            body[idx] = val;
        }
        let _ = Request::decode(&body);
    }

    /// Truncating a valid request at any point decodes to `Ok` (a prefix
    /// can be a complete shorter request) or a typed error — never a
    /// panic, and never an `Ok` claiming trailing garbage was consumed.
    #[test]
    fn truncated_request_bodies_never_panic(req in request(), cut in any::<u16>()) {
        let body = req.encode();
        let keep = cut as usize % (body.len() + 1);
        let _ = Request::decode(&body[..keep]);
        // ... and appending trailing garbage is always rejected.
        let mut extended = body.clone();
        extended.push(0xA5);
        prop_assert!(Request::decode(&extended).is_err());
    }

    /// The replication *part* codec (the payload carried inside
    /// `ReplApply`/`ReplBatchPart` frames): arbitrary byte soup never
    /// panics the decoder.
    #[test]
    fn repl_part_garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = natix_store::decode_part(&bytes);
    }

    /// Mutations and truncations of a *valid* replication part never
    /// panic: the checksum trailer or a structural check catches them
    /// with a typed store error (a mutation that only touches page
    /// *content* covered by the checksum cannot slip through either).
    #[test]
    fn mutated_repl_parts_never_panic(
        prev in any::<u32>(),
        adv in 1u32..1000u32,
        muts in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
        cut in any::<u16>(),
    ) {
        let batch = natix_store::ReplBatch {
            kind: natix_store::BatchKind::Incremental,
            prev_epoch: prev as u64,
            epoch: prev as u64 + adv as u64,
            pages: vec![(2, Box::new([0xA5u8; natix_store::PAGE_SIZE]))],
        };
        let mut part = batch.encode_parts().remove(0);
        let keep = cut as usize % (part.len() + 1);
        let _ = natix_store::decode_part(&part[..keep]);
        for (pos, val) in muts {
            let idx = pos as usize % part.len();
            part[idx] = val;
        }
        let _ = natix_store::decode_part(&part);
    }
}

// ------------------------------------------------- frame-level parsing

fn frame_of(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, body).unwrap();
    out
}

#[test]
fn frame_roundtrip() {
    let body = Request::Ping.encode();
    let framed = frame_of(&body);
    let mut r = &framed[..];
    assert_eq!(read_frame(&mut r).unwrap(), body);
    // Immediately after, the source is empty: a clean close.
    assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
}

#[test]
fn empty_input_is_clean_close() {
    let mut r: &[u8] = &[];
    assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
}

#[test]
fn truncated_length_prefix_is_io_error() {
    for n in 1..4usize {
        let framed = frame_of(&Request::Ping.encode());
        let mut r = &framed[..n];
        assert!(
            matches!(read_frame(&mut r), Err(ProtoError::Io(_))),
            "prefix truncated to {n} bytes must be an I/O error"
        );
    }
}

#[test]
fn truncated_body_is_io_error() {
    let framed = frame_of(&Request::Fsck.encode());
    let mut r = &framed[..framed.len() - 1];
    assert!(matches!(read_frame(&mut r), Err(ProtoError::Io(_))));
}

#[test]
fn zero_and_oversized_lengths_are_bad_length() {
    let mut r: &[u8] = &0u32.to_le_bytes();
    assert!(matches!(read_frame(&mut r), Err(ProtoError::BadLength(0))));

    let huge = (MAX_FRAME + 1).to_le_bytes();
    let mut r: &[u8] = &huge;
    match read_frame(&mut r) {
        Err(ProtoError::BadLength(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected BadLength, got {other:?}"),
    }
    // An oversized prefix is rejected *before* any body is read: nothing
    // was consumed past the prefix.
    assert!(r.is_empty());
}

#[test]
fn write_frame_refuses_oversized_bodies() {
    let body = vec![0u8; MAX_FRAME as usize + 1];
    let mut out = Vec::new();
    assert!(matches!(
        write_frame(&mut out, &body),
        Err(ProtoError::BadLength(_))
    ));
    assert!(out.is_empty(), "no partial frame may be emitted");
}
