//! End-to-end tests of the `natix serve` daemon over real sockets:
//! verb round trips, graceful shutdown, protocol abuse (malformed
//! frames, bad lengths, mid-frame disconnects, randomized frame
//! mutations), the backpressure round trip, and a miniature
//! concurrent-client soak asserting snapshot isolation at the wire.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use natix_core::Ekm;
use natix_server::wire::{read_frame, write_frame, OP_SHUTDOWN};
use natix_server::{
    serve, Client, ErrKind, Request, Response, ResponseBody, ServeConfig, ServerHandle,
};
use natix_store::{bulkload_with, FilePager, StoreConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

const SEED_XML: &str = "<list><e>one entry of text</e><e>two entry of text</e>\
                        <e>three entry of text</e></list>";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("natix-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_store(dir: &Path) -> PathBuf {
    let path = dir.join("store.natix");
    let doc = natix_xml::parse(SEED_XML).unwrap();
    let pager = FilePager::create(&path).unwrap();
    drop(bulkload_with(&doc, &Ekm, 16, Box::new(pager), StoreConfig::default()).unwrap());
    path
}

fn start(store: PathBuf, tweak: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        store,
        workers: 3,
        ..ServeConfig::default()
    };
    tweak(&mut config);
    // Even an ephemeral-port bind can transiently fail with AddrInUse
    // when parallel test binaries churn through the port range; retry a
    // bounded number of times before declaring the environment broken.
    let mut last = None;
    for attempt in 0..10 {
        match serve(config.clone()) {
            Ok(handle) => return handle,
            Err(natix_server::ServeError::Bind(io))
                if io.kind() == std::io::ErrorKind::AddrInUse =>
            {
                std::thread::sleep(std::time::Duration::from_millis(25 * (attempt + 1)));
                last = Some(io);
            }
            Err(e) => panic!("serve: {e}"),
        }
    }
    panic!("bind kept failing with AddrInUse after 10 attempts: {last:?}")
}

/// Every verb round-trips, an update is visible to a later query, and a
/// wire-initiated shutdown drains cleanly with zero worker panics.
#[test]
fn verbs_round_trip_and_graceful_shutdown() {
    let dir = scratch_dir("verbs");
    let handle = start(build_store(&dir), |_| {});
    let mut c = Client::connect(handle.addr()).unwrap();

    let epoch0 = c.ping().unwrap();
    let (qe, count, lines) = c.query("//e").unwrap();
    assert_eq!(count, 3);
    assert_eq!(lines, vec!["<e>"; 3]);
    assert!(qe >= epoch0);

    let (_, xml) = c.dump().unwrap();
    assert_eq!(xml, natix_xml::parse(SEED_XML).unwrap().to_xml());

    let stats = c.stats().unwrap();
    assert!(stats.contains("epoch"), "{stats}");
    assert!(stats.contains("snapshots"), "{stats}");

    let (clean, report) = c.fsck().unwrap();
    assert!(clean, "{report}");

    // Update through the wire, observed by a later query on the same
    // connection at a strictly newer epoch.
    let resp = c
        .request(&Request::Update {
            target: "/list".to_string(),
            op: natix_server::UpdateOp::AppendElement {
                name: "fresh".to_string(),
            },
        })
        .unwrap();
    assert_eq!(resp.body, ResponseBody::UpdateDone);
    assert!(resp.epoch > epoch0);
    let (_, count, _) = c.query("//fresh").unwrap();
    assert_eq!(count, 1);

    // A bad XPath is a typed BadRequest, not a dropped connection.
    let resp = c
        .request(&Request::Query {
            xpath: "///".to_string(),
            count_only: true,
        })
        .unwrap();
    assert!(
        matches!(
            &resp.body,
            ResponseBody::Error {
                kind: ErrKind::BadRequest,
                ..
            }
        ),
        "{resp:?}"
    );
    // ... and an update matching nothing reports InvalidUpdate.
    let resp = c
        .request(&Request::Update {
            target: "//absent".to_string(),
            op: natix_server::UpdateOp::DeleteSubtree,
        })
        .unwrap();
    assert!(
        matches!(
            &resp.body,
            ResponseBody::Error {
                kind: ErrKind::InvalidUpdate,
                ..
            }
        ),
        "{resp:?}"
    );

    c.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.worker_panics, 0, "{summary}");
    assert_eq!(summary.proto_errors, 0, "{summary}");
    assert!(summary.ok >= 8, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Session pins hold their epoch: a pinned connection keeps seeing the
/// begin-time document while another connection commits updates.
#[test]
fn session_pin_isolates_from_concurrent_commits() {
    let dir = scratch_dir("pin");
    let handle = start(build_store(&dir), |_| {});

    let mut reader = Client::connect(handle.addr()).unwrap();
    let pinned_epoch = reader.begin().unwrap();
    let (_, before_xml) = reader.dump().unwrap();

    let mut writer = Client::connect(handle.addr()).unwrap();
    for i in 0..3 {
        let resp = writer
            .request(&Request::Update {
                target: "/list".to_string(),
                op: natix_server::UpdateOp::AppendText {
                    text: format!("wire payload number {i}"),
                },
            })
            .unwrap();
        assert_eq!(resp.body, ResponseBody::UpdateDone, "update {i}");
    }

    // The pinned reader still serves its epoch ...
    let (e, xml) = reader.dump().unwrap();
    assert_eq!(e, pinned_epoch);
    assert_eq!(xml, before_xml);
    // ... and after releasing the pin it sees the new state.
    reader.end().unwrap();
    let (e2, xml2) = reader.dump().unwrap();
    assert!(e2 > pinned_epoch);
    assert!(xml2.contains("wire payload number 2"));

    reader.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.worker_panics, 0, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A malformed body is answered with a typed protocol error and the
/// connection keeps working; an undelimitable length prefix is answered
/// and then the connection is closed.
#[test]
fn malformed_frames_get_typed_errors() {
    let dir = scratch_dir("malformed");
    let handle = start(build_store(&dir), |_| {});

    // Unknown opcode: typed error, connection survives.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut s, &[0xEE]).unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(
        matches!(
            &resp.body,
            ResponseBody::Error {
                kind: ErrKind::Proto,
                ..
            }
        ),
        "{resp:?}"
    );
    write_frame(&mut s, &Request::Ping.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert_eq!(resp.body, ResponseBody::Pong, "connection must survive");

    // Oversized length prefix: typed error, then close.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(
        matches!(
            &resp.body,
            ResponseBody::Error {
                kind: ErrKind::Proto,
                ..
            }
        ),
        "{resp:?}"
    );
    assert!(
        matches!(read_frame(&mut s), Err(natix_server::ProtoError::Closed)),
        "server must close after an undelimitable prefix"
    );

    // Mid-frame disconnect: claim 100 bytes, send 10, hang up. The
    // server must shrug it off and keep serving.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[7u8; 10]).unwrap();
    drop(s);

    let mut c = Client::connect(handle.addr()).unwrap();
    assert!(c.ping().is_ok());
    c.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.worker_panics, 0, "{summary}");
    assert!(summary.proto_errors >= 2, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Randomized network fuzz: mutations and truncations of valid frames,
/// plus raw byte soup, sent over real connections. Every exchange ends
/// in a typed response or a clean close — the server never panics and
/// still serves valid traffic afterwards.
#[test]
fn fuzzed_frames_never_kill_the_server() {
    let dir = scratch_dir("fuzz");
    let handle = start(build_store(&dir), |_| {});
    let mut rng = StdRng::seed_from_u64(0xF0A2);

    let valid: Vec<Vec<u8>> = vec![
        Request::Ping.encode(),
        Request::Query {
            xpath: "//e".to_string(),
            count_only: false,
        }
        .encode(),
        Request::Dump { degraded_ok: true }.encode(),
        Request::Stats.encode(),
        Request::Fsck.encode(),
        Request::Begin.encode(),
        Request::End.encode(),
        Request::Update {
            target: "/list".to_string(),
            op: natix_server::UpdateOp::AppendElement {
                name: "fz".to_string(),
            },
        }
        .encode(),
    ];

    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    for round in 0..300 {
        let mut body = valid[rng.gen_range(0..valid.len())].clone();
        match rng.gen_range(0..4u8) {
            0 => {
                // Flip 1..4 bytes.
                for _ in 0..rng.gen_range(1..4u8) {
                    let i = rng.gen_range(0..body.len());
                    body[i] = rng.gen_range(0..=255u8);
                }
            }
            1 => {
                // Truncate.
                let keep = rng.gen_range(0..body.len());
                body.truncate(keep.max(1));
            }
            2 => {
                // Raw byte soup.
                body = (0..rng.gen_range(1..48usize))
                    .map(|_| rng.gen_range(0..=255u8))
                    .collect();
            }
            _ => {} // leave valid
        }
        // A mutation may fabricate the shutdown opcode; skip those so the
        // fuzz loop keeps a live server to abuse.
        if body[0] == OP_SHUTDOWN {
            continue;
        }
        write_frame(&mut conn, &body).unwrap();
        match read_frame(&mut conn) {
            Ok(frame) => {
                // Whatever came back must at least be a decodable
                // response; content is free.
                Response::decode(&frame)
                    .unwrap_or_else(|e| panic!("round {round}: undecodable response: {e}"));
            }
            Err(_) => {
                // Clean close (or reset) — reconnect and go on.
                conn = TcpStream::connect(handle.addr()).unwrap();
            }
        }
    }

    // The server is still healthy.
    let mut c = Client::connect(handle.addr()).unwrap();
    assert!(c.ping().is_ok());
    let (clean, report) = c.fsck().unwrap();
    assert!(clean, "store must stay consistent under fuzz:\n{report}");
    c.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.worker_panics, 0, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: the backpressure round trip. Saturate the pin budget and
/// the next session gets a typed retry-after (not a hang, not a reset);
/// honoring the hint after a pin frees succeeds.
#[test]
fn backpressure_round_trip() {
    let dir = scratch_dir("backpressure");
    let handle = start(build_store(&dir), |c| {
        c.max_pins = 2;
    });

    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    a.begin().unwrap();
    b.begin().unwrap();

    // Budget exhausted: a typed retry-after with a usable hint.
    let resp = c.request(&Request::Begin).unwrap();
    match &resp.body {
        ResponseBody::RetryAfter { millis, what, .. } => {
            assert!(*millis > 0, "{resp:?}");
            assert!(!what.is_empty(), "{resp:?}");
        }
        other => panic!("expected RetryAfter, got {other:?}"),
    }

    // Unpinned reads still work under a saturated pin budget via the
    // degraded path (reads are served, never hung).
    let resp = c.request(&Request::Dump { degraded_ok: true }).unwrap();
    assert!(
        matches!(&resp.body, ResponseBody::DumpResult { .. }),
        "{resp:?}"
    );

    // Release one pin; a client that honors retry-after gets through.
    a.end().unwrap();
    let (resp, _retries) = c.request_retry(&Request::Begin, 50).unwrap();
    assert_eq!(resp.body, ResponseBody::SessionPinned);

    c.shutdown_server().unwrap();
    let summary = handle.join();
    assert!(summary.shed >= 1, "{summary}");
    assert_eq!(summary.worker_panics, 0, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite (miniature soak): concurrent reader clients race a writer
/// over the wire. Every response is consistent with exactly one
/// committed epoch — equal-epoch dumps hash identically, per-connection
/// epochs never regress — and the store fscks clean afterwards.
#[test]
fn concurrent_clients_observe_single_epoch_states() {
    let dir = scratch_dir("soak-mini");
    let handle = start(build_store(&dir), |_| {});
    let addr = handle.addr();

    let readers: Vec<_> = (0..3)
        .map(|r| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut last_epoch = 0u64;
                let mut dumps: Vec<(u64, u64)> = Vec::new();
                for _ in 0..15 {
                    let (resp, _) = c
                        .request_retry(&Request::Dump { degraded_ok: false }, 50)
                        .unwrap();
                    let ResponseBody::DumpResult { full, xml, .. } = &resp.body else {
                        panic!("reader {r}: {resp:?}");
                    };
                    assert!(full, "pinned-free reads must still be full reads");
                    assert!(
                        resp.epoch >= last_epoch,
                        "epoch regressed on one connection"
                    );
                    last_epoch = resp.epoch;
                    let mut h = DefaultHasher::new();
                    xml.hash(&mut h);
                    dumps.push((resp.epoch, h.finish()));

                    let (resp, _) = c
                        .request_retry(
                            &Request::Query {
                                xpath: "//e".to_string(),
                                count_only: true,
                            },
                            50,
                        )
                        .unwrap();
                    assert!(
                        matches!(&resp.body, ResponseBody::QueryResult { .. }),
                        "reader {r}: {resp:?}"
                    );
                }
                dumps
            })
        })
        .collect();

    let mut w = Client::connect(addr).unwrap();
    for i in 0..12 {
        let (resp, _) = w
            .request_retry(
                &Request::Update {
                    target: "/list".to_string(),
                    op: natix_server::UpdateOp::AppendText {
                        text: format!("soak payload number {i}"),
                    },
                },
                50,
            )
            .unwrap();
        assert_eq!(resp.body, ResponseBody::UpdateDone, "update {i}: {resp:?}");
    }

    // Exactly one document hash per committed epoch, across all clients.
    let mut by_epoch: HashMap<u64, u64> = HashMap::new();
    for t in readers {
        for (epoch, hash) in t.join().unwrap() {
            if let Some(prev) = by_epoch.insert(epoch, hash) {
                assert_eq!(
                    prev, hash,
                    "two clients saw different documents at epoch {epoch}"
                );
            }
        }
    }
    assert!(!by_epoch.is_empty());

    let (clean, report) = w.fsck().unwrap();
    assert!(clean, "{report}");
    w.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.worker_panics, 0, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Pull `{n} active` out of the stats text's snapshots line.
fn active_snapshots(stats: &str) -> u64 {
    let line = stats
        .lines()
        .find(|l| l.trim_start().starts_with("snapshots"))
        .expect("snapshots line");
    line.split(',')
        .nth(1)
        .and_then(|s| s.trim().split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("active count")
}

/// A session that goes idle past its lease TTL has its pin reaped: the
/// freed slot admits another client, the leaker's next request gets the
/// typed session-expired answer exactly once, and a fresh `begin` on the
/// same connection recovers it.
#[test]
fn expired_lease_frees_the_pin_and_answers_typed() {
    let dir = scratch_dir("lease");
    let handle = start(build_store(&dir), |c| {
        c.max_pins = 1;
        c.lease_ttl_ms = 200;
    });

    let mut leaker = Client::connect(handle.addr()).unwrap();
    leaker.begin().unwrap();

    // The only pin slot is held: a second session sheds.
    let mut other = Client::connect(handle.addr()).unwrap();
    let resp = other.request(&Request::Begin).unwrap();
    assert!(
        matches!(&resp.body, ResponseBody::RetryAfter { .. }),
        "{resp:?}"
    );

    // Let the lease lapse (TTL + reaper ticks), then the slot is free.
    std::thread::sleep(std::time::Duration::from_millis(450));
    other.begin().unwrap();
    other.end().unwrap();

    // The leaker is told once, typed; afterwards the connection works
    // normally and can re-pin.
    match leaker.query("//e") {
        Err(natix_server::ClientError::SessionExpired) => {}
        other => panic!("expected the typed session-expired answer, got {other:?}"),
    }
    let (_, count, _) = leaker.query("//e").unwrap();
    assert_eq!(count, 3, "connection must keep working after the notice");
    leaker.begin().unwrap();
    leaker.end().unwrap();

    leaker.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.lease_expirations, 1, "{summary}");
    assert_eq!(summary.worker_panics, 0, "{summary}");
    assert_eq!(summary.proto_errors, 0, "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: shutdown racing an expired lease. The reaper releases the
/// overdue pin; the shutdown drain must not release it a second time —
/// pin accounting stays exact (no underflow in the active-snapshot
/// gauge), the drain completes, and the store scrubs clean afterwards.
#[test]
fn shutdown_does_not_double_release_a_reaped_pin() {
    let dir = scratch_dir("lease-race");
    let store = build_store(&dir);
    let handle = start(store.clone(), |c| {
        c.lease_ttl_ms = 150;
    });

    let mut leaker = Client::connect(handle.addr()).unwrap();
    leaker.begin().unwrap();
    // Reaped while idle.
    std::thread::sleep(std::time::Duration::from_millis(350));

    // A store-touching request processes the reaper's deferred release;
    // the gauge must come back to a sane small number (an over-release
    // would underflow it) and no session may still be pinned.
    let mut probe = Client::connect(handle.addr()).unwrap();
    probe.begin().unwrap();
    probe.end().unwrap();
    let stats = probe.stats().unwrap();
    assert!(stats.contains("0 session-pinned"), "{stats}");
    assert!(active_snapshots(&stats) <= 1, "{stats}");

    // Shutdown immediately after: the drain clears a session table that
    // no longer holds the reaped pin.
    probe.shutdown_server().unwrap();
    let summary = handle.join();
    assert_eq!(summary.lease_expirations, 1, "{summary}");
    assert_eq!(summary.worker_panics, 0, "{summary}");

    // The drain's deferred maintenance ran on exact pin accounting: the
    // store file reopens and scrubs clean.
    let mut pager = FilePager::open(&store).unwrap();
    let report = natix_store::fsck(&mut pager, false);
    assert!(report.clean(), "{report}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `serve` reports store-open failures as errors instead of panicking
/// or leaking threads.
#[test]
fn serve_reports_missing_store() {
    let dir = scratch_dir("missing");
    let config = ServeConfig {
        store: dir.join("nope.natix"),
        ..ServeConfig::default()
    };
    match serve(config) {
        Err(natix_server::ServeError::Store(_)) => {}
        other => panic!("expected store error, got {:?}", other.map(|h| h.addr())),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
