//! **Store speed**: buffer-pool behavior under memory pressure and group
//! commit throughput.
//!
//! ```text
//! cargo run -p natix-bench --release --bin store_speed [--scale 0.05] [--k 256]
//! cargo run -p natix-bench --release --bin store_speed -- --quick   # CI smoke
//! ```
//!
//! Phase A bulkloads an XMark document whose page set exceeds the pool
//! budget, then reopens it at several pool sizes (an eighth, a quarter,
//! half, and all of the store's pages) and runs a full preorder
//! navigation plus a serialization dump at each size, reporting hit
//! rate, evictions, and per-node navigation latency. The dump at the
//! quarter-size pool must be byte-identical to the dump at the full-size
//! pool: bounded memory must not change what the store returns.
//!
//! Phase B drives the concurrent writer's group commit
//! ([`natix_store::WriteGuard::mutate_batch`]) with the same op stream
//! at batch sizes 1, 2, 4, 8, and 16, reporting acked ops/s and header
//! flips per op: batching N ops amortizes the journal write + header
//! flip + checkpoint over N acks.
//!
//! Results go to `BENCH_store.json` (override with `--json`). `--quick`
//! is the CI smoke tier wired into `scripts/ci.sh`: tiny scale, one
//! timed run, and deterministic gates (byte-identical dump under the
//! out-of-budget pool, nonzero evictions, monotone miss counts, one
//! header flip per batch, every op acked, and a clean `fsck` after the
//! eviction and group-commit runs). Wall-clock ratios are recorded in
//! the JSON but only gated deterministically, via flip counts.

use std::time::Instant;

use natix_bench::json_row;
use natix_bench::{
    fmt_duration, natix_core, natix_datagen, natix_store, write_json_to, Args, Table,
};
use natix_core::Ekm;
use natix_datagen::GenConfig;
use natix_store::{
    bulkload_with, fsck, AdmissionConfig, BatchOp, FilePager, SharedMemPager, SharedStore,
    StoreConfig, StoreResult, XmlStore,
};
use natix_xml::NodeKind;

json_row! {
    struct PoolResult {
        pool_pages: usize,
        budget_fraction: f64,
        nav_ns_per_node: f64,
        nav_s: f64,
        dump_s: f64,
        hits: u64,
        misses: u64,
        hit_rate: f64,
        evictions: u64,
        evicted_dirty: u64,
        readaheads: u64,
        dump_identical_to_full: bool,
    }
}

json_row! {
    struct BatchResult {
        batch_size: usize,
        ops: usize,
        elapsed_s: f64,
        ops_per_s: f64,
        speedup_vs_unbatched: f64,
        group_commits: u64,
        flips_per_op: f64,
    }
}

json_row! {
    struct Results {
        k: u64,
        scale: f64,
        seed: u64,
        quick: bool,
        document: String,
        nodes: usize,
        total_pages: usize,
        pools: Vec<PoolResult>,
        commit_ops: usize,
        batches: Vec<BatchResult>,
    }
}

/// Visit every node once (preorder via explicit stack), counting nodes.
fn navigate_all(store: &mut XmlStore) -> StoreResult<u64> {
    let mut count = 0u64;
    let mut stack = vec![store.root()?];
    while let Some(r) = stack.pop() {
        count += 1;
        if let Some(sib) = store.next_sibling(r)? {
            stack.push(sib);
        }
        if let Some(c) = store.first_child(r)? {
            stack.push(c);
        }
    }
    Ok(count)
}

/// Phase A: reopen the bulkloaded store at `pool_pages` and measure a
/// full navigation and a full dump.
fn bench_pool(
    disk: &SharedMemPager,
    config: StoreConfig,
    pool_pages: usize,
    total_pages: usize,
) -> (PoolResult, String) {
    let config = StoreConfig {
        buffer_pages: pool_pages,
        ..config
    };
    let mut store =
        XmlStore::open(Box::new(disk.clone()), config).expect("reopen under pool budget");
    let nav_start = Instant::now();
    let nodes = navigate_all(&mut store).expect("navigation under pool budget");
    let nav = nav_start.elapsed();
    let dump_start = Instant::now();
    let xml = store
        .to_document()
        .expect("dump under pool budget")
        .to_xml();
    let dump = dump_start.elapsed();
    let stats = store.buffer_stats();
    let looked_up = stats.hits + stats.misses;
    (
        PoolResult {
            pool_pages,
            budget_fraction: pool_pages as f64 / total_pages as f64,
            nav_ns_per_node: nav.as_secs_f64() * 1e9 / nodes.max(1) as f64,
            nav_s: nav.as_secs_f64(),
            dump_s: dump.as_secs_f64(),
            hits: stats.hits,
            misses: stats.misses,
            hit_rate: stats.hits as f64 / looked_up.max(1) as f64,
            evictions: stats.evictions,
            evicted_dirty: stats.evicted_dirty,
            readaheads: stats.readaheads,
            dump_identical_to_full: false, // filled in by the caller
        },
        xml,
    )
}

/// Phase B: replay `ops` root-append operations through the concurrent
/// writer in batches of `batch_size`, over a freshly bulkloaded *page
/// file* — group commit amortizes real per-commit I/O (catalog append,
/// journal write, header flip, checkpoint), so the backend must charge
/// for it.
fn bench_batch(
    doc: &natix_xml::Document,
    k: u64,
    config: StoreConfig,
    ops: usize,
    batch_size: usize,
    runs: usize,
) -> BatchResult {
    let mut best: Option<BatchResult> = None;
    for _ in 0..runs.max(1) {
        let r = bench_batch_once(doc, k, config, ops, batch_size);
        if best.as_ref().is_none_or(|b| r.elapsed_s < b.elapsed_s) {
            best = Some(r);
        }
    }
    best.expect("at least one run")
}

/// One replay: fresh page file, fresh store, `ops` appends.
fn bench_batch_once(
    doc: &natix_xml::Document,
    k: u64,
    config: StoreConfig,
    ops: usize,
    batch_size: usize,
) -> BatchResult {
    let path = std::env::temp_dir().join(format!(
        "natix_store_speed_{}_{batch_size}.pages",
        std::process::id()
    ));
    let backend = FilePager::create(&path).expect("create bench page file");
    drop(bulkload_with(doc, &Ekm, k, Box::new(backend), config).expect("bulkload onto file"));
    let shared = SharedStore::open(
        Box::new(FilePager::open(&path).expect("reopen bench page file")),
        Box::new(path.clone()),
        config,
        AdmissionConfig::default(),
    )
    .expect("open for group commit");
    let mut guard = shared.begin_write().expect("writer slot");
    let start = Instant::now();
    let mut done = 0usize;
    while done < ops {
        let n = batch_size.min(ops - done);
        let batch: Vec<BatchOp<'_>> = (0..n)
            .map(|_| {
                Box::new(move |s: &mut XmlStore| {
                    let root = s.root()?;
                    s.append_child(root, NodeKind::Element, "item", None)?;
                    Ok(())
                }) as Box<dyn FnOnce(&mut XmlStore) -> StoreResult<()> + '_>
            })
            .collect();
        let acks = guard.mutate_batch(batch).expect("group commit");
        for a in &acks {
            a.as_ref().expect("every op acked");
        }
        done += n;
    }
    let elapsed = start.elapsed();
    drop(guard);
    let cstats = shared.stats();
    drop(shared);
    let mut reopened = FilePager::open(&path).expect("reopen for fsck");
    let report = fsck(&mut reopened, false);
    assert!(
        report.clean(),
        "fsck after group-commit run (batch={batch_size}):\n{report}"
    );
    drop(reopened);
    let _ = std::fs::remove_file(&path);
    BatchResult {
        batch_size,
        ops,
        elapsed_s: elapsed.as_secs_f64(),
        ops_per_s: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        speedup_vs_unbatched: 0.0, // filled in by the caller
        group_commits: cstats.group_commits,
        flips_per_op: cstats.group_commits as f64 / ops.max(1) as f64,
    }
}

fn main() {
    let mut args = Args::parse();
    let quick = args.quick;
    if quick {
        args.scale = args.scale.min(0.004);
    }
    // Root appends get progressively more expensive as the root record
    // chain grows, so a long run dilutes the commit-amortization signal;
    // 128 ops keeps the per-op cost roughly constant across the sweep.
    let commit_ops = if quick { 48 } else { 128 };

    let doc = natix_datagen::xmark(GenConfig {
        scale: args.scale,
        seed: args.seed.wrapping_add(6),
    });
    let config = StoreConfig {
        record_limit_slots: args.k,
        ..Default::default()
    };
    let disk = SharedMemPager::new();
    let store = bulkload_with(&doc, &Ekm, args.k, Box::new(disk.clone()), config)
        .expect("bulkload xmark document");
    let total_pages = store.page_count() as usize;
    let nodes = doc.tree().len();
    drop(store);

    // Pool sizes: out-of-budget eighth and quarter, half, and the whole
    // page set (full residency, the no-eviction baseline).
    let pool_sizes: Vec<usize> = {
        let mut v: Vec<usize> = [
            total_pages / 8,
            total_pages / 4,
            total_pages / 2,
            total_pages,
        ]
        .iter()
        .map(|&p| p.max(2))
        .collect();
        v.dedup();
        v
    };

    let mut results = Results {
        k: args.k,
        scale: args.scale,
        seed: args.seed,
        quick,
        document: "xmark".to_string(),
        nodes,
        total_pages,
        pools: Vec::new(),
        commit_ops,
        batches: Vec::new(),
    };

    // Phase A: navigation + dump under each pool budget.
    let (mut full_run, full_xml) = bench_pool(&disk, config, total_pages, total_pages);
    full_run.dump_identical_to_full = true;
    let mut pool_runs: Vec<PoolResult> = Vec::new();
    for &p in pool_sizes.iter().filter(|&&p| p != total_pages) {
        let (mut r, xml) = bench_pool(&disk, config, p, total_pages);
        r.dump_identical_to_full = xml == full_xml;
        pool_runs.push(r);
    }
    pool_runs.push(full_run);
    let scrub = fsck(&mut disk.clone(), false);
    assert!(scrub.clean(), "fsck after eviction runs:\n{scrub}");

    let mut table = Table::new(&[
        "pool",
        "budget",
        "hit-rate",
        "evict",
        "nav",
        "ns/node",
        "dump",
        "identical",
    ]);
    for r in &pool_runs {
        table.row(vec![
            format!("{}", r.pool_pages),
            format!("{:.0}%", r.budget_fraction * 100.0),
            format!("{:.1}%", r.hit_rate * 100.0),
            format!("{}", r.evictions),
            fmt_duration(std::time::Duration::from_secs_f64(r.nav_s)),
            format!("{:.0}", r.nav_ns_per_node),
            fmt_duration(std::time::Duration::from_secs_f64(r.dump_s)),
            format!("{}", r.dump_identical_to_full),
        ]);
    }
    println!(
        "Buffer pool (xmark scale {}, {} nodes, {} pages, K = {})\n",
        args.scale, nodes, total_pages, args.k
    );
    println!("{}", table.render());

    // Phase B: group commit throughput at increasing batch sizes.
    // Wall clocks in shared containers are noisy; keep the fastest of
    // several fresh replays per batch size (the counters are identical
    // across replays).
    let timing_runs = if quick { 1 } else { 5 };
    let mut batch_runs: Vec<BatchResult> = Vec::new();
    for &b in &[1usize, 2, 4, 8, 16] {
        batch_runs.push(bench_batch(
            &doc,
            args.k,
            config,
            commit_ops,
            b,
            timing_runs,
        ));
    }
    let unbatched = batch_runs[0].ops_per_s;
    for r in &mut batch_runs {
        r.speedup_vs_unbatched = r.ops_per_s / unbatched.max(1e-9);
    }
    let mut table = Table::new(&["batch", "ops/s", "speedup", "flips/op"]);
    for r in &batch_runs {
        table.row(vec![
            format!("{}", r.batch_size),
            format!("{:.0}", r.ops_per_s),
            format!("{:.2}x", r.speedup_vs_unbatched),
            format!("{:.3}", r.flips_per_op),
        ]);
    }
    println!(
        "Group commit ({} root appends through WriteGuard::mutate_batch)\n",
        commit_ops
    );
    println!("{}", table.render());
    println!(
        "One group commit = one journal write + one header flip covering the whole batch;\n\
         flips/op shows the amortization directly (1.000 unbatched, 1/N at batch N)."
    );

    results.pools = pool_runs;
    results.batches = batch_runs;

    if quick {
        let mut failures: Vec<String> = Vec::new();
        let quarter = results
            .pools
            .iter()
            .rfind(|r| r.budget_fraction <= 0.25 + 1e-9);
        match quarter {
            Some(q) => {
                if !q.dump_identical_to_full {
                    failures.push(format!(
                        "dump at pool {} differs from full-residency dump",
                        q.pool_pages
                    ));
                }
                if q.evictions == 0 {
                    failures.push(format!(
                        "pool {} of {} pages evicted nothing — pressure gate is dead",
                        q.pool_pages, results.total_pages
                    ));
                }
            }
            None => failures.push("no out-of-budget pool size was measured".into()),
        }
        for w in results.pools.windows(2) {
            if w[0].misses < w[1].misses {
                failures.push(format!(
                    "misses increased with pool size ({} @ {} pages vs {} @ {} pages)",
                    w[0].misses, w[0].pool_pages, w[1].misses, w[1].pool_pages
                ));
            }
        }
        for r in &results.batches {
            let expected_flips = results.commit_ops.div_ceil(r.batch_size) as u64;
            if r.group_commits != expected_flips {
                failures.push(format!(
                    "batch {}: {} header flips, expected {}",
                    r.batch_size, r.group_commits, expected_flips
                ));
            }
        }
        if let Some(path) = &args.json {
            write_json_to(path, &results);
        }
        if failures.is_empty() {
            println!("\n--quick gates: all passed");
        } else {
            eprintln!("\n--quick gates FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    } else {
        let path = args
            .json
            .clone()
            .unwrap_or_else(|| "BENCH_store.json".into());
        write_json_to(&path, &results);
    }
}
