//! **Table 2**: CPU time of each partitioning algorithm on each evaluation
//! document.
//!
//! ```text
//! cargo run -p natix-bench --release --bin table2 [--scale 0.05 | --paper]
//! ```
//!
//! Absolute times differ from the paper's 2.4 GHz Pentium IV, but the
//! *ordering* must hold: DHW ≫ GHDW ≫ KM > BFS > EKM ≈ RS ≈ DFS, with EKM
//! orders of magnitude faster than DHW at near-optimal quality.

use natix_bench::{
    fmt_duration, natix_core, natix_datagen, time, write_json, Args, Table,
};
use natix_core::evaluation_algorithms;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    document: String,
    nodes: usize,
    seconds: Vec<(String, f64)>,
}

fn main() {
    let args = Args::parse();
    let algorithms = evaluation_algorithms();
    let mut headers = vec!["Document"];
    for a in &algorithms {
        if args.skip_dhw && a.name() == "DHW" {
            continue;
        }
        headers.push(a.name());
    }
    let mut table = Table::new(&headers);
    let mut results = Vec::new();

    for (name, doc) in natix_datagen::evaluation_suite(args.scale, args.seed) {
        let tree = doc.tree();
        let mut cells = vec![name.to_string()];
        let mut seconds = Vec::new();
        for alg in &algorithms {
            if args.skip_dhw && alg.name() == "DHW" {
                continue;
            }
            let (res, dur) = time(|| alg.partition(tree, args.k));
            res.unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
            cells.push(fmt_duration(dur));
            seconds.push((alg.name().to_string(), dur.as_secs_f64()));
            eprintln!("{name}: {} in {}", alg.name(), fmt_duration(dur));
        }
        table.row(cells);
        results.push(Row {
            document: name.to_string(),
            nodes: tree.len(),
            seconds,
        });
    }

    println!(
        "Table 2: Partitioning CPU time (K = {}, scale = {})\n",
        args.k, args.scale
    );
    println!("{}", table.render());
    write_json(&args, &results);
}
