//! **Table 2**: CPU time of each partitioning algorithm on each evaluation
//! document.
//!
//! ```text
//! cargo run -p natix-bench --release --bin table2 [--scale 0.05 | --paper] [--threads N]
//! ```
//!
//! Absolute times differ from the paper's 2.4 GHz Pentium IV, but the
//! *ordering* must hold: DHW ≫ GHDW ≫ KM > BFS > EKM ≈ RS ≈ DFS, with EKM
//! orders of magnitude faster than DHW at near-optimal quality.
//!
//! `--threads` spreads the *documents* over scoped workers; within one
//! document the algorithms are still timed back to back so measurements of
//! the same document never interleave. Pass `--threads 1` for the cleanest
//! numbers on a busy machine.

use std::sync::atomic::{AtomicUsize, Ordering};

use natix_bench::json_row;
use natix_bench::{fmt_duration, natix_core, natix_datagen, time, write_json, Args, Table};
use natix_core::evaluation_algorithms;

json_row! {
    struct Row {
        document: String,
        nodes: usize,
        seconds: Vec<(String, f64)>,
    }
}

fn main() {
    let args = Args::parse();
    let algorithms = evaluation_algorithms();
    let kept: Vec<usize> = algorithms
        .iter()
        .enumerate()
        .filter(|(_, a)| !(args.skip_dhw && a.name() == "DHW"))
        .map(|(i, _)| i)
        .collect();
    let mut headers = vec!["Document"];
    for &a in &kept {
        headers.push(algorithms[a].name());
    }
    let mut table = Table::new(&headers);

    let suite = natix_datagen::evaluation_suite(args.scale, args.seed);

    // One work item per document; each worker times that document's whole
    // algorithm column sequentially (boxed partitioners are not `Sync`, so
    // every worker builds its own zero-sized algorithm set).
    let next = AtomicUsize::new(0);
    let workers = args.threads.min(suite.len()).max(1);
    let batches: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let algs = evaluation_algorithms();
                    let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
                    loop {
                        let d = next.fetch_add(1, Ordering::Relaxed);
                        if d >= suite.len() {
                            break;
                        }
                        let (name, doc) = &suite[d];
                        let tree = doc.tree();
                        let mut secs = Vec::with_capacity(kept.len());
                        for &a in &kept {
                            let alg = &algs[a];
                            let (res, dur) = time(|| alg.partition(tree, args.k));
                            res.unwrap_or_else(|e| panic!("{} on {name}: {e}", alg.name()));
                            secs.push(dur.as_secs_f64());
                            eprintln!("{name}: {} in {}", alg.name(), fmt_duration(dur));
                        }
                        out.push((d, secs));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("table2 worker panicked"))
            .collect()
    });
    let mut grid: Vec<Option<Vec<f64>>> = vec![None; suite.len()];
    for batch in batches {
        for (d, secs) in batch {
            grid[d] = Some(secs);
        }
    }

    let mut results = Vec::new();
    for (d, (name, doc)) in suite.iter().enumerate() {
        let secs = grid[d].take().expect("document timed");
        let mut cells = vec![name.to_string()];
        let mut seconds = Vec::new();
        for (i, &a) in kept.iter().enumerate() {
            cells.push(fmt_duration(std::time::Duration::from_secs_f64(secs[i])));
            seconds.push((algorithms[a].name().to_string(), secs[i]));
        }
        table.row(cells);
        results.push(Row {
            document: name.to_string(),
            nodes: doc.tree().len(),
            seconds,
        });
    }

    println!(
        "Table 2: Partitioning CPU time (K = {}, scale = {}, threads = {})\n",
        args.k, args.scale, workers
    );
    println!("{}", table.render());
    write_json(&args, &results);
}
