//! **DP engine speed**: flat-arena vs the pre-arena `HashMap` baseline, and
//! sequential vs parallel table construction at 1/2/4/8 worker threads.
//!
//! ```text
//! cargo run -p natix-bench --release --bin dp_speed [--scale 0.05] [--k 256]
//! ```
//!
//! Measures DHW and GHDW on the two structural regimes of the evaluation
//! suite — the nested `xmark` document and the flat-relational `partsupp`
//! document — reporting:
//!
//! * the `HashMap<s, Vec<Entry>>`-per-node baseline
//!   ([`natix_core::baseline`]) versus the arena engine at one thread
//!   (the memory-layout win, independent of core count), and
//! * [`natix_core::ParallelDhw`] / [`ParallelGhdw`] at 1, 2, 4 and 8
//!   threads (the scheduler win, which needs real cores to show up).
//!
//! Every parallel run is checked interval-for-interval against the
//! sequential partitioning before its time is reported. Results go to
//! `BENCH_dp.json` (override with `--json`); `available_parallelism` is
//! recorded so a 1-CPU container's flat scaling curve is self-explaining.

use std::time::Duration;

use natix_bench::json_row;
use natix_bench::{
    default_threads, fmt_duration, median_time, natix_core, natix_datagen, natix_tree,
    write_json_to, Args, Table,
};
use natix_core::{baseline, ParallelDhw, ParallelGhdw, Partitioner};
use natix_datagen::GenConfig;
use natix_tree::{Partitioning, Tree, Weight};

json_row! {
    struct AlgoResult {
        algorithm: String,
        hashmap_baseline_s: f64,
        arena_1thread_s: f64,
        arena_speedup_vs_hashmap: f64,
        threads: Vec<(String, f64)>,
        speedup_4threads_vs_1: f64,
        parallel_identical_to_sequential: bool,
    }
}

json_row! {
    struct DocResult {
        document: String,
        nodes: usize,
        total_weight: u64,
        algorithms: Vec<AlgoResult>,
    }
}

json_row! {
    struct Results {
        k: u64,
        scale: f64,
        seed: u64,
        available_parallelism: usize,
        timing_runs: usize,
        documents: Vec<DocResult>,
    }
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

fn bench_algorithm(
    table: &mut Table,
    doc_name: &str,
    tree: &Tree,
    k: Weight,
    name: &str,
) -> AlgoResult {
    let is_dhw = name == "DHW";
    let run_hashmap = |t: &Tree| -> Partitioning {
        if is_dhw {
            baseline::dhw_hashmap(t, k).expect("feasible")
        } else {
            baseline::ghdw_hashmap(t, k).expect("feasible")
        }
    };
    let run_parallel = |t: &Tree, threads: usize| -> Partitioning {
        if is_dhw {
            ParallelDhw::new(threads).partition(t, k).expect("feasible")
        } else {
            ParallelGhdw::new(threads)
                .partition(t, k)
                .expect("feasible")
        }
    };

    let hashmap_d = median_time(RUNS, || {
        std::hint::black_box(run_hashmap(tree));
    });
    let arena_d = median_time(RUNS, || {
        std::hint::black_box(run_parallel(tree, 1));
    });
    let reference = run_parallel(tree, 1);

    let mut identical = true;
    let mut threads_s: Vec<(String, f64)> = Vec::new();
    let mut by_threads: Vec<(usize, Duration)> = Vec::new();
    for &t in &THREAD_COUNTS {
        let p = run_parallel(tree, t);
        identical &= p.intervals == reference.intervals;
        let d = median_time(RUNS, || {
            std::hint::black_box(run_parallel(tree, t));
        });
        by_threads.push((t, d));
        threads_s.push((format!("{t}"), d.as_secs_f64()));
        eprintln!("{doc_name}: {name} x{t} threads in {}", fmt_duration(d));
    }
    assert!(identical, "{name} parallel output diverged on {doc_name}");

    let one = by_threads[0].1.as_secs_f64();
    let four = by_threads
        .iter()
        .find(|(t, _)| *t == 4)
        .expect("4 is benchmarked")
        .1
        .as_secs_f64();
    let mut cells = vec![
        doc_name.to_string(),
        name.to_string(),
        fmt_duration(hashmap_d),
        fmt_duration(arena_d),
        format!("{:.2}x", hashmap_d.as_secs_f64() / arena_d.as_secs_f64()),
    ];
    cells.extend(by_threads.iter().map(|(_, d)| fmt_duration(*d)));
    cells.push(format!("{:.2}x", one / four));
    table.row(cells);

    AlgoResult {
        algorithm: name.to_string(),
        hashmap_baseline_s: hashmap_d.as_secs_f64(),
        arena_1thread_s: arena_d.as_secs_f64(),
        arena_speedup_vs_hashmap: hashmap_d.as_secs_f64() / arena_d.as_secs_f64(),
        threads: threads_s,
        speedup_4threads_vs_1: one / four,
        parallel_identical_to_sequential: identical,
    }
}

fn main() {
    let args = Args::parse();
    let cores = default_threads();
    let docs = [
        (
            "xmark0p1.xml",
            natix_datagen::xmark(GenConfig {
                scale: args.scale,
                seed: args.seed.wrapping_add(6),
            }),
        ),
        (
            "partsupp.xml",
            natix_datagen::partsupp(GenConfig {
                scale: args.scale,
                seed: args.seed.wrapping_add(3),
            }),
        ),
    ];

    let mut table = Table::new(&[
        "Document", "Algo", "hashmap", "arena", "layout", "1t", "2t", "4t", "8t", "4t/1t",
    ]);
    let mut results = Results {
        k: args.k,
        scale: args.scale,
        seed: args.seed,
        available_parallelism: cores,
        timing_runs: RUNS,
        documents: Vec::new(),
    };
    for (name, doc) in &docs {
        let tree = doc.tree();
        let mut algorithms = Vec::new();
        for alg in ["DHW", "GHDW"] {
            algorithms.push(bench_algorithm(&mut table, name, tree, args.k, alg));
        }
        results.documents.push(DocResult {
            document: name.to_string(),
            nodes: tree.len(),
            total_weight: doc.total_weight(),
            algorithms,
        });
    }

    println!(
        "DP engine speed (K = {}, scale = {}, median of {} runs, {} core(s) available)\n",
        args.k, args.scale, RUNS, cores
    );
    println!("{}", table.render());
    println!(
        "layout = hashmap-baseline time / arena time at 1 thread; 4t/1t = parallel speedup.\n\
         Thread scaling is bounded by available_parallelism = {cores}; on a single-core\n\
         machine the parallel engine degrades gracefully to sequential speed."
    );
    let path = args.json.clone().unwrap_or_else(|| "BENCH_dp.json".into());
    write_json_to(&path, &results);
}
