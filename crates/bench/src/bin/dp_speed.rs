//! **DP engine speed**: pre-arena `HashMap` baseline vs the flat-arena
//! engine vs the structure-sharing engine (hash-consed subtree DAG +
//! dominance pruning), plus parallel table construction.
//!
//! ```text
//! cargo run -p natix-bench --release --bin dp_speed [--scale 0.05] [--k 256]
//! cargo run -p natix-bench --release --bin dp_speed -- --quick   # CI smoke
//! ```
//!
//! Measures DHW and GHDW on the two structural regimes of the evaluation
//! suite — the nested `xmark` document and the flat-relational `partsupp`
//! document — reporting:
//!
//! * the `HashMap<s, Vec<Entry>>`-per-node baseline
//!   ([`natix_core::baseline`]) versus the plain arena engine at one
//!   thread (the memory-layout win),
//! * the arena engine versus the DAG-cached engine at one thread (the
//!   structure-sharing + dominance-pruning win; see `natix_core::dag`),
//!   with distinct-shape counts, dedup ratios, hit rates and pruning
//!   counters, and
//! * [`natix_core::ParallelDhw`] / [`ParallelGhdw`] across a thread sweep
//!   **derived from `available_parallelism`** (powers of two up to the
//!   core count; oversubscribed counts are skipped and recorded in the
//!   JSON, so a 1-CPU container no longer reports meaningless 8-thread
//!   rows).
//!
//! Every cached and parallel run is checked interval-for-interval against
//! the plain sequential partitioning before its time is reported. Results
//! go to `BENCH_dp.json` (override with `--json`).
//!
//! `--quick` is the CI smoke mode wired into `scripts/ci.sh`: tiny scale,
//! one timed run, and deterministic regression gates (cached output must
//! equal uncached everywhere; relational data must dedup and prune; the
//! cached engine must compute strictly fewer DP cells than the uncached
//! one). It exits nonzero on any violation and only writes JSON when
//! `--json` is given explicitly.

use std::time::Duration;

use natix_bench::json_row;
use natix_bench::{
    default_threads, fmt_duration, median_time, natix_core, natix_datagen, natix_tree,
    write_json_to, Args, Table,
};
use natix_core::{
    baseline, dhw_cached_with_statistics, dhw_with_statistics, CachedDhw, CachedGhdw, DpStats,
    ParallelDhw, ParallelGhdw, Partitioner,
};
use natix_datagen::GenConfig;
use natix_tree::{Partitioning, Tree, Weight};

json_row! {
    struct AlgoResult {
        algorithm: String,
        hashmap_baseline_s: f64,
        uncached_1thread_s: f64,
        cached_1thread_s: f64,
        arena_speedup_vs_hashmap: f64,
        cached_speedup_vs_uncached: f64,
        threads: Vec<(String, f64)>,
        parallel_speedup_max_vs_1: f64,
        parallel_identical_to_sequential: bool,
        cached_identical_to_uncached: bool,
        dag_distinct: u64,
        dag_dedup_ratio: f64,
        dag_hit_rate: f64,
        pruned_candidates: u64,
        pruned_scans: u64,
    }
}

json_row! {
    struct DocResult {
        document: String,
        nodes: usize,
        total_weight: u64,
        algorithms: Vec<AlgoResult>,
    }
}

json_row! {
    struct Results {
        k: u64,
        scale: f64,
        seed: u64,
        quick: bool,
        available_parallelism: usize,
        thread_counts: Vec<usize>,
        skipped_oversubscribed: Vec<usize>,
        timing_runs: usize,
        documents: Vec<DocResult>,
    }
}

/// Candidate sweep; counts exceeding `available_parallelism` are skipped
/// (oversubscription measures scheduler noise, not the engine).
const CANDIDATE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Thread counts actually benchmarked: the powers of two up to the core
/// count, plus the core count itself when it is not a power of two.
fn thread_sweep(cores: usize) -> (Vec<usize>, Vec<usize>) {
    let mut keep: Vec<usize> = CANDIDATE_THREADS
        .iter()
        .copied()
        .filter(|&t| t <= cores)
        .collect();
    if !keep.contains(&cores) {
        keep.push(cores);
    }
    let skipped = CANDIDATE_THREADS
        .iter()
        .copied()
        .filter(|&t| t > cores)
        .collect();
    (keep, skipped)
}

struct BenchCtx<'a> {
    k: Weight,
    runs: usize,
    sweep: &'a [usize],
}

fn bench_algorithm(
    ctx: &BenchCtx<'_>,
    table: &mut Table,
    doc_name: &str,
    tree: &Tree,
    name: &str,
) -> AlgoResult {
    let k = ctx.k;
    let is_dhw = name == "DHW";
    let run_hashmap = |t: &Tree| -> Partitioning {
        if is_dhw {
            baseline::dhw_hashmap(t, k).expect("feasible")
        } else {
            baseline::ghdw_hashmap(t, k).expect("feasible")
        }
    };
    let run_uncached = |t: &Tree, threads: usize| -> Partitioning {
        if is_dhw {
            ParallelDhw::without_dag_cache(threads)
                .partition(t, k)
                .expect("feasible")
        } else {
            ParallelGhdw::without_dag_cache(threads)
                .partition(t, k)
                .expect("feasible")
        }
    };
    let run_cached = |t: &Tree, threads: usize| -> Partitioning {
        if threads == 1 {
            if is_dhw {
                CachedDhw.partition(t, k).expect("feasible")
            } else {
                CachedGhdw.partition(t, k).expect("feasible")
            }
        } else if is_dhw {
            ParallelDhw::new(threads).partition(t, k).expect("feasible")
        } else {
            ParallelGhdw::new(threads)
                .partition(t, k)
                .expect("feasible")
        }
    };

    let hashmap_d = median_time(ctx.runs, || {
        std::hint::black_box(run_hashmap(tree));
    });
    let uncached_d = median_time(ctx.runs, || {
        std::hint::black_box(run_uncached(tree, 1));
    });
    let cached_d = median_time(ctx.runs, || {
        std::hint::black_box(run_cached(tree, 1));
    });
    let reference = run_uncached(tree, 1);
    let cached_identical = run_cached(tree, 1).intervals == reference.intervals;

    let stats = if is_dhw {
        dhw_cached_with_statistics(tree, k).expect("feasible").1
    } else {
        natix_core::ghdw_cached_with_statistics(tree, k)
            .expect("feasible")
            .1
    };

    let mut identical = cached_identical;
    let mut threads_s: Vec<(String, f64)> = Vec::new();
    let mut by_threads: Vec<(usize, Duration)> = Vec::new();
    for &t in ctx.sweep {
        let p = run_cached(tree, t);
        identical &= p.intervals == reference.intervals;
        let d = median_time(ctx.runs, || {
            std::hint::black_box(run_cached(tree, t));
        });
        by_threads.push((t, d));
        threads_s.push((format!("{t}"), d.as_secs_f64()));
        eprintln!("{doc_name}: {name} x{t} threads in {}", fmt_duration(d));
    }
    assert!(identical, "{name} output diverged on {doc_name}");

    let one = by_threads[0].1.as_secs_f64();
    let max_t = by_threads.last().expect("sweep nonempty").1.as_secs_f64();
    let mut cells = vec![
        doc_name.to_string(),
        name.to_string(),
        fmt_duration(hashmap_d),
        fmt_duration(uncached_d),
        fmt_duration(cached_d),
        format!(
            "{:.2}x",
            uncached_d.as_secs_f64() / cached_d.as_secs_f64().max(1e-9)
        ),
        format!("{:.1}x", stats.dag_dedup_ratio()),
        format!("{:.0}%", stats.dag_hit_rate() * 100.0),
        format!("{}", stats.pruned_candidates),
    ];
    cells.extend(by_threads.iter().map(|(_, d)| fmt_duration(*d)));
    cells.push(format!("{:.2}x", one / max_t.max(1e-9)));
    table.row(cells);

    AlgoResult {
        algorithm: name.to_string(),
        hashmap_baseline_s: hashmap_d.as_secs_f64(),
        uncached_1thread_s: uncached_d.as_secs_f64(),
        cached_1thread_s: cached_d.as_secs_f64(),
        arena_speedup_vs_hashmap: hashmap_d.as_secs_f64() / uncached_d.as_secs_f64().max(1e-9),
        cached_speedup_vs_uncached: uncached_d.as_secs_f64() / cached_d.as_secs_f64().max(1e-9),
        threads: threads_s,
        parallel_speedup_max_vs_1: one / max_t.max(1e-9),
        parallel_identical_to_sequential: identical,
        cached_identical_to_uncached: cached_identical,
        dag_distinct: stats.dag_distinct,
        dag_dedup_ratio: stats.dag_dedup_ratio(),
        dag_hit_rate: stats.dag_hit_rate(),
        pruned_candidates: stats.pruned_candidates,
        pruned_scans: stats.pruned_scans,
    }
}

/// Deterministic `--quick` regression gates; wall clocks are noisy in CI,
/// so the perf gate compares DP *cell counts*, which are exact.
fn quick_gates(results: &Results, dhw_work: &[(String, DpStats, DpStats)]) -> Vec<String> {
    let mut failures = Vec::new();
    for doc in &results.documents {
        for alg in &doc.algorithms {
            if !alg.cached_identical_to_uncached {
                failures.push(format!(
                    "{}/{}: cached output differs from uncached",
                    doc.document, alg.algorithm
                ));
            }
            if !alg.parallel_identical_to_sequential {
                failures.push(format!(
                    "{}/{}: parallel output differs from sequential",
                    doc.document, alg.algorithm
                ));
            }
        }
        // Relational data must actually share structure and prune.
        if doc.document == "partsupp.xml" {
            for alg in &doc.algorithms {
                if alg.dag_dedup_ratio < 2.0 {
                    failures.push(format!(
                        "{}/{}: dedup ratio {:.2} < 2.0 — structure sharing regressed",
                        doc.document, alg.algorithm, alg.dag_dedup_ratio
                    ));
                }
                if alg.algorithm == "DHW" && alg.pruned_candidates == 0 {
                    failures.push(format!(
                        "{}/DHW: dominance pruning eliminated no candidates",
                        doc.document
                    ));
                }
            }
        }
    }
    // The cached DHW engine must compute strictly fewer table cells than
    // the uncached one wherever the document shares any structure.
    for (docname, uncached, cached) in dhw_work {
        if cached.dag_distinct < cached.dag_nodes && cached.total_entries >= uncached.total_entries
        {
            failures.push(format!(
                "{docname}: cached DHW computed {} cells, uncached {} — caching regressed",
                cached.total_entries, uncached.total_entries
            ));
        }
    }
    failures
}

fn main() {
    let mut args = Args::parse();
    let quick = args.quick;
    if quick {
        args.scale = args.scale.min(0.02);
    }
    let runs = if quick { 1 } else { 3 };
    let cores = default_threads();
    let (sweep, skipped) = thread_sweep(cores);
    let docs = [
        (
            "xmark0p1.xml",
            natix_datagen::xmark(GenConfig {
                scale: args.scale,
                seed: args.seed.wrapping_add(6),
            }),
        ),
        (
            "partsupp.xml",
            natix_datagen::partsupp(GenConfig {
                scale: args.scale,
                seed: args.seed.wrapping_add(3),
            }),
        ),
    ];

    let mut headers: Vec<String> = [
        "Document", "Algo", "hashmap", "uncached", "cached", "cache-x", "dedup", "hit", "pruned",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    headers.extend(sweep.iter().map(|t| format!("{t}t")));
    headers.push(format!("{}t/1t", sweep.last().unwrap()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut results = Results {
        k: args.k,
        scale: args.scale,
        seed: args.seed,
        quick,
        available_parallelism: cores,
        thread_counts: sweep.clone(),
        skipped_oversubscribed: skipped,
        timing_runs: runs,
        documents: Vec::new(),
    };
    let ctx = BenchCtx {
        k: args.k,
        runs,
        sweep: &sweep,
    };
    let mut dhw_work: Vec<(String, DpStats, DpStats)> = Vec::new();
    for (name, doc) in &docs {
        let tree = doc.tree();
        let mut algorithms = Vec::new();
        for alg in ["DHW", "GHDW"] {
            algorithms.push(bench_algorithm(&ctx, &mut table, name, tree, alg));
        }
        if quick {
            let (_, unc) = dhw_with_statistics(tree, args.k).expect("feasible");
            let (_, cac) = dhw_cached_with_statistics(tree, args.k).expect("feasible");
            dhw_work.push((name.to_string(), unc, cac));
        }
        results.documents.push(DocResult {
            document: name.to_string(),
            nodes: tree.len(),
            total_weight: doc.total_weight(),
            algorithms,
        });
    }

    println!(
        "DP engine speed (K = {}, scale = {}, median of {} run(s), {} core(s) available)\n",
        args.k, args.scale, runs, cores
    );
    println!("{}", table.render());
    println!(
        "uncached = flat-arena engine (--no-dag-cache); cached = structure-sharing engine\n\
         (hash-consed subtree DAG + dominance pruning); cache-x = uncached/cached at 1 thread.\n\
         dedup = nodes per distinct weighted subtree shape; hit = shape-cache hit rate;\n\
         pruned = interval candidates skipped by dominance pruning.\n\
         Thread sweep {:?} derived from available_parallelism = {} (skipped oversubscribed {:?});\n\
         on a single-core machine the parallel engine degrades gracefully to sequential speed.",
        sweep, cores, results.skipped_oversubscribed
    );
    if cores == 1 {
        eprintln!(
            "\nWARNING: available_parallelism is 1 — the thread sweep collapses to a single\n\
             point and every parallel-speedup column in this report measures scheduling\n\
             overhead, not scaling. Re-run on a multi-core machine (or a container with\n\
             more than one CPU) before citing these numbers."
        );
    }

    if quick {
        let failures = quick_gates(&results, &dhw_work);
        if let Some(path) = &args.json {
            write_json_to(path, &results);
        }
        if failures.is_empty() {
            println!("\n--quick gates: all passed");
        } else {
            eprintln!("\n--quick gates FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    } else {
        let path = args.json.clone().unwrap_or_else(|| "BENCH_dp.json".into());
        write_json_to(&path, &results);
    }
}
