//! **Table 3**: query processing time on KM vs EKM storage layouts, plus
//! total occupied disk space.
//!
//! ```text
//! cargo run -p natix-bench --release --bin table3 [--scale 0.05 | --paper]
//! ```
//!
//! Reproduces the paper's Sec. 6.4 methodology: load the XMark document
//! into the store once per algorithm, execute the XPathMark queries Q1-Q7
//! several times against a warm buffer pool (larger than the document),
//! and report the median. The claim to verify: the EKM (sibling) layout
//! beats the KM (parent-child-only) layout on every query, by up to ~2×.

use natix_bench::json_row;
use natix_bench::{
    median_time, natix_core, natix_datagen, natix_store, natix_xpath, write_json, Args, Table,
};
use natix_core::{Ekm, Km, Partitioner};
use natix_store::{MemPager, NavStats, StoreConfig, XmlStore};
use natix_xpath::{eval, parse, xpathmark, StoreNavigator};

json_row! {
    struct QueryRow {
        query: String,
        km_seconds: f64,
        ekm_seconds: f64,
        speedup: f64,
        km_switches: u64,
        ekm_switches: u64,
        result_count: usize,
    }
}

json_row! {
    struct Results {
        km_records: usize,
        ekm_records: usize,
        km_disk_bytes: u64,
        ekm_disk_bytes: u64,
        queries: Vec<QueryRow>,
    }
}

fn load(doc: &natix_xml::Document, alg: &dyn Partitioner, k: u64) -> XmlStore {
    let p = alg.partition(doc.tree(), k).expect("feasible");
    XmlStore::bulkload(doc, &p, Box::new(MemPager::new()), StoreConfig::default())
        .expect("bulkload")
}

fn main() {
    let args = Args::parse();
    eprintln!("generating XMark document (scale {}) ...", args.scale);
    let doc = natix_datagen::xmark(natix_datagen::GenConfig {
        scale: args.scale,
        seed: args.seed,
    });
    eprintln!(
        "document: {} nodes, {} slots",
        doc.len(),
        doc.total_weight()
    );

    eprintln!("bulkloading with KM and EKM (K = {}) ...", args.k);
    let mut km = load(&doc, &Km, args.k);
    let mut ekm = load(&doc, &Ekm, args.k);

    let mut table = Table::new(&["Query", "KM", "EKM", "speedup", "KM-xings", "EKM-xings"]);
    table.row(vec![
        "Total Occupied Disk Space".into(),
        format!("{}KB", km.occupied_bytes() / 1024),
        format!("{}KB", ekm.occupied_bytes() / 1024),
        String::new(),
        format!("{} recs", km.record_count()),
        format!("{} recs", ekm.record_count()),
    ]);

    let runs = 9;
    let mut rows = Vec::new();
    for (qname, qtext) in xpathmark::all() {
        let path = parse(qtext).expect("XPathMark query parses");
        let measure = |store: &mut XmlStore| -> (f64, NavStats, usize) {
            store.reset_nav_stats();
            // One counted run for crossings and result size.
            let count = {
                let mut nav = StoreNavigator::new(store);
                eval(&mut nav, &path).expect("eval").len()
            };
            let nav_stats = store.nav_stats();
            let d = median_time(runs, || {
                let mut nav = StoreNavigator::new(store);
                let r = eval(&mut nav, &path).expect("eval");
                std::hint::black_box(r.len());
            });
            (d.as_secs_f64(), nav_stats, count)
        };
        let (km_s, km_nav, km_count) = measure(&mut km);
        let (ekm_s, ekm_nav, ekm_count) = measure(&mut ekm);
        assert_eq!(
            km_count, ekm_count,
            "{qname}: layouts disagree on the result"
        );
        let speedup = km_s / ekm_s;
        table.row(vec![
            format!("{qname}: {qtext}"),
            format!("{:.4}s", km_s),
            format!("{:.4}s", ekm_s),
            format!("{speedup:.2}x"),
            km_nav.record_switches.to_string(),
            ekm_nav.record_switches.to_string(),
        ]);
        eprintln!("{qname}: KM {km_s:.4}s, EKM {ekm_s:.4}s ({speedup:.2}x), {km_count} results");
        rows.push(QueryRow {
            query: qtext.to_string(),
            km_seconds: km_s,
            ekm_seconds: ekm_s,
            speedup,
            km_switches: km_nav.record_switches,
            ekm_switches: ekm_nav.record_switches,
            result_count: km_count,
        });
    }

    println!(
        "Table 3: Query processing time, KM vs EKM layout (K = {}, scale = {})\n",
        args.k, args.scale
    );
    println!("{}", table.render());
    write_json(
        &args,
        &Results {
            km_records: km.record_count(),
            ekm_records: ekm.record_count(),
            km_disk_bytes: km.occupied_bytes(),
            ekm_disk_bytes: ekm.occupied_bytes(),
            queries: rows,
        },
    );
}
