//! **Ablation A3**: effectiveness of the DP-table memoization
//! (paper Sec. 3.3.6: "measurements for a 20 MB sample document and
//! K = 256 show that on average, less than 4 of the potential 256 values
//! for s actually occur for inner nodes").
//!
//! ```text
//! cargo run -p natix-bench --release --bin memoization [--scale 0.05]
//! ```
//!
//! Besides cell counts, the table reports the memory side of the arena
//! refactor (peak workspace bytes of the flat-arena engine versus the heap
//! bytes the old `HashMap<s, Vec<Entry>>`-per-node layout would allocate —
//! an undercount, see `natix_core::baseline::hashmap_bytes_estimate`) and
//! the structure-sharing layer of `natix_core::dag`: distinct weighted
//! subtree shapes (fingerprints), nodes-per-shape dedup ratio, shape-cache
//! hit rate, and the dominance-pruning counters. The cached run's output
//! is asserted identical to the uncached run on every generator.

use natix_bench::json_row;
use natix_bench::{natix_core, natix_datagen, write_json, Args, Table};
use natix_core::{baseline, dhw_cached_with_statistics, dhw_with_statistics};

json_row! {
    struct Row {
        document: String,
        inner_nodes: u64,
        avg_s_values: f64,
        max_s_values: usize,
        table_cells: u64,
        full_table_cells: u64,
        arena_cells: u64,
        arena_peak_bytes: u64,
        hashmap_bytes_estimate: u64,
        dag_distinct_fingerprints: u64,
        dag_dedup_ratio: f64,
        dag_hit_rate: f64,
        cached_table_cells: u64,
        cached_inner_nodes: u64,
        pruned_candidates: u64,
        pruned_scans: u64,
    }
}

fn main() {
    let args = Args::parse();
    let mut table = Table::new(&[
        "Document",
        "Inner nodes",
        "avg s/node",
        "cells used",
        "cells full table",
        "saved",
        "arena KB",
        "hashmap KB",
        "shapes",
        "dedup",
        "hit",
        "cached cells",
        "pruned",
    ]);
    let mut results = Vec::new();
    for (name, doc) in natix_datagen::evaluation_suite(args.scale, args.seed) {
        let tree = doc.tree();
        let (plain, stats) = dhw_with_statistics(tree, args.k).expect("feasible");
        let (cached_p, cached) = dhw_cached_with_statistics(tree, args.k).expect("feasible");
        assert_eq!(
            cached_p.intervals, plain.intervals,
            "cached DHW diverged from uncached on {name}"
        );
        // The naive table materializes every s in [w(v), K] for every j.
        let full: u64 = tree
            .node_ids()
            .filter(|&v| tree.child_count(v) > 0)
            .map(|v| {
                let s_range = args.k.saturating_sub(tree.weight(v)) + 1;
                s_range * (tree.child_count(v) as u64 + 1)
            })
            .sum();
        let hashmap_bytes = baseline::hashmap_bytes_estimate(&stats);
        table.row(vec![
            name.to_string(),
            stats.inner_nodes.to_string(),
            format!("{:.2}", stats.avg_rows()),
            stats.total_entries.to_string(),
            full.to_string(),
            format!(
                "{:.1}%",
                100.0 * (1.0 - stats.total_entries as f64 / full as f64)
            ),
            (stats.bytes_allocated / 1024).to_string(),
            (hashmap_bytes / 1024).to_string(),
            cached.dag_distinct.to_string(),
            format!("{:.1}x", cached.dag_dedup_ratio()),
            format!("{:.0}%", cached.dag_hit_rate() * 100.0),
            cached.total_entries.to_string(),
            cached.pruned_candidates.to_string(),
        ]);
        eprintln!(
            "done: {name} (avg {:.2} s values, {} of {} shapes distinct, \
             cached cells {} vs {})",
            stats.avg_rows(),
            cached.dag_distinct,
            cached.dag_nodes,
            cached.total_entries,
            stats.total_entries,
        );
        results.push(Row {
            document: name.to_string(),
            inner_nodes: stats.inner_nodes,
            avg_s_values: stats.avg_rows(),
            max_s_values: stats.max_rows,
            table_cells: stats.total_entries,
            full_table_cells: full,
            arena_cells: stats.arena_entries,
            arena_peak_bytes: stats.bytes_allocated,
            hashmap_bytes_estimate: hashmap_bytes,
            dag_distinct_fingerprints: cached.dag_distinct,
            dag_dedup_ratio: cached.dag_dedup_ratio(),
            dag_hit_rate: cached.dag_hit_rate(),
            cached_table_cells: cached.total_entries,
            cached_inner_nodes: cached.inner_nodes,
            pruned_candidates: cached.pruned_candidates,
            pruned_scans: cached.pruned_scans,
        });
    }
    println!(
        "Ablation: DP-table memoization effectiveness (K = {}, scale = {})\n",
        args.k, args.scale
    );
    println!("{}", table.render());
    println!("Paper Sec. 3.3.6 reference point: < 4 avg s values on a 20 MB document at K = 256.");
    println!(
        "arena KB = peak reusable workspace of the flat-arena DP; hashmap KB = estimated\n\
         heap bytes of the former per-node HashMap row layout for the same run (undercount).\n\
         shapes = distinct weighted subtree fingerprints (minimal-DAG nodes); dedup = nodes\n\
         per shape; hit = fraction of nodes served from the shape cache; cached cells = DP\n\
         cells the structure-sharing engine actually computed (one run per shape); pruned =\n\
         interval candidates dominance pruning removed from those runs."
    );
    write_json(&args, &results);
}
