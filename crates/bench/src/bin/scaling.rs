//! **Ablation A2**: runtime as a function of document size — the paper's
//! central complexity claim is that DHW (and GHDW) are *linear* in the
//! number of nodes for fixed K.
//!
//! ```text
//! cargo run -p natix-bench --release --bin scaling [--k 256]
//! ```
//!
//! Generates XMark-like documents at doubling scales and reports, per
//! algorithm, total time and time-per-node. Linearity shows as a flat
//! ns/node column.

use natix_bench::json_row;
use natix_bench::{fmt_duration, natix_core, natix_datagen, time, write_json, Args, Table};
use natix_core::{Dhw, Ekm, Ghdw, Km, Partitioner};

json_row! {
    struct Row {
        scale: f64,
        nodes: usize,
        per_algorithm: Vec<(String, f64, f64)>, // name, seconds, ns/node
    }
}

fn main() {
    let args = Args::parse();
    let algorithms: Vec<Box<dyn Partitioner>> = if args.skip_dhw {
        vec![Box::new(Ghdw), Box::new(Ekm), Box::new(Km)]
    } else {
        vec![Box::new(Dhw), Box::new(Ghdw), Box::new(Ekm), Box::new(Km)]
    };

    let mut headers = vec!["Scale", "Nodes"];
    for a in &algorithms {
        headers.push(a.name());
    }
    // Two columns per algorithm would be noisy; print time and a second
    // table with ns/node.
    let mut time_table = Table::new(&headers);
    let mut rate_table = Table::new(&headers);
    let mut results = Vec::new();

    for scale in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let doc = natix_datagen::xmark(natix_datagen::GenConfig {
            scale,
            seed: args.seed,
        });
        let tree = doc.tree();
        let n = tree.len();
        let mut time_cells = vec![format!("{scale}"), n.to_string()];
        let mut rate_cells = vec![format!("{scale}"), n.to_string()];
        let mut per_algorithm = Vec::new();
        for alg in &algorithms {
            let (res, dur) = time(|| alg.partition(tree, args.k));
            res.expect("feasible");
            let ns_per_node = dur.as_nanos() as f64 / n as f64;
            time_cells.push(fmt_duration(dur));
            rate_cells.push(format!("{ns_per_node:.0}ns"));
            per_algorithm.push((alg.name().to_string(), dur.as_secs_f64(), ns_per_node));
            eprintln!(
                "scale {scale}: {} {} ({ns_per_node:.0} ns/node)",
                alg.name(),
                fmt_duration(dur)
            );
        }
        time_table.row(time_cells);
        rate_table.row(rate_cells);
        results.push(Row {
            scale,
            nodes: n,
            per_algorithm,
        });
    }

    println!(
        "Ablation: linear scaling in document size (K = {})\n",
        args.k
    );
    println!("Total time:\n{}", time_table.render());
    println!(
        "Per node (flat column = linear runtime):\n{}",
        rate_table.render()
    );
    write_json(&args, &results);
}
