//! **Sharded streaming bulkload speed**: documents/second and peak
//! resident bytes versus thread count and shard count, plus a
//! bounded-memory probe across corpus sizes.
//!
//! ```text
//! cargo run -p natix-bench --release --bin bulk_speed            # full, 1M docs
//! cargo run -p natix-bench --release --bin bulk_speed -- --quick # CI smoke
//! ```
//!
//! The corpus is the lazy [`natix_datagen::small_docs`] stream — small
//! documents cycling the six Table 1 generators, generated one at a
//! time so the harness itself holds O(1) documents no matter the corpus
//! size. Each configuration loads a fresh collection into a scratch
//! directory through [`natix_store::bulkload_collection`] and reports:
//!
//! * **docs/s** over the full ingest (generation + parse + partition +
//!   page writes + per-segment commits), and
//! * **peak resident bytes** from the loader's own instruments: the
//!   streaming loader's buffered-node counter (per in-flight document)
//!   and the shard buffer pools at segment boundaries.
//!
//! Two gates run in every mode:
//!
//! * **Bounded memory** — at fixed `--pool-pages`, growing the corpus
//!   ~100× must leave peak resident within 2× (the streaming pipeline
//!   is O(depth + sibling budget + K) per document; the pools are
//!   capacity-capped).
//! * **Thread scaling** — on a machine with ≥ 4 cores, 4 loader
//!   threads must reach ≥ 1.5× the docs/s of 1 thread. The gate is
//!   recorded as not applicable on smaller machines (the sweep derives
//!   from `available_parallelism`, so a 1-core container measures — and
//!   reports — only the sequential point).
//!
//! Results go to `BENCH_bulk.json` (override with `--json`; `--quick`
//! writes JSON only when `--json` is given explicitly).

use natix_bench::{
    default_threads, fmt_duration, json_row, natix_datagen, natix_store, write_json_to, Args, Table,
};
use natix_store::{bulkload_collection, BulkloadOptions, StoreConfig};
use std::path::PathBuf;
use std::time::Instant;

json_row! {
    struct SweepPoint {
        threads: usize,
        shards: u64,
        docs: u64,
        records: u64,
        secs: f64,
        docs_per_s: f64,
        peak_loader_resident_bytes: u64,
        peak_pool_resident_bytes: u64,
    }
}

json_row! {
    struct MemoryPoint {
        docs: u64,
        peak_loader_resident_bytes: u64,
        peak_pool_resident_bytes: u64,
        peak_total_bytes: u64,
    }
}

json_row! {
    struct Results {
        quick: bool,
        seed: u64,
        available_parallelism: usize,
        pool_pages: usize,
        seg_docs: usize,
        sibling_budget: usize,
        record_limit_slots: u64,
        corpus: String,
        thread_sweep: Vec<SweepPoint>,
        shard_sweep: Vec<SweepPoint>,
        memory: Vec<MemoryPoint>,
        memory_growth_ratio: f64,
        memory_flat_within_2x: bool,
        speedup_4t_vs_1t: f64,
        scaling_gate_applicable: bool,
        scaling_gate_passed: bool,
    }
}

const POOL_PAGES: usize = 512; // 4 MB per shard store, fixed across all runs

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!("natix-bulk-bench-{}", std::process::id()))
}

struct Bench {
    seed: u64,
    config: StoreConfig,
    budget: usize,
    seg_docs: usize,
}

impl Bench {
    fn run(&self, docs: usize, shards: u32, threads: usize) -> SweepPoint {
        let dir = scratch();
        let _ = std::fs::remove_dir_all(&dir);
        let opts = BulkloadOptions {
            shards,
            threads,
            sibling_budget: self.budget,
            seg_docs: self.seg_docs,
            ..BulkloadOptions::default()
        };
        let start = Instant::now();
        let report = bulkload_collection(
            &dir,
            natix_datagen::small_docs(docs, self.seed),
            self.config,
            opts,
        )
        .expect("bulkload failed");
        let secs = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        eprintln!(
            "{docs} docs, {shards} shard(s), {threads} thread(s): {} ({:.0} docs/s, loader {} KB, pools {} KB)",
            fmt_duration(start.elapsed()),
            report.docs as f64 / secs.max(1e-9),
            report.peak_loader_resident.div_ceil(1024),
            report.peak_pool_resident.div_ceil(1024),
        );
        SweepPoint {
            threads,
            shards: shards as u64,
            docs: report.docs,
            records: report.records,
            secs,
            docs_per_s: report.docs as f64 / secs.max(1e-9),
            peak_loader_resident_bytes: report.peak_loader_resident as u64,
            peak_pool_resident_bytes: report.peak_pool_resident as u64,
        }
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.quick;
    let cores = default_threads();
    let bench = Bench {
        seed: args.seed,
        config: StoreConfig {
            record_limit_slots: args.k,
            buffer_pages: POOL_PAGES,
            ..StoreConfig::default()
        },
        budget: 8,
        seg_docs: if quick { 64 } else { 512 },
    };

    // Sweeps derive from the machine: thread counts are the powers of
    // two up to the core count (a 1-core container measures only the
    // sequential point and says so).
    let threads: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= cores)
        .collect();
    let shard_counts: [u32; 4] = [1, 2, 4, 8];
    // The small memory point must already saturate the capped pools —
    // otherwise the ratio measures pools filling to their fixed cap,
    // not corpus-driven growth.
    let (sweep_docs, mem_small, mem_large) = if quick {
        (2_000, 2_000, 20_000)
    } else {
        (100_000, 10_000, 1_000_000)
    };

    println!(
        "bulk_speed: {} core(s) available; pool fixed at {POOL_PAGES} pages/shard; \
         corpus = small_docs (six Table 1 generators)",
        cores
    );
    if cores == 1 {
        eprintln!(
            "WARNING: available_parallelism is 1 — the thread sweep collapses to the\n\
             sequential point and the 4-thread scaling gate is not applicable. Re-run on\n\
             a multi-core machine before citing scaling numbers."
        );
    }

    let mut thread_sweep = Vec::new();
    for &t in &threads {
        thread_sweep.push(bench.run(sweep_docs, 4, t));
    }
    let mut shard_sweep = Vec::new();
    for &s in &shard_counts {
        shard_sweep.push(bench.run(sweep_docs, s, cores.min(4)));
    }

    // Bounded-memory probe: ~100x more documents at the same pool cap.
    let mut memory = Vec::new();
    for docs in [mem_small, mem_large] {
        let p = bench.run(docs, 4, cores.min(4));
        memory.push(MemoryPoint {
            docs: p.docs,
            peak_loader_resident_bytes: p.peak_loader_resident_bytes,
            peak_pool_resident_bytes: p.peak_pool_resident_bytes,
            peak_total_bytes: p.peak_loader_resident_bytes + p.peak_pool_resident_bytes,
        });
    }
    let growth = memory[1].peak_total_bytes as f64 / memory[0].peak_total_bytes.max(1) as f64;
    let memory_flat = growth <= 2.0;

    let one = thread_sweep[0].docs_per_s;
    let four = thread_sweep
        .iter()
        .find(|p| p.threads == 4)
        .map(|p| p.docs_per_s);
    let speedup = four.map(|f| f / one.max(1e-9)).unwrap_or(1.0);
    let scaling_applicable = cores >= 4;
    let scaling_passed = !scaling_applicable || speedup >= 1.5;

    let mut table = Table::new(&[
        "sweep", "threads", "shards", "docs", "docs/s", "loader", "pools",
    ]);
    for (tag, points) in [("threads", &thread_sweep), ("shards", &shard_sweep)] {
        for p in points {
            table.row(vec![
                tag.to_string(),
                p.threads.to_string(),
                p.shards.to_string(),
                p.docs.to_string(),
                format!("{:.0}", p.docs_per_s),
                format!("{} KB", p.peak_loader_resident_bytes.div_ceil(1024)),
                format!("{} KB", p.peak_pool_resident_bytes.div_ceil(1024)),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "memory probe at {POOL_PAGES} pool pages/shard: {} docs -> {} KB total, {} docs -> {} KB total ({growth:.2}x)",
        memory[0].docs,
        memory[0].peak_total_bytes.div_ceil(1024),
        memory[1].docs,
        memory[1].peak_total_bytes.div_ceil(1024),
    );
    if scaling_applicable {
        println!("thread scaling: 4t/1t = {speedup:.2}x (gate: >= 1.5x)");
    } else {
        println!("thread scaling: gate not applicable on {cores} core(s)");
    }

    let results = Results {
        quick,
        seed: args.seed,
        available_parallelism: cores,
        pool_pages: POOL_PAGES,
        seg_docs: bench.seg_docs,
        sibling_budget: bench.budget,
        record_limit_slots: args.k,
        corpus: "small_docs (sigmod/mondial/partsupp/uwm/orders/xmark, minimum scale)".into(),
        thread_sweep,
        shard_sweep,
        memory,
        memory_growth_ratio: growth,
        memory_flat_within_2x: memory_flat,
        speedup_4t_vs_1t: speedup,
        scaling_gate_applicable: scaling_applicable,
        scaling_gate_passed: scaling_passed,
    };

    let mut failures = Vec::new();
    if !memory_flat {
        failures.push(format!(
            "peak resident grew {growth:.2}x from {} to {} docs (limit 2x) — streaming memory bound broken",
            results.memory[0].docs, results.memory[1].docs
        ));
    }
    // Hard cap: the pools can never exceed their configured capacity.
    let pool_cap = 4 * POOL_PAGES * natix_store::PAGE_SIZE;
    for p in &results.memory {
        if p.peak_pool_resident_bytes > pool_cap as u64 {
            failures.push(format!(
                "pool resident {} bytes exceeds the {} byte cap at {} docs",
                p.peak_pool_resident_bytes, pool_cap, p.docs
            ));
        }
    }
    if !scaling_passed {
        failures.push(format!(
            "4-thread speedup {speedup:.2}x < 1.5x on {cores} cores"
        ));
    }

    if quick {
        if let Some(path) = &args.json {
            write_json_to(path, &results);
        }
    } else {
        let path = args
            .json
            .clone()
            .unwrap_or_else(|| "BENCH_bulk.json".into());
        write_json_to(&path, &results);
    }
    if failures.is_empty() {
        println!("gates: all passed");
    } else {
        eprintln!("gates FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
