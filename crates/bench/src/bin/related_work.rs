//! **Ablation A4**: the related-work comparison of Sec. 5 — Lukes'
//! value-optimal tree partitioning vs KM vs the sibling partitioners.
//!
//! ```text
//! cargo run -p natix-bench --release --bin related_work [--scale 0.02]
//! ```
//!
//! Expected shape: with unit edge values Lukes and KM produce the same
//! cardinality (both are optimal for parent-child-only partitioning); the
//! sibling partitioners (DHW, EKM) beat both, because neither Lukes nor KM
//! may merge sibling subtrees.

use natix_bench::json_row;
use natix_bench::{
    fmt_duration, natix_core, natix_datagen, natix_tree, time, write_json, Args, Table,
};
use natix_core::{lukes, Dhw, Ekm, Km, Lukes, Partitioner, UnitEdgeValues};
use natix_tree::validate;

json_row! {
    struct Row {
        document: String,
        lukes: usize,
        lukes_value: u64,
        km: usize,
        dhw: usize,
        ekm: usize,
    }
}

fn main() {
    let mut args = Args::parse();
    if args.scale == Args::default().scale {
        // Lukes' extraction tables are O(nK) memory; keep documents modest.
        args.scale = 0.02;
    }
    let mut table = Table::new(&[
        "Document",
        "LUKES",
        "kept-edge value",
        "KM",
        "DHW",
        "EKM",
        "Lukes time",
    ]);
    let mut results = Vec::new();
    for (name, doc) in natix_datagen::evaluation_suite(args.scale, args.seed) {
        let tree = doc.tree();
        let card = |alg: &dyn Partitioner| {
            validate(tree, args.k, &alg.partition(tree, args.k).unwrap())
                .unwrap()
                .cardinality
        };
        let (lr, lukes_time) = time(|| lukes(tree, args.k, &UnitEdgeValues).unwrap());
        let l_card = validate(tree, args.k, &lr.partitioning)
            .unwrap()
            .cardinality;
        let km = card(&Km);
        let dhw = card(&Dhw);
        let ekm = card(&Ekm);
        assert_eq!(
            l_card, km,
            "{name}: unit-value Lukes must match KM's minimal parent-child partitioning"
        );
        // Value = kept edges = (n - 1) - cuts.
        assert_eq!(lr.value as usize, tree.len() - 1 - (l_card - 1));
        table.row(vec![
            name.to_string(),
            l_card.to_string(),
            lr.value.to_string(),
            km.to_string(),
            dhw.to_string(),
            ekm.to_string(),
            fmt_duration(lukes_time),
        ]);
        eprintln!("done: {name}");
        results.push(Row {
            document: name.to_string(),
            lukes: l_card,
            lukes_value: lr.value,
            km,
            dhw,
            ekm,
        });
        let _ = Lukes; // re-exported type used by library consumers
    }
    println!(
        "Ablation: related work (Lukes 1974) vs sibling partitioning (K = {}, scale = {})\n",
        args.k, args.scale
    );
    println!("{}", table.render());
    write_json(&args, &results);
}
