//! Structural profiles of the evaluation documents (the Sec. 6.1
//! characterization: flat "relational" documents vs nested structures),
//! next to the paper's Table 1 size columns.
//!
//! ```text
//! cargo run -p natix-bench --release --bin doc_stats [--scale 0.05 | --paper]
//! ```

use natix_bench::json_row;
use natix_bench::{natix_datagen, natix_tree, write_json, Args, Table};
use natix_tree::tree_stats;

/// Paper Table 1 reference values at scale 1.0: (nodes, weight / 256).
const PAPER: &[(&str, usize, u64)] = &[
    ("SigmodRecord.xml", 42_054, 352),
    ("mondial-3.0.xml", 152_218, 1_236),
    ("partsupp.xml", 96_005, 1_026),
    ("uwm.xml", 189_542, 1_446),
    ("orders.xml", 300_005, 2_247),
    ("xmark0p1.xml", 549_213, 7_532),
];

json_row! {
    struct Row {
        document: String,
        nodes: usize,
        weight: u64,
        height: usize,
        leaves: usize,
        max_fanout: usize,
        mean_fanout: f64,
        paper_nodes_at_this_scale: f64,
    }
}

fn main() {
    let args = Args::parse();
    let mut table = Table::new(&[
        "Document",
        "Nodes",
        "paper@scale",
        "Weight/K",
        "paper",
        "Height",
        "Leaves",
        "Max fan-out",
        "Mean fan-out",
    ]);
    let mut results = Vec::new();
    for (name, doc) in natix_datagen::evaluation_suite(args.scale, args.seed) {
        let s = tree_stats(doc.tree());
        let (paper_nodes, paper_wk) = PAPER
            .iter()
            .find(|&&(n, _, _)| n == name)
            .map(|&(_, n, w)| (n as f64 * args.scale, (w as f64 * args.scale) as u64))
            .expect("known document");
        table.row(vec![
            name.to_string(),
            s.nodes.to_string(),
            format!("{paper_nodes:.0}"),
            (s.total_weight / args.k).to_string(),
            paper_wk.to_string(),
            s.height.to_string(),
            s.leaves.to_string(),
            s.max_fanout.to_string(),
            format!("{:.1}", s.mean_fanout),
        ]);
        results.push(Row {
            document: name.to_string(),
            nodes: s.nodes,
            weight: s.total_weight,
            height: s.height,
            leaves: s.leaves,
            max_fanout: s.max_fanout,
            mean_fanout: s.mean_fanout,
            paper_nodes_at_this_scale: paper_nodes,
        });
        eprintln!("done: {name}");
    }
    println!(
        "Document shape profiles (scale = {}, K = {}); 'paper' columns are \
         Table 1 values scaled\n",
        args.scale, args.k
    );
    println!("{}", table.render());
    println!(
        "Note the two regimes the paper calls out: partsupp/orders are flat\n\
         (height 2, huge root fan-out), mondial/uwm/xmark are nested."
    );
    write_json(&args, &results);
}
