//! **Ablation A1**: partition counts as a function of the weight limit K.
//!
//! ```text
//! cargo run -p natix-bench --release --bin sweep_k [--scale 0.02]
//! ```
//!
//! Sweeps K over 32..4096 slots on the XMark-like document and prints one
//! row per K with every algorithm's partition count. Expected shape: all
//! counts fall roughly like `weight / K`; the gap between KM and the
//! sibling partitioners *grows* as K grows, because larger storage units
//! can merge more sibling subtrees that KM must keep separate.

use natix_bench::json_row;
use natix_bench::{natix_core, natix_datagen, natix_tree, write_json, Args, Table};
use natix_core::evaluation_algorithms;
use natix_tree::validate;

json_row! {
    struct Row {
        k: u64,
        lower_bound: u64,
        partitions: Vec<(String, usize)>,
    }
}

fn main() {
    let mut args = Args::parse();
    if args.scale == Args::default().scale {
        // Smaller default than the table binaries: DHW runs once per K.
        args.scale = 0.02;
    }
    let doc = natix_datagen::xmark(natix_datagen::GenConfig {
        scale: args.scale,
        seed: args.seed,
    });
    let tree = doc.tree();
    eprintln!(
        "document: {} nodes, {} slots",
        tree.len(),
        tree.total_weight()
    );

    let algorithms = evaluation_algorithms();
    let mut headers = vec!["K", "ceil(W/K)"];
    for a in &algorithms {
        if args.skip_dhw && a.name() == "DHW" {
            continue;
        }
        headers.push(a.name());
    }
    let mut table = Table::new(&headers);
    let mut results = Vec::new();

    let min_k = tree.max_node_weight();
    for k in [32u64, 64, 128, 256, 512, 1024, 2048, 4096] {
        if k < min_k {
            eprintln!("skipping K={k}: heaviest node weighs {min_k}");
            continue;
        }
        let lb = tree.total_weight().div_ceil(k);
        let mut cells = vec![k.to_string(), lb.to_string()];
        let mut partitions = Vec::new();
        for alg in &algorithms {
            if args.skip_dhw && alg.name() == "DHW" {
                continue;
            }
            let p = alg.partition(tree, k).expect("feasible");
            let stats = validate(tree, k, &p).expect("valid");
            cells.push(stats.cardinality.to_string());
            partitions.push((alg.name().to_string(), stats.cardinality));
        }
        table.row(cells);
        results.push(Row {
            k,
            lower_bound: lb,
            partitions,
        });
        eprintln!("done: K={k}");
    }

    println!(
        "Ablation: partitions vs K on XMark-like data (scale = {})\n",
        args.scale
    );
    println!("{}", table.render());
    write_json(&args, &results);
}
