//! Shared experiment harness: CLI parsing, timing, table and JSON output.
//!
//! Each binary in this crate regenerates one table of the paper (see
//! `DESIGN.md` §6 and `EXPERIMENTS.md`):
//!
//! * `table1` — number of generated partitions (Table 1),
//! * `table2` — partitioning CPU time (Table 2),
//! * `table3` — query time and disk space, KM vs EKM layouts (Table 3),
//! * `sweep_k` — ablation: partitions as a function of K,
//! * `scaling` — ablation: linear runtime in the number of nodes.
//!
//! All binaries accept `--scale <f>` (document size multiplier; default
//! 0.05), `--paper` (shorthand for `--scale 1.0`, the paper's document
//! sizes), `--seed <n>`, `--k <slots>` (default 256) and `--json <path>`.

use std::time::{Duration, Instant};

pub mod json;
pub use json::{Json, ToJson};

pub use natix_core;
pub use natix_datagen;
pub use natix_store;
pub use natix_tree;
pub use natix_xml;
pub use natix_xpath;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Document scale; 1.0 = the paper's sizes.
    pub scale: f64,
    /// RNG seed for the generators.
    pub seed: u64,
    /// Weight limit K in slots (paper: 256 slots = 2 KB records).
    pub k: u64,
    /// Optional path for machine-readable JSON results.
    pub json: Option<String>,
    /// Skip the slow optimal algorithm (DHW) if set.
    pub skip_dhw: bool,
    /// Worker threads for parallel partitioning (`--threads`); defaults to
    /// the machine's available parallelism.
    pub threads: usize,
    /// CI smoke mode (`--quick`): tiny scale, one timed run, deterministic
    /// correctness gates, nonzero exit on regression. Honored by `dp_speed`.
    pub quick: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.05,
            seed: 42,
            k: 256,
            json: None,
            skip_dhw: false,
            threads: default_threads(),
            quick: false,
        }
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Args {
    /// Parse from `std::env::args`; exits with a usage message on error.
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut value = |what: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    std::process::exit(2);
                })
            };
            match a.as_str() {
                "--scale" => {
                    args.scale = value("--scale").parse().unwrap_or_else(|_| {
                        eprintln!("--scale expects a float");
                        std::process::exit(2);
                    })
                }
                "--paper" => args.scale = 1.0,
                "--seed" => {
                    args.seed = value("--seed").parse().unwrap_or_else(|_| {
                        eprintln!("--seed expects an integer");
                        std::process::exit(2);
                    })
                }
                "--k" => {
                    args.k = value("--k").parse().unwrap_or_else(|_| {
                        eprintln!("--k expects an integer");
                        std::process::exit(2);
                    })
                }
                "--json" => args.json = Some(value("--json")),
                "--skip-dhw" => args.skip_dhw = true,
                "--quick" => args.quick = true,
                "--threads" => {
                    args.threads = value("--threads").parse().unwrap_or_else(|_| {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    });
                    if args.threads == 0 {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale <f> | --paper | --seed <n> | --k <slots> | \
                         --json <path> | --skip-dhw | --threads <n> | --quick"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Median wall-clock time of `runs` executions (after one warm-up run).
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns (first column left-aligned, the rest
    /// right-aligned).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", c, width = widths[i]));
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Write `results` as pretty JSON if `--json` was given.
pub fn write_json<T: ToJson>(args: &Args, results: &T) {
    if let Some(path) = &args.json {
        write_json_to(path, results);
    }
}

/// Write `results` as pretty JSON to an explicit path.
pub fn write_json_to<T: ToJson>(path: &str, results: &T) {
    let json = results.to_json().render_pretty();
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

/// Human-friendly duration (s with ms precision, or ms/µs for short ones).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Doc", "N"]);
        t.row(vec!["a.xml".into(), "12".into()]);
        t.row(vec!["long-name.xml".into(), "3".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Doc"));
        assert!(lines[3].ends_with(" 3"));
    }

    #[test]
    fn median_time_is_positive() {
        let d = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        let _ = d;
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }
}
