//! Minimal JSON serialization for experiment results.
//!
//! The offline build cannot fetch `serde`/`serde_json` (derive macros need
//! proc-macro crates that cannot be shimmed locally), so the harness renders
//! its result rows through this hand-rolled tree + the [`json_row!`] macro,
//! which keeps the per-binary row definitions as declarative as the old
//! `#[derive(Serialize)]` structs.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (covers `u64`/`usize` exactly; no f64 rounding).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point; non-finite values render as `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Render with two-space indentation, matching
    /// `serde_json::to_string_pretty` closely enough for downstream tooling.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` prints the shortest representation that parses
                    // back exactly; force a decimal point for integral
                    // values so consumers see a float, like serde_json.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree (the shim's stand-in for
/// `serde::Serialize`).
pub trait ToJson {
    /// Build the JSON value for `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )+};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )+};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Declare a result-row struct together with its [`ToJson`] impl, keeping
/// the field list single-sourced like the former `#[derive(Serialize)]`.
#[macro_export]
macro_rules! json_row {
    (
        $(#[$meta:meta])*
        struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $field:ident : $ty:ty
            ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        struct $name {
            $( $(#[$fmeta])* $field: $ty, )+
        }

        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    json_row! {
        struct Row {
            name: String,
            count: usize,
            ratio: f64,
            pairs: Vec<(String, u64)>,
        }
    }

    #[test]
    fn row_macro_renders_object() {
        let r = Row {
            name: "xmark".into(),
            count: 3,
            ratio: 1.5,
            pairs: vec![("dhw".into(), 10u64)],
        };
        let s = vec![r].to_json().render_pretty();
        assert!(s.starts_with("[\n  {\n"), "got: {s}");
        assert!(s.contains("\"name\": \"xmark\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 1.5"));
        assert!(s.contains("\"dhw\""));
    }

    #[test]
    fn floats_render_with_decimal_point() {
        assert_eq!(Json::Float(2.0).render_pretty(), "2.0");
        assert_eq!(Json::Float(f64::NAN).render_pretty(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render_pretty(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Array(vec![]).render_pretty(), "[]");
        assert_eq!(Json::Object(vec![]).render_pretty(), "{}");
    }
}
