//! Criterion micro-benchmarks for the partitioning algorithms
//! (complements the wall-clock Table 2 harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use natix_bench::{natix_core, natix_datagen};
use natix_core::{evaluation_algorithms, Fdw, Partitioner};
use natix_datagen::GenConfig;

fn bench_algorithms(c: &mut Criterion) {
    let doc = natix_datagen::xmark(GenConfig {
        scale: 0.005,
        seed: 1,
    });
    let tree = doc.tree();
    let mut g = c.benchmark_group("partition/xmark-2.7k-nodes");
    for alg in evaluation_algorithms() {
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), tree, |b, tree| {
            b.iter(|| alg.partition(tree, 256).unwrap())
        });
    }
    g.finish();
}

fn bench_relational(c: &mut Criterion) {
    // The flat "relational" regime is DHW's worst case.
    let doc = natix_datagen::partsupp(GenConfig {
        scale: 0.01,
        seed: 1,
    });
    let tree = doc.tree();
    let mut g = c.benchmark_group("partition/partsupp-1k-nodes");
    for alg in evaluation_algorithms() {
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), tree, |b, tree| {
            b.iter(|| alg.partition(tree, 256).unwrap())
        });
    }
    g.finish();
}

fn bench_fdw_flat(c: &mut Criterion) {
    // FDW only runs on flat trees; give it one.
    let mut spec = String::from("root:1(");
    for i in 0..500 {
        spec.push_str(&format!("c{}:{} ", i, i % 7 + 1));
    }
    spec.push(')');
    let tree = natix_bench::natix_tree::parse_spec(&spec).unwrap();
    c.bench_function("partition/fdw-flat-500", |b| {
        b.iter(|| Fdw.partition(&tree, 64).unwrap())
    });
}

criterion_group!(benches, bench_algorithms, bench_relational, bench_fdw_flat);
criterion_main!(benches);
