//! Criterion benchmarks for the storage substrate: bulkload throughput and
//! full-document traversal over different layouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use natix_bench::{natix_core, natix_datagen, natix_store};
use natix_core::{Ekm, Km, Partitioner, Rs};
use natix_datagen::GenConfig;
use natix_store::{MemPager, StoreConfig, XmlStore};

fn bench_bulkload(c: &mut Criterion) {
    let doc = natix_datagen::xmark(GenConfig {
        scale: 0.01,
        seed: 5,
    });
    let mut g = c.benchmark_group("store/bulkload");
    g.throughput(Throughput::Elements(doc.len() as u64));
    for alg in [&Ekm as &dyn Partitioner, &Km, &Rs] {
        let p = alg.partition(doc.tree(), 256).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), &p, |b, p| {
            b.iter(|| {
                XmlStore::bulkload(&doc, p, Box::new(MemPager::new()), StoreConfig::default())
                    .unwrap()
                    .record_count()
            })
        });
    }
    g.finish();
}

fn bench_full_scan(c: &mut Criterion) {
    let doc = natix_datagen::xmark(GenConfig {
        scale: 0.01,
        seed: 5,
    });
    let mut g = c.benchmark_group("store/full-scan");
    g.throughput(Throughput::Elements(doc.len() as u64));
    for alg in [&Ekm as &dyn Partitioner, &Km] {
        let p = alg.partition(doc.tree(), 256).unwrap();
        let mut store =
            XmlStore::bulkload(&doc, &p, Box::new(MemPager::new()), StoreConfig::default())
                .unwrap();
        g.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter(|| store.to_document().unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bulkload, bench_full_scan);
criterion_main!(benches);
