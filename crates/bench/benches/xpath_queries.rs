//! Criterion benchmarks for XPath evaluation over KM and EKM store
//! layouts and the in-memory document (Table 3 in micro form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use natix_bench::{natix_core, natix_datagen, natix_store, natix_xpath};
use natix_core::{Ekm, Km, Partitioner};
use natix_datagen::GenConfig;
use natix_store::{MemPager, StoreConfig, XmlStore};
use natix_xpath::{eval, parse, MemNavigator, StoreNavigator};

fn load(doc: &natix_bench::natix_xml::Document, alg: &dyn Partitioner) -> XmlStore {
    let p = alg.partition(doc.tree(), 256).unwrap();
    XmlStore::bulkload(doc, &p, Box::new(MemPager::new()), StoreConfig::default()).unwrap()
}

fn bench_queries(c: &mut Criterion) {
    let doc = natix_datagen::xmark(GenConfig {
        scale: 0.02,
        seed: 3,
    });
    let mut km = load(&doc, &Km);
    let mut ekm = load(&doc, &Ekm);

    for (name, query) in [
        ("Q1-items", "/site/regions/*/item"),
        ("Q3-keywords", "//keyword"),
        ("Q6-ancestors", "//keyword/ancestor::listitem"),
    ] {
        let path = parse(query).unwrap();
        let mut g = c.benchmark_group(format!("xpath/{name}"));
        g.bench_function(BenchmarkId::from_parameter("mem"), |b| {
            b.iter(|| {
                let mut nav = MemNavigator::new(&doc);
                eval(&mut nav, &path).unwrap().len()
            })
        });
        g.bench_function(BenchmarkId::from_parameter("store-km"), |b| {
            b.iter(|| {
                let mut nav = StoreNavigator::new(&mut km);
                eval(&mut nav, &path).unwrap().len()
            })
        });
        g.bench_function(BenchmarkId::from_parameter("store-ekm"), |b| {
            b.iter(|| {
                let mut nav = StoreNavigator::new(&mut ekm);
                eval(&mut nav, &path).unwrap().len()
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
