//! Store round-trip tests: bulkload under every partitioning algorithm and
//! rebuild the document purely through cursor navigation.

use natix_core::{evaluation_algorithms, Partitioner};
use natix_datagen::{partsupp, sigmod, xmark, GenConfig};
use natix_store::{bulkload_with, MemPager, StoreConfig, XmlStore};
use natix_tree::validate;
use natix_xml::Document;

fn roundtrip(doc: &Document, alg: &dyn Partitioner, k: u64) -> XmlStore {
    let p = alg.partition(doc.tree(), k).expect("feasible input");
    let stats = validate(doc.tree(), k, &p).expect("feasible partitioning");
    let mut store = XmlStore::bulkload(doc, &p, Box::new(MemPager::new()), StoreConfig::default())
        .expect("bulkload");
    assert_eq!(store.record_count(), stats.cardinality);
    let back = store.to_document().expect("traversal");
    assert_eq!(
        back.to_xml(),
        doc.to_xml(),
        "{} K={k} altered the document",
        alg.name()
    );
    store
}

#[test]
fn every_algorithm_roundtrips_generated_documents() {
    let docs = [
        sigmod(GenConfig {
            scale: 0.02,
            seed: 11,
        }),
        partsupp(GenConfig {
            scale: 0.005,
            seed: 12,
        }),
        xmark(GenConfig {
            scale: 0.004,
            seed: 13,
        }),
    ];
    for doc in &docs {
        for alg in evaluation_algorithms() {
            roundtrip(doc, alg.as_ref(), 256);
        }
    }
}

#[test]
fn small_limits_roundtrip() {
    let doc = xmark(GenConfig {
        scale: 0.002,
        seed: 14,
    });
    // The heaviest node bounds how small K can get.
    let min_k = doc.tree().max_node_weight();
    for k in [min_k, min_k + 3, 64] {
        for alg in evaluation_algorithms() {
            roundtrip(&doc, alg.as_ref(), k);
        }
    }
}

#[test]
fn ekm_layout_navigates_less_than_km() {
    use natix_core::{Ekm, Km};
    let doc = xmark(GenConfig {
        scale: 0.01,
        seed: 15,
    });
    let mut ekm = bulkload_with(
        &doc,
        &Ekm,
        256,
        Box::new(MemPager::new()),
        StoreConfig::default(),
    )
    .unwrap();
    let mut km = bulkload_with(
        &doc,
        &Km,
        256,
        Box::new(MemPager::new()),
        StoreConfig::default(),
    )
    .unwrap();
    assert!(ekm.record_count() < km.record_count());
    for store in [&mut ekm, &mut km] {
        store.reset_nav_stats();
        store.to_document().unwrap();
    }
    // A full scan over fewer, larger records crosses fewer boundaries.
    assert!(ekm.nav_stats().record_switches < km.nav_stats().record_switches);
}

#[test]
fn store_reopens_from_page_file() {
    use natix_core::Ekm;
    use natix_store::{FilePager, PAGE_SIZE};

    let dir = std::env::temp_dir().join(format!("natix-reopen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("persist.natix");
    let doc = xmark(GenConfig {
        scale: 0.002,
        seed: 33,
    });
    let xml = doc.to_xml();
    {
        // Bulkload, then drop the store: everything must be on disk.
        let pager = FilePager::create(&path).unwrap();
        let store =
            bulkload_with(&doc, &Ekm, 256, Box::new(pager), StoreConfig::default()).unwrap();
        assert!(store.record_count() > 1);
    }
    {
        let pager = FilePager::open(&path).unwrap();
        let mut store = XmlStore::open(Box::new(pager), StoreConfig::default()).unwrap();
        let back = store.to_document().unwrap();
        assert_eq!(back.to_xml(), xml);
        // Labels survive too.
        assert!(store.label_id("keyword").is_some());
    }
    assert!(path.metadata().unwrap().len() >= 2 * PAGE_SIZE as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn opening_garbage_fails_cleanly() {
    use natix_store::{FilePager, PAGE_SIZE};
    let dir = std::env::temp_dir().join(format!("natix-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.natix");
    std::fs::write(&path, vec![0xABu8; PAGE_SIZE * 2]).unwrap();
    let pager = FilePager::open(&path).unwrap();
    assert!(XmlStore::open(Box::new(pager), StoreConfig::default()).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
