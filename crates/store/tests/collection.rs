//! Collection layer: sharded parallel bulkload, catalog round-trip,
//! cross-shard fsck, and thread-count independence of the shard bytes.

use std::fs;
use std::path::PathBuf;

use natix_store::{
    bulkload_collection, fsck_collection, shard_path, BulkloadOptions, Collection, StoreConfig,
};

fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "<doc id=\"{i}\"><title>document {i}</title>\
                 <body>payload text for document number {i}</body>\
                 <tags><t>a{}</t><t>b{}</t></tags></doc>",
                i % 7,
                i % 3
            )
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("natix-coll-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> StoreConfig {
    StoreConfig {
        record_limit_slots: 64,
        ..StoreConfig::default()
    }
}

#[test]
fn collection_round_trips_every_document() {
    let dir = temp_dir("roundtrip");
    let docs = corpus(97);
    let opts = BulkloadOptions {
        shards: 4,
        threads: 2,
        seg_docs: 10,
        ..BulkloadOptions::default()
    };
    let report = bulkload_collection(&dir, docs.iter().cloned(), config(), opts).expect("load");
    assert_eq!(report.docs, 97);
    assert_eq!(report.shard_docs.iter().sum::<u64>(), 97);
    assert!(report.peak_loader_resident > 0);

    let mut coll = Collection::open(&dir, config()).expect("open");
    assert_eq!(coll.shard_count(), 4);
    assert_eq!(coll.doc_count(), 97);
    for (i, xml) in docs.iter().enumerate() {
        let doc = coll.get_document(i as u64).expect("get_document");
        assert_eq!(&doc.to_xml(), xml, "doc {i} round-trip");
    }
    assert!(coll.check().expect("check").is_empty(), "shards consistent");

    for (shard, report) in fsck_collection(&dir, false).expect("fsck") {
        assert!(report.clean(), "shard {shard} not clean:\n{report}");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_bytes_independent_of_thread_count() {
    let docs = corpus(60);
    let opts = |threads| BulkloadOptions {
        shards: 3,
        threads,
        seg_docs: 8,
        ..BulkloadOptions::default()
    };
    let d1 = temp_dir("threads1");
    let d3 = temp_dir("threads3");
    bulkload_collection(&d1, docs.iter().cloned(), config(), opts(1)).expect("1 thread");
    bulkload_collection(&d3, docs.iter().cloned(), config(), opts(3)).expect("3 threads");
    for s in 0..3 {
        let a = fs::read(shard_path(&d1, s)).expect("shard file");
        let b = fs::read(shard_path(&d3, s)).expect("shard file");
        assert_eq!(a, b, "shard {s} bytes differ across thread counts");
    }
    fs::remove_dir_all(&d1).ok();
    fs::remove_dir_all(&d3).ok();
}

#[test]
fn torn_catalog_tail_is_ignored() {
    let dir = temp_dir("torn");
    let docs = corpus(40);
    let opts = BulkloadOptions {
        shards: 2,
        threads: 1,
        seg_docs: 5,
        ..BulkloadOptions::default()
    };
    bulkload_collection(&dir, docs.iter().cloned(), config(), opts).expect("load");
    let full = Collection::open(&dir, config()).expect("open").doc_count();
    assert_eq!(full, 40);

    // Chop the catalog mid-frame: the intact prefix must still open.
    let cat = dir.join(natix_store::CATALOG_FILE);
    let bytes = fs::read(&cat).expect("catalog");
    fs::write(&cat, &bytes[..bytes.len() - 7]).expect("truncate");
    let mut coll = Collection::open(&dir, config()).expect("open torn");
    let n = coll.doc_count();
    assert!(n < 40, "tail frame should be dropped");
    // Every still-cataloged document remains readable.
    for shard in 0..2u64 {
        let mut local = 0;
        loop {
            let id = shard + local * 2;
            if coll.doc_root(id).is_none() {
                break;
            }
            coll.get_document(id).expect("cataloged doc readable");
            local += 1;
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_document_fails_the_load() {
    let dir = temp_dir("fail");
    let heavy = "x".repeat(4096);
    let docs = vec!["<a><b>ok</b></a>".to_string(), format!("<a>{heavy}</a>")];
    let cfg = StoreConfig {
        record_limit_slots: 16,
        ..StoreConfig::default()
    };
    let opts = BulkloadOptions {
        shards: 2,
        threads: 1,
        ..BulkloadOptions::default()
    };
    assert!(bulkload_collection(&dir, docs.into_iter(), cfg, opts).is_err());
    fs::remove_dir_all(&dir).ok();
}
