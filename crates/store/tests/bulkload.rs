//! Streaming bulkload equivalence: the SAX-driven loader must produce a
//! store that is **byte-identical** to the batch path (parse → partition
//! with `StreamingEkm` → `XmlStore::bulkload`) for the same weight limit
//! and sibling budget — same partitions, same record bytes, same page
//! layout, same catalog. The tests diff entire page-file snapshots.

use natix_core::{Partitioner, StreamingEkm};
use natix_datagen::evaluation_suite;
use natix_store::{stream_bulkload, SharedMemPager, StoreConfig, XmlStore};
use natix_xml::Document;
use proptest::prelude::*;

fn config(k: u64) -> StoreConfig {
    StoreConfig {
        record_limit_slots: k,
        ..StoreConfig::default()
    }
}

/// Batch path: materialize, partition, bulkload; return the page file.
fn batch_snapshot(doc: &Document, k: u64, budget: usize) -> Vec<u8> {
    let p = StreamingEkm {
        sibling_budget: budget,
    }
    .partition(doc.tree(), k)
    .expect("feasible");
    let disk = SharedMemPager::new();
    let store = XmlStore::bulkload(doc, &p, Box::new(disk.clone()), config(k)).expect("bulkload");
    drop(store);
    disk.snapshot()
}

/// Streaming path: SAX-load the serialized document; return the page file.
fn streaming_snapshot(xml: &str, k: u64, budget: usize) -> (Vec<u8>, natix_store::LoadStats) {
    let disk = SharedMemPager::new();
    let (store, stats) =
        stream_bulkload(xml, budget, Box::new(disk.clone()), config(k)).expect("stream load");
    drop(store);
    (disk.snapshot(), stats)
}

fn assert_equivalent(name: &str, doc: &Document, k: u64, budget: usize) {
    let xml = doc.to_xml();
    let batch = batch_snapshot(doc, k, budget);
    let (streaming, stats) = streaming_snapshot(&xml, k, budget);
    assert_eq!(
        batch.len(),
        streaming.len(),
        "{name} k={k} budget={budget}: page counts differ"
    );
    if batch != streaming {
        let page = batch
            .chunks(natix_store::PAGE_SIZE)
            .zip(streaming.chunks(natix_store::PAGE_SIZE))
            .position(|(a, b)| a != b);
        panic!("{name} k={k} budget={budget}: snapshots differ at page {page:?}");
    }
    assert_eq!(stats.nodes, doc.tree().len() as u64, "{name}: node count");
}

/// Satellite check: every generator of the paper's Table 1 suite loads
/// to identical bytes through both paths, at tight and default budgets.
#[test]
fn streaming_matches_batch_on_all_generators() {
    for (name, doc) in evaluation_suite(0.05, 42) {
        for &budget in &[0usize, 2, 8] {
            assert_equivalent(name, &doc, 256, budget);
        }
        assert_equivalent(name, &doc, 64, 4);
    }
}

/// The streaming loader never buffers the whole document: loading a flat
/// document 16× wider must not grow the loader's peak resident bytes
/// (the slab frees each record as it is cut).
#[test]
fn resident_bytes_stay_flat_as_documents_grow() {
    let wide = |n: usize| {
        let mut s = String::from("<r>");
        for i in 0..n {
            s.push_str(&format!("<item id=\"{i}\"><v>text {i}</v></item>"));
        }
        s.push_str("</r>");
        s
    };
    let (_, small) = streaming_snapshot(&wide(500), 256, 8);
    let (_, large) = streaming_snapshot(&wide(8000), 256, 8);
    assert!(large.nodes > 15 * small.nodes);
    assert!(
        large.peak_resident_bytes <= 2 * small.peak_resident_bytes,
        "peak grew with document size: {} -> {}",
        small.peak_resident_bytes,
        large.peak_resident_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random seeds, scales, budgets and limits: bytes always match.
    #[test]
    fn streaming_matches_batch_randomized(
        seed in 0u64..1_000_000,
        scale_pct in 1u32..8,
        budget in 0usize..12,
        k_idx in 0usize..4,
    ) {
        let k = [48u64, 128, 256, 512][k_idx];
        let scale = scale_pct as f64 / 100.0;
        for (name, doc) in evaluation_suite(scale, seed) {
            assert_equivalent(name, &doc, k, budget);
        }
    }
}
