//! Node-at-a-time update tests: insertions with record splits, subtree
//! deletions with record frees, and randomized update sequences checked
//! against a shadow in-memory document.

use natix_core::{Ekm, Km};
use natix_datagen::{xmark, GenConfig};
use natix_store::{bulkload_with, MemPager, NodeRef, StoreConfig, XmlStore};
use natix_xml::{parse, Document, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn load(xml: &str, k: u64) -> (Document, XmlStore) {
    let doc = parse(xml).unwrap();
    let store = bulkload_with(
        &doc,
        &Ekm,
        k,
        Box::new(MemPager::new()),
        StoreConfig {
            record_limit_slots: k,
            ..Default::default()
        },
    )
    .unwrap();
    (doc, store)
}

/// Find a stored node by element name via a full scan.
fn find_element(store: &mut XmlStore, name: &str) -> Option<NodeRef> {
    let want = store.label_id(name)?;
    let root = store.root().unwrap();
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        if store.node_label(r).unwrap() == want {
            return Some(r);
        }
        let mut kids = Vec::new();
        store
            .for_each_child(r, |c, kind, _| {
                if kind == NodeKind::Element {
                    kids.push(c);
                }
            })
            .unwrap();
        stack.extend(kids);
    }
    None
}

#[test]
fn append_without_split() {
    let (_, mut store) = load("<a><b/><c/></a>", 100);
    let root = store.root().unwrap();
    let new = store
        .append_child(root, NodeKind::Element, "d", None)
        .unwrap();
    assert_eq!(store.node_kind(new).unwrap(), NodeKind::Element);
    let back = store.to_document().unwrap();
    assert_eq!(back.to_xml(), "<a><b/><c/><d/></a>");
}

#[test]
fn insert_before_local_sibling() {
    let (_, mut store) = load("<a><b/><d/></a>", 100);
    let d = find_element(&mut store, "d").unwrap();
    store
        .insert_before(d, NodeKind::Element, "c", None)
        .unwrap();
    assert_eq!(store.to_document().unwrap().to_xml(), "<a><b/><c/><d/></a>");
}

#[test]
fn insert_text_and_attribute() {
    let (_, mut store) = load("<a><b/></a>", 100);
    let b = find_element(&mut store, "b").unwrap();
    store
        .append_child(b, NodeKind::Attribute, "id", Some("b1"))
        .unwrap();
    let b = find_element(&mut store, "b").unwrap();
    store
        .append_child(b, NodeKind::Text, "#text", Some("hello"))
        .unwrap();
    assert_eq!(
        store.to_document().unwrap().to_xml(),
        r#"<a><b id="b1">hello</b></a>"#
    );
}

#[test]
fn repeated_appends_force_splits() {
    // K = 16 slots: each text child is 1 (elem) + 2 (9-byte text) slots, so
    // the root record must split repeatedly.
    let (_, mut store) = load("<list></list>", 16);
    let initial_records = store.record_count();
    for i in 0..40 {
        let root = store.root().unwrap();
        let e = store
            .append_child(root, NodeKind::Element, "entry", None)
            .unwrap();
        store
            .append_child(e, NodeKind::Text, "#text", Some(&format!("v{i:06}")))
            .unwrap();
    }
    assert!(
        store.record_count() > initial_records + 5,
        "expected many splits, got {} records",
        store.record_count()
    );
    let back = store.to_document().unwrap();
    let tree = back.tree();
    assert_eq!(tree.child_count(back.root()), 40);
    // Order preserved.
    for (i, &c) in tree.children(back.root()).iter().enumerate() {
        let t = tree.children(c)[0];
        assert_eq!(back.content(t), Some(format!("v{i:06}").as_str()));
    }
}

#[test]
fn inserting_rejects_oversized_node() {
    let (_, mut store) = load("<a/>", 8);
    let root = store.root().unwrap();
    let big = "x".repeat(1000);
    assert!(store
        .append_child(root, NodeKind::Text, "#text", Some(&big))
        .is_err());
}

#[test]
fn delete_leaf_and_subtree() {
    let (_, mut store) = load("<a><b><x/><y/></b><c/></a>", 100);
    let b = find_element(&mut store, "b").unwrap();
    store.delete_subtree(b).unwrap();
    assert_eq!(store.to_document().unwrap().to_xml(), "<a><c/></a>");
    let c = find_element(&mut store, "c").unwrap();
    store.delete_subtree(c).unwrap();
    assert_eq!(store.to_document().unwrap().to_xml(), "<a/>");
}

#[test]
fn delete_spanning_records_frees_them() {
    // Tiny K: the document spreads over many records; deleting a subtree
    // must free all of them.
    let (doc, mut store) = load(
        concat!(
            "<a><b><p>a rather long run of text that will not fit</p>",
            "<q>another rather long run of text that will not fit</q></b>",
            "<c><r>yet another rather long run of text here</r></c></a>",
        ),
        8,
    );
    assert!(store.record_count() > 3);
    let before = store.live_record_count();
    let b = find_element(&mut store, "b").unwrap();
    store.delete_subtree(b).unwrap();
    assert!(store.live_record_count() < before);
    let back = store.to_document().unwrap();
    assert_eq!(
        back.to_xml(),
        "<a><c><r>yet another rather long run of text here</r></c></a>"
    );
    let _ = doc;
}

#[test]
fn cannot_delete_document_root() {
    let (_, mut store) = load("<a><b/></a>", 100);
    let root = store.root().unwrap();
    assert!(store.delete_subtree(root).is_err());
}

#[test]
fn root_has_no_siblings() {
    let (_, mut store) = load("<a><b/></a>", 100);
    let root = store.root().unwrap();
    assert!(store
        .insert_before(root, NodeKind::Element, "x", None)
        .is_err());
}

/// Randomized update sequences, mirrored against an in-memory shadow
/// document rebuilt after every operation.
#[test]
fn randomized_updates_match_shadow() {
    let mut rng = StdRng::seed_from_u64(1234);
    for round in 0..8 {
        let k = [12u64, 24, 64, 256][round % 4];
        let (_, mut store) = load("<root><a>seed text</a><b/><c><d/></c></root>", k);
        for step in 0..60 {
            // Re-derive a target from the current document state.
            let shadow = store.to_document().unwrap();
            let tree = shadow.tree();
            let elements: Vec<_> = tree.node_ids().filter(|&v| shadow.is_element(v)).collect();
            let pick = elements[rng.gen_range(0..elements.len())];
            let pick_name = shadow.name(pick).to_string();
            let op = rng.gen_range(0..10u32);
            if op < 6 {
                // Append a child (element or text) to `pick`.
                let target = find_element(&mut store, &pick_name).unwrap();
                if rng.gen_bool(0.5) {
                    store
                        .append_child(target, NodeKind::Element, &format!("n{step}"), None)
                        .unwrap();
                } else {
                    let text = format!("text number {step} with some padding");
                    store
                        .append_child(target, NodeKind::Text, "#text", Some(&text))
                        .unwrap();
                }
            } else if op < 8 {
                // Insert an element before `pick` (unless it is the root).
                if tree.parent(pick).is_some() {
                    let target = find_element(&mut store, &pick_name).unwrap();
                    store
                        .insert_before(target, NodeKind::Element, &format!("s{step}"), None)
                        .unwrap();
                }
            } else {
                // Delete `pick` (unless it is the root).
                if tree.parent(pick).is_some() {
                    let target = find_element(&mut store, &pick_name).unwrap();
                    store.delete_subtree(target).unwrap();
                }
            }
            // Invariant: every record respects the weight limit.
            store.check_record_weights().unwrap();
        }
        // The store still reconstructs a coherent document.
        let final_doc = store.to_document().unwrap();
        assert!(!final_doc.is_empty());
    }
}

#[test]
fn updates_persist_across_reopen() {
    use natix_store::FilePager;
    let dir = std::env::temp_dir().join(format!("natix-upd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("upd.natix");
    let doc = parse("<a><b/></a>").unwrap();
    let expected;
    {
        let pager = FilePager::create(&path).unwrap();
        let mut store = bulkload_with(
            &doc,
            &Km,
            64,
            Box::new(pager),
            StoreConfig {
                record_limit_slots: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let root = store.root().unwrap();
        store
            .append_child(root, NodeKind::Element, "c", None)
            .unwrap();
        expected = store.to_document().unwrap().to_xml();
        store.persist().unwrap();
    }
    {
        let pager = FilePager::open(&path).unwrap();
        let mut store = XmlStore::open(Box::new(pager), StoreConfig::default()).unwrap();
        assert_eq!(store.to_document().unwrap().to_xml(), expected);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bulk_updates_on_generated_document() {
    let doc = xmark(GenConfig {
        scale: 0.002,
        seed: 99,
    });
    let mut store = bulkload_with(
        &doc,
        &Ekm,
        256,
        Box::new(MemPager::new()),
        StoreConfig::default(),
    )
    .unwrap();
    // Grow every region with extra items.
    for i in 0..30 {
        let regions = find_element(&mut store, "regions").unwrap();
        let item = store
            .append_child(regions, NodeKind::Element, "late_item", None)
            .unwrap();
        store
            .append_child(
                item,
                NodeKind::Text,
                "#text",
                Some(&format!("late content number {i} of considerable length")),
            )
            .unwrap();
    }
    store.check_record_weights().unwrap();
    let back = store.to_document().unwrap();
    assert_eq!(back.len(), doc.len() + 60);
}

#[test]
fn compact_reclaims_space() {
    let (_, mut store) = load("<list></list>", 24);
    // Grow, then shrink: leaves dead slots and freed records behind.
    for i in 0..60 {
        let root = store.root().unwrap();
        let e = store
            .append_child(root, NodeKind::Element, "entry", None)
            .unwrap();
        store
            .append_child(e, NodeKind::Text, "#text", Some(&format!("payload {i}")))
            .unwrap();
    }
    for _ in 0..45 {
        let e = find_element(&mut store, "entry").unwrap();
        store.delete_subtree(e).unwrap();
    }
    let before_pages = store.page_count();
    let before_xml = store.to_document().unwrap().to_xml();

    let mut compacted = store
        .compact(Box::new(MemPager::new()), StoreConfig::default())
        .unwrap();
    assert!(compacted.page_count() < before_pages);
    assert_eq!(compacted.to_document().unwrap().to_xml(), before_xml);
    assert_eq!(compacted.live_record_count(), store.live_record_count());
    compacted.check_record_weights().unwrap();

    // Updates keep working after compaction.
    let root = compacted.root().unwrap();
    compacted
        .append_child(root, NodeKind::Element, "post_compact", None)
        .unwrap();
    assert!(compacted
        .to_document()
        .unwrap()
        .to_xml()
        .contains("<post_compact/>"));
}

/// First element child (anywhere in the tree) stored in a different
/// record than its parent — i.e. an element fragment root reached
/// through a proxy entry.
fn proxied_element_child(store: &mut XmlStore) -> Option<NodeRef> {
    let root = store.root().unwrap();
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        let mut found = None;
        let mut kids = Vec::new();
        store
            .for_each_child(r, |c, kind, _| {
                if kind == NodeKind::Element {
                    if c.record != r.record && found.is_none() {
                        found = Some(c);
                    }
                    kids.push(c);
                }
            })
            .unwrap();
        if found.is_some() {
            return found;
        }
        stack.extend(kids);
    }
    None
}

/// Four sibling subtrees of weight 5 at K = 8: no two fit together, so
/// at least one element child of the root sits behind a proxy.
const PROXY_HEAVY: &str = concat!(
    "<a><b>text weight of four slots aa</b><c>text weight of four slots bb</c>",
    "<d>text weight of four slots cc</d><e>text weight of four slots dd</e></a>",
);

#[test]
fn insert_before_a_fragment_root() {
    let (_, mut store) = load(PROXY_HEAVY, 8);
    let target = proxied_element_child(&mut store).expect("some element is behind a proxy");
    let name = {
        let label = store.node_label(target).unwrap();
        store.label_name(label).to_string()
    };
    let before = store.to_document().unwrap().to_xml();
    store
        .insert_before(target, NodeKind::Element, "mid", None)
        .unwrap();
    store.check_consistency().unwrap();
    let expected = before.replacen(&format!("<{name}>"), &format!("<mid/><{name}>"), 1);
    assert_eq!(store.to_document().unwrap().to_xml(), expected);
}

#[test]
fn delete_last_local_child_behind_a_proxy() {
    let (_, mut store) = load(PROXY_HEAVY, 8);
    let target = proxied_element_child(&mut store).expect("some element is behind a proxy");
    let name = {
        let label = store.node_label(target).unwrap();
        store.label_name(label).to_string()
    };
    // The proxied element's only child (its text) lives in the same
    // record: deleting it empties the fragment root's local subtree.
    let mut text_child = None;
    store
        .for_each_child(target, |c, kind, _| {
            if kind == NodeKind::Text {
                text_child = Some(c);
            }
        })
        .unwrap();
    let text_child = text_child.expect("proxied element has a text child");
    assert_eq!(
        text_child.record, target.record,
        "text is local to the proxied record"
    );
    let before = store.to_document().unwrap().to_xml();
    store.delete_subtree(text_child).unwrap();
    store.check_consistency().unwrap();
    let emptied = before.replacen(
        &format!("<{name}>text weight of four slots"),
        &format!("<{name}>"),
        1,
    );
    // Drop the remainder of the deleted text (" aa</x>" etc. varies).
    let emptied = {
        let open = format!("<{name}>");
        let close = format!("</{name}>");
        let i = emptied.find(&open).unwrap() + open.len();
        let j = emptied.find(&close).unwrap();
        format!("{}{}", &emptied[..i], &emptied[j..]).replacen(
            &format!("<{name}></{name}>"),
            &format!("<{name}/>"),
            1,
        )
    };
    assert_eq!(store.to_document().unwrap().to_xml(), emptied);
    // Deleting the emptied fragment root itself frees its record.
    let live = store.live_record_count();
    let target = find_element(&mut store, &name).unwrap();
    store.delete_subtree(target).unwrap();
    store.check_consistency().unwrap();
    assert!(store.live_record_count() < live, "proxied record not freed");
}

#[test]
fn single_node_exactly_at_weight_k_is_accepted() {
    const K: u64 = 8;
    let (_, mut store) = load("<a/>", K);
    // 56 content bytes = 7 slots, plus the metadata slot: exactly K.
    let text = "x".repeat(8 * (K as usize - 1));
    assert_eq!(natix_xml::node_weight(NodeKind::Text, text.len()), K);
    let root = store.root().unwrap();
    store
        .append_child(root, NodeKind::Text, "#text", Some(&text))
        .unwrap();
    store.check_consistency().unwrap();
    // One more byte tips the node over the limit and must be rejected...
    let too_big = "x".repeat(8 * (K as usize - 1) + 1);
    let root = store.root().unwrap();
    assert!(store
        .append_child(root, NodeKind::Text, "#text", Some(&too_big))
        .is_err());
    // ...and the failed insert rolled back cleanly.
    store.check_consistency().unwrap();
    assert_eq!(
        store.to_document().unwrap().to_xml(),
        format!("<a>{text}</a>")
    );
}
