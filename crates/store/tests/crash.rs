//! Crash-recovery tests: power cuts (clean and torn) at *every* write
//! event of an update operation must leave a page file that reopens to
//! either the pre- or the post-operation state, with a fully consistent
//! record graph. Transient I/O errors must roll the live store back.

use natix_core::Ekm;
use natix_store::{
    bulkload_with, fsck, FaultInjectingPager, FaultSchedule, NodeRef, SharedMemPager, StoreConfig,
    StoreResult, XmlStore,
};
use natix_xml::{parse, NodeKind};

/// Bulkload `xml` onto a shared in-memory disk; returns the disk snapshot
/// and the document serialization.
fn base(xml: &str, k: u64) -> (Vec<u8>, String) {
    let doc = parse(xml).unwrap();
    let disk = SharedMemPager::new();
    let store = bulkload_with(
        &doc,
        &Ekm,
        k,
        Box::new(disk.clone()),
        StoreConfig {
            record_limit_slots: k,
            ..Default::default()
        },
    )
    .unwrap();
    drop(store);
    (disk.snapshot(), doc.to_xml())
}

fn find_element(store: &mut XmlStore, name: &str) -> Option<NodeRef> {
    let want = store.label_id(name)?;
    let root = store.root().unwrap();
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        if store.node_label(r).unwrap() == want {
            return Some(r);
        }
        let mut kids = Vec::new();
        store
            .for_each_child(r, |c, kind, _| {
                if kind == NodeKind::Element {
                    kids.push(c);
                }
            })
            .unwrap();
        stack.extend(kids);
    }
    None
}

/// Run `op` against a store reopened from `snap` with a power cut at every
/// write event (clean and torn). After each crash, reopening from the
/// surviving bytes must yield a consistent store equal to the pre- or
/// post-state. Returns the number of crash points exercised.
fn crash_sweep(snap: &[u8], xml_pre: &str, op: impl Fn(&mut XmlStore) -> StoreResult<()>) -> u64 {
    // Post-state, from a fault-free run.
    let xml_post = {
        let disk = SharedMemPager::from_snapshot(snap);
        let mut store = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        op(&mut store).unwrap();
        drop(store);
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        re.to_document().unwrap().to_xml()
    };
    assert_ne!(xml_post, xml_pre, "op must change the document");

    let mut points = 0;
    for torn in [false, true] {
        let mut n = 1u64;
        loop {
            let disk = SharedMemPager::from_snapshot(snap);
            let faulty =
                FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::power_cut(n, torn));
            let mut store = XmlStore::open(Box::new(faulty), StoreConfig::default()).unwrap();
            let r = op(&mut store);
            drop(store);
            // Restart: recovery must produce a consistent store.
            let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default())
                .unwrap_or_else(|e| panic!("reopen failed at n={n} torn={torn}: {e}"));
            re.check_consistency()
                .unwrap_or_else(|e| panic!("inconsistent at n={n} torn={torn}: {e}"));
            let got = re.to_document().unwrap().to_xml();
            // Recovery checkpoints, so a scrub of the recovered bytes
            // must come back clean at every crash point.
            drop(re);
            let scrub = fsck(&mut disk.clone(), false);
            assert!(
                scrub.clean(),
                "post-recovery scrub not clean at n={n} torn={torn}:\n{scrub}"
            );
            points += 1;
            if r.is_ok() {
                // The cut never fired: the op committed in fewer writes.
                assert_eq!(got, xml_post, "n={n} torn={torn}");
                break;
            }
            assert!(
                got == xml_pre || got == xml_post,
                "crash at n={n} torn={torn} left a third state:\n  got: {got}\n  pre: {xml_pre}\n post: {xml_post}"
            );
            n += 1;
            assert!(n < 10_000, "crash sweep did not terminate");
        }
    }
    points
}

#[test]
fn append_survives_power_cut_at_every_write() {
    let (snap, xml_pre) = base("<a><b/><c/></a>", 64);
    crash_sweep(&snap, &xml_pre, |store| {
        let root = store.root()?;
        store
            .append_child(root, NodeKind::Text, "#text", Some("crash me please"))
            .map(|_| ())
    });
}

#[test]
fn splitting_append_survives_power_cut_at_every_write() {
    // Small K: the append overflows the root record and forces a split —
    // the multi-record rewrite is the interesting crash window.
    let (snap, xml_pre) = base(
        "<list><e>one entry of text</e><e>two entry of text</e><e>three entries</e></list>",
        16,
    );
    let points = crash_sweep(&snap, &xml_pre, |store| {
        let root = store.root()?;
        store
            .append_child(root, NodeKind::Text, "#text", Some("heavy payload text"))
            .map(|_| ())
    });
    assert!(points > 10, "expected a real write window, got {points}");
}

#[test]
fn delete_spanning_records_survives_power_cut_at_every_write() {
    let (snap, xml_pre) = base(
        concat!(
            "<a><b><p>a rather long run of text that will not fit</p>",
            "<q>another rather long run of text that will not fit</q></b>",
            "<c><r>yet another rather long run of text here</r></c></a>",
        ),
        8,
    );
    crash_sweep(&snap, &xml_pre, |store| {
        let b = find_element(store, "b").expect("b exists");
        store.delete_subtree(b)
    });
}

#[test]
fn insert_before_fragment_root_survives_power_cut() {
    let (snap, xml_pre) = base(
        "<a><b>some text content here</b><c>more text content here</c></a>",
        12,
    );
    crash_sweep(&snap, &xml_pre, |store| {
        let c = find_element(store, "c").expect("c exists");
        store
            .insert_before(c, NodeKind::Element, "mid", None)
            .map(|_| ())
    });
}

#[test]
fn transient_write_error_rolls_back_the_live_store() {
    let (snap, xml_pre) = base("<a><b/><c/></a>", 64);
    let xml_post = {
        let disk = SharedMemPager::from_snapshot(&snap);
        let mut store = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        let root = store.root().unwrap();
        store
            .append_child(root, NodeKind::Element, "d", None)
            .unwrap();
        store.to_document().unwrap().to_xml()
    };
    let mut n = 1u64;
    loop {
        let disk = SharedMemPager::from_snapshot(&snap);
        let faulty =
            FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::write_error(n));
        let mut store = XmlStore::open(Box::new(faulty), StoreConfig::default()).unwrap();
        let root = store.root().unwrap();
        let r = store.append_child(root, NodeKind::Element, "d", None);
        // Whatever happened, the *same live handle* must be usable and in
        // the pre- or post-state (transient faults don't kill the store).
        store.check_consistency().unwrap();
        let got = store.to_document().unwrap().to_xml();
        assert!(
            got == xml_pre || got == xml_post,
            "write error at {n} left a third live state: {got}"
        );
        // And so must a store reopened from disk.
        drop(store);
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        let disk_xml = re.to_document().unwrap().to_xml();
        assert!(disk_xml == xml_pre || disk_xml == xml_post, "n={n}");
        if r.is_ok() {
            break;
        }
        n += 1;
        assert!(n < 10_000, "error sweep did not terminate");
    }
}

#[test]
fn transient_read_error_is_survivable() {
    let (snap, xml_pre) = base("<a><b>text payload</b><c/></a>", 32);
    for n in 1..40u64 {
        let disk = SharedMemPager::from_snapshot(&snap);
        let faulty = FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::read_error(n));
        // The read error may hit open() itself: that must be a clean error.
        let Ok(mut store) = XmlStore::open(Box::new(faulty), StoreConfig::default()) else {
            continue;
        };
        let r = (|| -> StoreResult<()> {
            let root = store.root()?;
            store
                .append_child(root, NodeKind::Element, "d", None)
                .map(|_| ())
        })();
        drop(store);
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        let got = re.to_document().unwrap().to_xml();
        if r.is_err() {
            assert_eq!(got, xml_pre, "failed op must leave the pre-state, n={n}");
        }
    }
}

#[test]
fn second_recovery_after_crash_before_header_flip_is_a_no_op() {
    // Crash an op after its commit point (journal header is the winner),
    // run a first recovery that replays the journal fully but crashes at
    // the very write that re-persists the journal-free header, then
    // recover again. The second replay writes the same images over the
    // same pages: outside the two header slots it must not change a byte.
    let (snap, _xml_pre) = base(
        "<list><e>one entry of text</e><e>two entry of text</e></list>",
        16,
    );
    let mut exercised = 0;
    for n in 1..200u64 {
        let disk = SharedMemPager::from_snapshot(&snap);
        let faulty =
            FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::power_cut(n, false));
        let mut store = XmlStore::open(Box::new(faulty), StoreConfig::default()).unwrap();
        let root = store.root().unwrap();
        let r = store.append_child(root, NodeKind::Text, "#text", Some("heavy payload text"));
        drop(store);
        if r.is_ok() {
            break;
        }
        let crashed = disk.snapshot();
        // Keep only crash points where the commit point was passed: a
        // clean recovery must land in the post-state (journal replayed).
        {
            let probe = SharedMemPager::from_snapshot(&crashed);
            let mut re = XmlStore::open(Box::new(probe.clone()), StoreConfig::default()).unwrap();
            if !re
                .to_document()
                .unwrap()
                .to_xml()
                .contains("heavy payload text")
            {
                continue;
            }
        }
        // Find the write count of a full recovery: the last m whose cut
        // still fires is the header-flip write itself — recovery replayed
        // every journal page and died re-persisting the header.
        let mut m_last_fault = 0;
        for m in 1..200u64 {
            let d = SharedMemPager::from_snapshot(&crashed);
            let f =
                FaultInjectingPager::new(Box::new(d.clone()), FaultSchedule::power_cut(m, false));
            if XmlStore::open(Box::new(f), StoreConfig::default()).is_ok() {
                break;
            }
            m_last_fault = m;
        }
        assert!(m_last_fault > 0, "recovery performed no writes at n={n}");
        let d = SharedMemPager::from_snapshot(&crashed);
        let f = FaultInjectingPager::new(
            Box::new(d.clone()),
            FaultSchedule::power_cut(m_last_fault, false),
        );
        let _ = XmlStore::open(Box::new(f), StoreConfig::default());
        let mid = d.snapshot();

        // Second, fault-free recovery.
        let d2 = SharedMemPager::from_snapshot(&mid);
        let mut re = XmlStore::open(Box::new(d2.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        assert!(re
            .to_document()
            .unwrap()
            .to_xml()
            .contains("heavy payload text"));
        drop(re);
        let after = d2.snapshot();
        assert_eq!(mid.len(), after.len(), "second recovery allocated pages");
        const P: usize = natix_store::PAGE_SIZE;
        for (i, (a, b)) in mid.chunks(P).zip(after.chunks(P)).enumerate() {
            if i >= 2 {
                assert_eq!(a, b, "n={n}: second replay rewrote data page {i}");
            }
        }
        // And a third open changes nothing at all: the flip is persisted.
        let d3 = SharedMemPager::from_snapshot(&after);
        XmlStore::open(Box::new(d3.clone()), StoreConfig::default()).unwrap();
        assert_eq!(
            d3.snapshot(),
            after,
            "n={n}: recovery after success not a no-op"
        );
        let scrub = fsck(&mut SharedMemPager::from_snapshot(&after), false);
        assert!(scrub.clean(), "n={n}:\n{scrub}");
        exercised += 1;
    }
    assert!(exercised > 0, "no post-commit-point crash windows found");
}

#[test]
fn recovery_is_idempotent_across_repeated_crashes_during_replay() {
    // Crash mid-operation, then crash again during the recovery replay
    // itself: the journal header stays the winner until a replay finishes,
    // so any number of partial recoveries converges.
    let (snap, xml_pre) = base(
        "<list><e>one entry of text</e><e>two entry of text</e></list>",
        16,
    );
    // Pick a crash point deep enough to land after the commit header for
    // at least some n; sweep a window to be sure we hit both sides.
    for n in 1..60u64 {
        let disk = SharedMemPager::from_snapshot(&snap);
        let faulty =
            FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::power_cut(n, true));
        let mut store = XmlStore::open(Box::new(faulty), StoreConfig::default()).unwrap();
        let root = store.root().unwrap();
        let r = store.append_child(root, NodeKind::Text, "#text", Some("heavy payload text"));
        drop(store);
        let done = r.is_ok();
        // First recovery attempt also crashes (cut during its writes).
        for m in 1..10u64 {
            let f2 = FaultInjectingPager::new(
                Box::new(disk.clone()),
                FaultSchedule::power_cut(m, m % 2 == 0),
            );
            let _ = XmlStore::open(Box::new(f2), StoreConfig::default());
        }
        // Final, fault-free recovery must still converge.
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        let got = re.to_document().unwrap().to_xml();
        assert!(
            got == xml_pre || got.contains("heavy payload text"),
            "n={n}: {got}"
        );
        drop(re);
        let scrub = fsck(&mut disk.clone(), false);
        assert!(
            scrub.clean(),
            "scrub after converged recovery, n={n}:\n{scrub}"
        );
        if done {
            break;
        }
    }
}
