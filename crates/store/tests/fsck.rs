//! End-to-end `fsck` coverage: clean scrubs, per-class bit-rot
//! detection, salvage repair with quarantine, and exact degraded reads
//! over the repaired store.

use std::collections::HashSet;

use natix_core::{Ekm, Partitioner};
use natix_store::{
    corrupt_checksum_of_class, corrupt_page_of_class, fsck, page_class_of, OpenMode, PageClass,
    Pager, SharedMemPager, StoreConfig, XmlStore, PAGE_SIZE,
};
use natix_xml::Document;

fn sample_doc() -> Document {
    // Items fat enough that the records spread over several pages: a
    // single rotted page then hits some partitions and spares the rest
    // (in particular the root record on the first record page).
    let mut s = String::from("<site>");
    for i in 0..24 {
        s.push_str(&format!(
            "<item id=\"i{i}\"><name>object number {i}</name>\
             <note>{}</note></item>",
            format!("text content for padding {i} ").repeat(30)
        ));
    }
    s.push_str("</site>");
    natix_xml::parse(&s).unwrap()
}

/// A document whose single record spills into an overflow chain.
fn overflow_doc() -> Document {
    natix_xml::parse(&format!("<blob>{}</blob>", "x".repeat(3 * PAGE_SIZE))).unwrap()
}

/// Bulkload `doc` onto a shared backend and return a raw handle onto
/// the same bytes.
fn load(doc: &Document, k: u64) -> (XmlStore, SharedMemPager) {
    let p = Ekm.partition(doc.tree(), k).unwrap();
    let shared = SharedMemPager::new();
    let handle = shared.clone();
    let store = XmlStore::bulkload(doc, &p, Box::new(shared), StoreConfig::default()).unwrap();
    (store, handle)
}

fn loaded_store(k: u64) -> (XmlStore, SharedMemPager) {
    load(&sample_doc(), k)
}

/// Deterministically rot the highest-numbered record page — never the
/// first one, which holds the root record.
fn corrupt_last_record_page(handle: &mut SharedMemPager) -> u32 {
    let count = handle.page_count();
    let mut buf = [0u8; PAGE_SIZE];
    let mut target = None;
    for id in 2..count {
        handle.read(id, &mut buf).unwrap();
        if buf.iter().any(|&b| b != 0) && page_class_of(&buf) == PageClass::Record {
            target = Some(id);
        }
    }
    let id = target.expect("a record page");
    handle.read(id, &mut buf).unwrap();
    for b in &mut buf[100..200] {
        *b ^= 0x5A;
    }
    handle.write(id, &buf).unwrap();
    id
}

#[test]
fn fresh_store_scrubs_clean() {
    let (store, mut handle) = loaded_store(160);
    let records = store.record_count();
    drop(store);
    let report = fsck(&mut handle, false);
    assert!(report.clean(), "{report}");
    assert_eq!(report.format, 3);
    assert_eq!(report.records_checked as usize, records);
    assert!(!report.repaired);
}

#[test]
fn committed_updates_scrub_clean() {
    let (mut store, mut handle) = loaded_store(160);
    let root = store.root().unwrap();
    for i in 0..8 {
        store
            .append_child(
                root,
                natix_xml::NodeKind::Element,
                "extra",
                Some(&format!("added {i}")),
            )
            .unwrap();
        store.commit().unwrap();
    }
    drop(store);
    let report = fsck(&mut handle, false);
    // Committed updates leave debris (stale catalogs, retired journals)
    // but the committed state itself must be spotless.
    assert!(report.clean(), "{report}");
}

#[test]
fn detects_bit_rot_in_every_referenced_class() {
    for class in [PageClass::Record, PageClass::Overflow, PageClass::Catalog] {
        let (store, mut handle) = if class == PageClass::Overflow {
            // Overflow chains only appear when a record outgrows a page.
            load(&overflow_doc(), 1 << 20)
        } else {
            loaded_store(160)
        };
        drop(store);
        let hit = corrupt_page_of_class(&mut handle, 7, class, 3).unwrap();
        assert!(hit.is_some(), "no {class} page to corrupt");
        let report = fsck(&mut handle, false);
        assert!(!report.clean(), "{class} corruption not detected: {report}");
        // And the strict read path agrees: open + full read must fail.
        let outcome = XmlStore::open(Box::new(handle.clone()), StoreConfig::default())
            .and_then(|mut s| s.to_document());
        let err = outcome.expect_err("strict read must notice the damage");
        assert!(err.is_corruption(), "{err}");
    }
}

#[test]
fn detects_checksum_field_corruption() {
    let (store, mut handle) = loaded_store(160);
    drop(store);
    let hit = corrupt_checksum_of_class(&mut handle, 3, PageClass::Record).unwrap();
    assert!(hit.is_some());
    let report = fsck(&mut handle, false);
    assert!(!report.clean(), "{report}");
}

#[test]
fn repair_recovers_everything_but_the_hit_partitions() {
    // Small K: many records, so a single rotted page leaves plenty of
    // intact partitions to salvage.
    let (mut store, mut handle) = loaded_store(160);
    let clean_doc = store.to_document().unwrap();
    assert!(store.record_count() > 4);
    let snapshot = handle.snapshot();
    drop(store);

    let hit = corrupt_last_record_page(&mut handle);
    let report = fsck(&mut handle, true);
    assert!(report.repaired, "repair did not run: {report}");
    assert!(!report.quarantined.is_empty(), "{report}");
    let post = fsck(&mut handle, false);
    assert!(
        post.clean(),
        "store still damaged after repair: {post}\nhit page {hit}"
    );

    // Degraded read: the surviving partitions, plus an exact report of
    // the missing ones.
    let mut degraded = XmlStore::open_with(
        Box::new(handle.clone()),
        StoreConfig::default(),
        OpenMode::Degraded,
    )
    .unwrap();
    let (doc, damage) = degraded.to_document_degraded().unwrap();
    let missing = damage.records();
    assert_eq!(
        missing,
        report.quarantined.iter().copied().collect::<HashSet<u32>>(),
        "damage report disagrees with the repair quarantine"
    );

    // Oracle: a partial read of the undamaged twin excluding exactly the
    // reported records must reproduce the degraded document.
    let twin = SharedMemPager::from_snapshot(&snapshot);
    let mut clean = XmlStore::open(Box::new(twin), StoreConfig::default()).unwrap();
    assert_eq!(clean.to_document().unwrap().to_xml(), clean_doc.to_xml());
    let expected = clean.to_document_partial(&missing).unwrap();
    assert_eq!(doc.to_xml(), expected.to_xml());
}

#[test]
fn repair_survives_losing_both_header_slots() {
    let (store, mut handle) = loaded_store(160);
    drop(store);
    let junk = [0xA5u8; PAGE_SIZE];
    handle.write(0, &junk).unwrap();
    handle.write(1, &junk).unwrap();
    let err = match XmlStore::open(Box::new(handle.clone()), StoreConfig::default()) {
        Ok(_) => panic!("open must fail with both header slots destroyed"),
        Err(e) => e,
    };
    assert!(err.is_corruption(), "{err}");

    let report = fsck(&mut handle, true);
    assert!(report.repaired, "{report}");
    assert!(report.quarantined.is_empty(), "{report}");
    assert!(fsck(&mut handle, false).clean());

    let mut back = XmlStore::open(Box::new(handle.clone()), StoreConfig::default()).unwrap();
    assert_eq!(back.to_document().unwrap().to_xml(), sample_doc().to_xml());
}

#[test]
fn repair_refuses_when_the_root_is_lost() {
    // Single-record store: the root record IS the store; rotting it must
    // make repair fail loudly rather than fabricate a document.
    let doc = natix_xml::parse("<tiny><a>x</a></tiny>").unwrap();
    let (store, mut handle) = load(&doc, 1 << 20);
    assert_eq!(store.record_count(), 1);
    drop(store);
    corrupt_page_of_class(&mut handle, 5, PageClass::Record, 4)
        .unwrap()
        .expect("the record page");
    let report = fsck(&mut handle, true);
    assert!(!report.repaired, "{report}");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "root-unrecoverable"),
        "{report}"
    );
}

#[test]
fn quarantined_records_fail_strict_reads() {
    let (store, mut handle) = loaded_store(160);
    drop(store);
    corrupt_last_record_page(&mut handle);
    let report = fsck(&mut handle, true);
    assert!(
        report.repaired && !report.quarantined.is_empty(),
        "{report}"
    );

    let mut strict = XmlStore::open(Box::new(handle.clone()), StoreConfig::default()).unwrap();
    assert_eq!(
        strict.quarantined_records(),
        report.quarantined,
        "reopen must surface the quarantine"
    );
    let err = strict.to_document().unwrap_err();
    assert!(err.is_corruption(), "{err}");
}
