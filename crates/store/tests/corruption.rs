//! Failure injection: random byte corruption in pages must surface as
//! `StoreError`s (or be harmless), never as panics.

use natix_core::{Ekm, Partitioner};
use natix_store::{MemPager, Pager, StoreConfig, XmlStore, PAGE_SIZE};
use proptest::prelude::*;

/// A pager that flips one byte of one page on every read.
struct CorruptingPager {
    inner: MemPager,
    target_page: u32,
    offset: usize,
    xor: u8,
}

impl Pager for CorruptingPager {
    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }
    fn allocate(&mut self) -> natix_store::StoreResult<u32> {
        self.inner.allocate()
    }
    fn read(&mut self, id: u32, buf: &mut [u8; PAGE_SIZE]) -> natix_store::StoreResult<()> {
        self.inner.read(id, buf)?;
        if id == self.target_page {
            buf[self.offset] ^= self.xor;
        }
        Ok(())
    }
    fn write(&mut self, id: u32, buf: &[u8; PAGE_SIZE]) -> natix_store::StoreResult<()> {
        self.inner.write(id, buf)
    }
}

fn sample_doc() -> natix_xml::Document {
    let mut s = String::from("<site>");
    for i in 0..20 {
        s.push_str(&format!(
            "<item id=\"i{i}\"><name>object number {i}</name>\
             <note>some text content for padding {i}</note></item>"
        ));
    }
    s.push_str("</site>");
    natix_xml::parse(&s).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A full traversal over a store whose backend corrupts one byte either
    /// succeeds (the flip landed in free space or content bytes) or returns
    /// an error — it must never panic.
    #[test]
    fn corrupted_pages_never_panic(
        target_page in 0u32..16,
        offset in 0..PAGE_SIZE,
        xor in 1..=255u8,
    ) {
        let doc = sample_doc();
        let p = Ekm.partition(doc.tree(), 32).unwrap();
        let pager = CorruptingPager {
            inner: MemPager::new(),
            target_page,
            offset,
            xor,
        };
        // Tiny buffer pool and record cache so pages really are re-read
        // (and re-corrupted) during the traversal.
        let config = StoreConfig {
            buffer_pages: 2,
            record_cache: 1,
            ..Default::default()
        };
        // Bulkload itself may already trip over the corruption: that must
        // be an Err, not a panic.
        if let Ok(mut store) = XmlStore::bulkload(&doc, &p, Box::new(pager), config) {
            let _ = store.to_document();
        }
    }

    /// Same for reopening from a corrupted page file (header/catalog
    /// corruption paths).
    #[test]
    fn corrupted_reopen_never_panics(
        target_page in 0u32..16,
        offset in 0..PAGE_SIZE,
        xor in 1..=255u8,
    ) {
        let doc = sample_doc();
        let p = Ekm.partition(doc.tree(), 32).unwrap();
        let clean = XmlStore::bulkload(
            &doc,
            &p,
            Box::new(MemPager::new()),
            StoreConfig::default(),
        )
        .unwrap();
        drop(clean);
        // Rebuild the same pages, then reopen through a corrupting pager.
        let pager = CorruptingPager {
            inner: MemPager::new(),
            target_page,
            offset,
            xor,
        };
        let store = XmlStore::bulkload(&doc, &p, Box::new(pager), StoreConfig::default());
        if let Ok(store) = store {
            drop(store);
        }
        // Reopen path: a fresh corrupting pager over a fresh bulkload is
        // not directly possible (MemPager state lives in the store), so
        // exercise open() against an arbitrary page image instead.
        let mut raw = MemPager::new();
        for _ in 0..4 {
            let id = raw.allocate().unwrap();
            let mut page = [0u8; PAGE_SIZE];
            if id == 0 {
                page[..8].copy_from_slice(b"NATIXST1");
            }
            page[(offset + id as usize) % PAGE_SIZE] = xor;
            raw.write(id, &page).unwrap();
        }
        let _ = XmlStore::open(Box::new(raw), StoreConfig::default());
    }
}
