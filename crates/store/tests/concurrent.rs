//! Concurrent-access integration tests: snapshot isolation across
//! interleaved writes, retry-absorbs-transient-faults (commits exactly
//! once), fsck racing a writer, and reader survival of writer death.

use natix_core::Ekm;
use natix_store::{
    bulkload_with, fsck, AdmissionConfig, FaultInjectingPager, FaultSchedule, RetryPolicy,
    RetryingPager, SharedMemPager, SharedStore, StoreConfig, XmlStore,
};
use natix_xml::{parse, NodeKind};

fn config(k: u64) -> StoreConfig {
    StoreConfig {
        record_limit_slots: k,
        ..Default::default()
    }
}

/// Bulkload `xml` onto a shared in-memory disk and wrap it for shared
/// access; snapshot readers clone the same disk.
fn shared(xml: &str, k: u64, admission: AdmissionConfig) -> (SharedStore, SharedMemPager) {
    let doc = parse(xml).unwrap();
    let disk = SharedMemPager::new();
    let store = bulkload_with(&doc, &Ekm, k, Box::new(disk.clone()), config(k)).unwrap();
    (
        SharedStore::new(store, Box::new(disk.clone()), config(k), admission),
        disk,
    )
}

/// Satellite: a transient-then-success fault schedule under the retry
/// layer commits exactly once — never zero times (the retry must absorb
/// the fault) and never twice (a retried commit must not re-apply).
#[test]
fn transient_then_success_schedule_commits_exactly_once() {
    let doc = parse("<list><e>one entry of text</e><e>two entry of text</e></list>").unwrap();
    let disk0 = SharedMemPager::new();
    drop(bulkload_with(&doc, &Ekm, 16, Box::new(disk0.clone()), config(16)).unwrap());
    let snap = disk0.snapshot();

    for schedule in [FaultSchedule::write_error, FaultSchedule::read_error] {
        for n in 1..80u64 {
            let disk = SharedMemPager::from_snapshot(&snap);
            let faulty = FaultInjectingPager::new(Box::new(disk.clone()), schedule(n));
            let retrying = RetryingPager::new(Box::new(faulty), RetryPolicy::new(0xD00D + n));
            let mut store = XmlStore::open(Box::new(retrying), StoreConfig::default())
                .unwrap_or_else(|e| panic!("open failed under retry at n={n}: {e}"));
            let root = store.root().unwrap();
            store
                .append_child(root, NodeKind::Text, "#text", Some("once-marker"))
                .unwrap_or_else(|e| panic!("op failed under retry at n={n}: {e}"));
            drop(store);

            // The committed effect is applied exactly once.
            let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
            re.check_consistency().unwrap();
            let got = re.to_document().unwrap().to_xml();
            assert_eq!(
                got.matches("once-marker").count(),
                1,
                "n={n}: commit applied wrong number of times:\n{got}"
            );
            drop(re);
            let scrub = fsck(&mut disk.clone(), false);
            assert!(scrub.clean(), "n={n}:\n{scrub}");
        }
    }
}

/// Satellite: a scrub racing a writer must never report phantom
/// corruption for pages of an in-flight commit. With a pin held every
/// commit stays in its in-flight window (journal published, checkpoint
/// deferred) — the widest window a concurrent fsck can observe.
#[test]
fn scrub_racing_writer_sees_no_phantom_corruption() {
    let (shared, disk) = shared(
        "<list><e>one entry of text</e><e>two entry of text</e></list>",
        16,
        AdmissionConfig::default(),
    );
    let mut pinned = shared.begin_read().unwrap();
    let pinned_xml = pinned.document().unwrap().to_xml();
    let mut writer = shared.begin_write().unwrap();
    for i in 0..6 {
        writer
            .mutate(|s| {
                let root = s.root()?;
                s.append_child(
                    root,
                    NodeKind::Text,
                    "#text",
                    Some(&format!("racing payload number {i}")),
                )
                .map(|_| ())
            })
            .unwrap();
        // Scrub between every commit: the backend holds a committed
        // journal whose checkpoint has not run — in-flight state.
        let report = shared.scrub().unwrap();
        assert!(report.clean(), "scrub after commit {i}:\n{report}");
        // A fresh snapshot each round sees the newest committed state
        // while the first snapshot stays on its epoch.
        let mut fresh = shared.begin_read().unwrap();
        let xml = fresh.document().unwrap().to_xml();
        assert!(xml.contains(&format!("racing payload number {i}")));
        assert_eq!(pinned.document().unwrap().to_xml(), pinned_xml);
    }
    drop(pinned);
    drop(writer);
    shared.maintain().unwrap();
    let stats = shared.stats();
    assert!(stats.checkpoints_deferred >= 6, "{stats:?}");
    assert_eq!(stats.pinned_free_violations, 0, "{stats:?}");
    // After the pins drain and the checkpoint + reclamation run, the
    // backing pages still scrub clean and reopen to the final state.
    let report = shared.scrub().unwrap();
    assert!(report.clean(), "{report}");
    drop(shared);
    let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
    re.check_consistency().unwrap();
    assert!(re
        .to_document()
        .unwrap()
        .to_xml()
        .contains("racing payload number 5"));
}

/// Writer death (permanent backend failure mid-commit) must not take
/// down readers: snapshots keep serving the last committed epoch through
/// their own clean pagers, and the failure surfaces as a structured
/// error, never as wrong data.
#[test]
fn writer_death_leaves_snapshots_serving_committed_state() {
    let doc = parse("<list><e>one entry of text</e><e>two entry of text</e></list>").unwrap();
    let disk = SharedMemPager::new();
    let store = bulkload_with(&doc, &Ekm, 16, Box::new(disk.clone()), config(16)).unwrap();
    drop(store);
    // Reopen the writer over a pager that will lose power mid-commit;
    // readers get clean clones of the disk.
    let faulty =
        FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::power_cut(3, false));
    let wstore = XmlStore::open(Box::new(faulty), StoreConfig::default()).unwrap();
    let shared = SharedStore::new(
        wstore,
        Box::new(disk.clone()),
        config(16),
        AdmissionConfig::default(),
    );
    let committed = {
        let mut s = shared.begin_read().unwrap();
        s.document().unwrap().to_xml()
    };
    let mut writer = shared.begin_write().unwrap();
    let err = writer
        .mutate(|s| {
            let root = s.root()?;
            s.append_child(root, NodeKind::Text, "#text", Some("never lands"))
                .map(|_| ())
        })
        .unwrap_err();
    assert!(!err.is_transient(), "power cut must be permanent: {err}");
    // Readers are unaffected: same committed bytes, served in full.
    let mut snap = shared.begin_read().unwrap();
    assert_eq!(snap.document().unwrap().to_xml(), committed);
    assert!(!committed.contains("never lands"));
    // The disk itself is still consistent for a fresh open.
    drop(snap);
    drop(writer);
    drop(shared);
    let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
    re.check_consistency().unwrap();
    assert_eq!(re.to_document().unwrap().to_xml(), committed);
}

/// An epoch ladder: pins taken between successive commits each hold
/// their exact version until released, and releasing them back-to-front
/// lets the deferred checkpoint and reclamation catch up.
#[test]
fn epoch_ladder_pins_hold_their_versions() {
    let (shared, _disk) = shared(
        "<list><e>one entry of text</e><e>two entry of text</e></list>",
        16,
        AdmissionConfig::default(),
    );
    let mut writer = shared.begin_write().unwrap();
    let mut rungs = Vec::new();
    for i in 0..4 {
        let mut snap = shared.begin_read().unwrap();
        let xml = snap.document().unwrap().to_xml();
        rungs.push((snap, xml));
        writer
            .mutate(|s| {
                let root = s.root()?;
                s.append_child(
                    root,
                    NodeKind::Text,
                    "#text",
                    Some(&format!("ladder rung number {i}")),
                )
                .map(|_| ())
            })
            .unwrap();
    }
    // Every rung still reads its own version, oldest to newest.
    for (snap, xml) in rungs.iter_mut() {
        assert_eq!(snap.document().unwrap().to_xml(), *xml);
    }
    let epochs: Vec<u64> = rungs.iter().map(|(s, _)| s.epoch()).collect();
    assert!(epochs.windows(2).all(|w| w[0] < w[1]), "{epochs:?}");
    drop(rungs);
    drop(writer);
    shared.maintain().unwrap();
    let stats = shared.stats();
    assert_eq!(stats.snapshots_active, 0, "{stats:?}");
    assert!(stats.checkpoints_applied >= 1, "{stats:?}");
    assert_eq!(stats.pinned_free_violations, 0, "{stats:?}");
    let report = shared.scrub().unwrap();
    assert!(report.clean(), "{report}");
}
