//! Property tests for the CLOCK buffer pool's eviction contract:
//!
//! * a pinned, resident page is never evicted for as long as the pin is
//!   held, across arbitrary access/pin/unpin traces;
//! * an unpinned clean page (or dirty page at/past the write-back floor)
//!   is always evictable, so the pool never grows past its budget plus
//!   the pinned set, and never past the budget at all when nothing is
//!   pinned.
//!
//! Content is modeled alongside: every access checks the page byte the
//! model expects, so write-back eviction and reload must round-trip.

use std::collections::{HashMap, HashSet};

use natix_store::{BufferPool, MemPager, Pager, PAGE_SIZE};
use proptest::prelude::*;

const PAGES: u32 = 12;
const CAPACITY: usize = 4;

/// A pool over a backend with `PAGES` pages, page `i` filled with byte
/// `i`, and every dirty page eligible for write-back eviction (floor 0,
/// the bulkload/compaction regime).
fn pool_under_test() -> BufferPool {
    let mut mem = MemPager::new();
    for i in 0..PAGES {
        let id = mem.allocate().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = i as u8;
        mem.write(id, &buf).unwrap();
    }
    let mut pool = BufferPool::new(Box::new(mem), CAPACITY);
    pool.set_writeback_floor(0);
    pool
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read,
    Write,
    Pin,
    Unpin,
}

fn op_strategy() -> impl Strategy<Value = (u32, Op)> {
    (0..PAGES, 0..4u8).prop_map(|(p, o)| {
        let op = match o {
            0 => Op::Read,
            1 => Op::Write,
            2 => Op::Pin,
            _ => Op::Unpin,
        };
        (p, op)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Over a random pin/unpin/access trace, a page that is pinned and
    /// resident stays resident until unpinned, and the pool stays within
    /// budget + pinned set (an unpinned frame is always evictable here:
    /// clean, or dirty past the floor).
    #[test]
    fn pinned_pages_survive_and_budget_holds(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut pool = pool_under_test();
        let mut pins: HashMap<u32, u32> = HashMap::new();
        let mut content: HashMap<u32, u8> = (0..PAGES).map(|i| (i, i as u8)).collect();
        // Pages that were pinned and resident after the previous op.
        let mut protected: HashSet<u32> = HashSet::new();
        for (page, op) in ops {
            let was_resident = pool.is_resident(page);
            match op {
                Op::Read => {
                    let want = content[&page];
                    let got = pool.with_page(page, false, |b| b[0]).unwrap();
                    prop_assert_eq!(got, want);
                }
                Op::Write => {
                    let next = content[&page].wrapping_add(1);
                    pool.with_page(page, true, |b| b[0] = next).unwrap();
                    content.insert(page, next);
                }
                Op::Pin => {
                    pool.pin_pages([page]);
                    *pins.entry(page).or_insert(0) += 1;
                }
                Op::Unpin => {
                    if let Some(n) = pins.get_mut(&page) {
                        pool.unpin_pages([page]);
                        *n -= 1;
                        if *n == 0 {
                            pins.remove(&page);
                        }
                    }
                }
            }
            for p in &protected {
                if pins.contains_key(p) {
                    prop_assert!(pool.is_resident(*p), "pinned page {} was evicted", p);
                }
            }
            protected = (0..PAGES)
                .filter(|p| pins.contains_key(p) && pool.is_resident(*p))
                .collect();
            // The pool grows only when a miss admits a frame, and the
            // eviction pass right before that admission runs against the
            // current pin set — so the budget bound is checked at growth
            // points. (Unpinning shrinks the pool lazily, at the next
            // miss, and hit-path accesses never evict.)
            if matches!(op, Op::Read | Op::Write) && !was_resident {
                prop_assert!(
                    pool.resident() <= CAPACITY.max(pins.len() + 1),
                    "resident {} exceeds budget {} with {} page(s) pinned",
                    pool.resident(),
                    CAPACITY,
                    pins.len()
                );
            }
        }
        // Release every pin. The pool shrinks lazily — hit-path reads
        // never evict — so force one growth point (an allocation runs
        // the eviction pass) and the budget must hold again; then every
        // page must still read back its latest modeled content.
        let held: Vec<(u32, u32)> = pins.iter().map(|(&p, &n)| (p, n)).collect();
        for (p, n) in held {
            for _ in 0..n {
                pool.unpin_pages([p]);
            }
        }
        pool.allocate().unwrap();
        prop_assert!(
            pool.resident() <= CAPACITY,
            "resident {} exceeds budget {} after pins released",
            pool.resident(),
            CAPACITY
        );
        for p in 0..PAGES {
            let want = content[&p];
            let got = pool.with_page(p, false, |b| b[0]).unwrap();
            prop_assert_eq!(got, want);
            prop_assert!(pool.resident() <= CAPACITY);
        }
    }

    /// With nothing pinned, an unpinned frame is always evictable, so a
    /// random clean/dirty access trace never grows the pool past its
    /// budget — and write-back eviction round-trips every page image.
    #[test]
    fn unpinned_pool_never_exceeds_budget(
        ops in proptest::collection::vec((0..PAGES, any::<bool>()), 1..200),
    ) {
        let mut pool = pool_under_test();
        let mut content: HashMap<u32, u8> = (0..PAGES).map(|i| (i, i as u8)).collect();
        for (page, dirty) in ops {
            if dirty {
                let next = content[&page].wrapping_add(1);
                pool.with_page(page, true, |b| b[0] = next).unwrap();
                content.insert(page, next);
            } else {
                let want = content[&page];
                let got = pool.with_page(page, false, |b| b[0]).unwrap();
                prop_assert_eq!(got, want);
            }
            prop_assert!(
                pool.resident() <= CAPACITY,
                "resident {} exceeds budget {}",
                pool.resident(),
                CAPACITY
            );
        }
        for p in 0..PAGES {
            let want = content[&p];
            let got = pool.with_page(p, false, |b| b[0]).unwrap();
            prop_assert_eq!(got, want);
        }
    }
}

/// Regression: shrinking the budget with `set_capacity` must evict
/// *immediately* — a memory cut cannot wait for the next page fault.
#[test]
fn set_capacity_shrinks_eagerly() {
    let mut pool = pool_under_test();
    for p in 0..8 {
        pool.with_page(p, false, |_| ()).unwrap();
    }
    assert_eq!(pool.resident(), CAPACITY, "warm pool at budget");
    pool.set_capacity(2).unwrap();
    assert_eq!(pool.capacity(), 2);
    assert!(
        pool.resident() <= 2,
        "budget cut left {} resident frames",
        pool.resident()
    );
    // Content must survive re-faulting.
    for p in 0..8 {
        let got = pool.with_page(p, false, |b| b[0]).unwrap();
        assert_eq!(got, p as u8);
    }
}

/// Dirty frames past the write-back floor are written back (not lost)
/// by an eager shrink; pinned frames are tolerated above budget.
#[test]
fn set_capacity_writes_back_dirty_and_respects_pins() {
    let mut pool = pool_under_test();
    for p in 0..4u32 {
        pool.with_page(p, true, |b| b[0] = 100 + p as u8).unwrap();
    }
    pool.pin_pages([0u32]);
    pool.set_capacity(1).unwrap();
    assert!(pool.is_resident(0), "pinned dirty frame evicted by shrink");
    assert!(
        pool.resident() <= 2,
        "shrink left {} frames (budget 1 + 1 pin)",
        pool.resident()
    );
    pool.unpin_pages([0u32]);
    pool.flush().unwrap();
    for p in 0..4u32 {
        let got = pool.with_page(p, false, |b| b[0]).unwrap();
        assert_eq!(got, 100 + p as u8, "dirty page {p} lost in shrink");
    }
}

/// Growing the budget is lazy and harmless: capacity changes, nothing
/// is evicted, and subsequent faults may fill the new headroom.
#[test]
fn set_capacity_grow_is_lazy() {
    let mut pool = pool_under_test();
    for p in 0..4 {
        pool.with_page(p, false, |_| ()).unwrap();
    }
    pool.set_capacity(8).unwrap();
    assert_eq!(pool.resident(), 4, "growing must not evict");
    for p in 0..8 {
        pool.with_page(p, false, |_| ()).unwrap();
    }
    assert_eq!(pool.resident(), 8, "pool fills to the new budget");
}
