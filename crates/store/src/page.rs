//! Slotted pages: the unit of disk I/O.
//!
//! Natix stores several physical records per disk page (paper Sec. 6.4:
//! "the record manager … stores several records on a single disk page").
//! A page is a classic slotted page: a header, a slot array growing
//! forward, and record payloads growing backward from the payload end.
//!
//! ```text
//! +--------+--------+-----------+------------------->        <----------+------+
//! | nslots | free   | slot 0..n |  free space        payload payload ...|frame |
//! +--------+--------+-----------+------------------->        <----------+------+
//! ```
//!
//! Since format version 3, the last [`FRAME_SIZE`] bytes of *every* page
//! (not just slotted ones) hold a typed **page frame**: a magic byte, the
//! format version, a [`PageClass`] tag, and an FNV-64 checksum over the
//! rest of the page. The checksum is stamped by the `ChecksummingPager`
//! on every write and verified on every read, so bit rot anywhere in a
//! page — including a torn half-page write — is detected before the
//! payload is interpreted. Content producers only use the first
//! [`PAYLOAD_SIZE`] bytes and tag the class byte; the checksum field is
//! owned by the pager seam.

/// Page size in bytes (8 KB; four ~2 KB records fit comfortably).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the end of every page for the typed frame:
/// `[magic u8][version u8][class u8][reserved u8][checksum u64]`.
pub const FRAME_SIZE: usize = 12;

/// Usable payload bytes per page (format version 3).
pub const PAYLOAD_SIZE: usize = PAGE_SIZE - FRAME_SIZE;

const FRAME_AT: usize = PAGE_SIZE - FRAME_SIZE;
const FRAME_MAGIC: u8 = 0xF7;
/// On-disk format version stamped into every page frame.
pub const FORMAT_VERSION: u8 = 3;

const HEADER: usize = 4;
const SLOT: usize = 4;
/// Length marker for deleted slots.
const DEAD: u16 = u16::MAX;

/// Maximum payload a single page can hold (one slot + header overhead).
pub const MAX_IN_PAGE: usize = PAYLOAD_SIZE - HEADER - SLOT;

/// What a page holds; stored in the page frame so corruption reports and
/// the `fsck` scrubber can name the victim, and so repair can scan a raw
/// page file for salvageable content without a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageClass {
    /// Allocated but never written (all-zero), or unknown.
    Free,
    /// One of the two ping-pong header slots (pages 0 and 1).
    Header,
    /// A slotted page holding partition records.
    Record,
    /// Part of an overflow chain for a record larger than a page.
    Overflow,
    /// Part of a serialized catalog blob.
    Catalog,
    /// Part of a redo-journal blob.
    Journal,
}

impl PageClass {
    fn to_u8(self) -> u8 {
        match self {
            PageClass::Free => 0,
            PageClass::Header => 1,
            PageClass::Record => 2,
            PageClass::Overflow => 3,
            PageClass::Catalog => 4,
            PageClass::Journal => 5,
        }
    }

    fn from_u8(b: u8) -> PageClass {
        match b {
            1 => PageClass::Header,
            2 => PageClass::Record,
            3 => PageClass::Overflow,
            4 => PageClass::Catalog,
            5 => PageClass::Journal,
            _ => PageClass::Free,
        }
    }
}

impl std::fmt::Display for PageClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PageClass::Free => "free",
            PageClass::Header => "header",
            PageClass::Record => "record",
            PageClass::Overflow => "overflow",
            PageClass::Catalog => "catalog",
            PageClass::Journal => "journal",
        })
    }
}

/// FNV-1a 64-bit hash: the checksum primitive for page frames, headers,
/// journal blobs, and catalog blobs.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Tag a page image with its class (content producers call this; the
/// checksum itself is stamped by the pager seam on write).
pub fn set_page_class(buf: &mut [u8; PAGE_SIZE], class: PageClass) {
    buf[FRAME_AT + 2] = class.to_u8();
}

/// The class a page image claims to be.
pub fn page_class_of(buf: &[u8; PAGE_SIZE]) -> PageClass {
    PageClass::from_u8(buf[FRAME_AT + 2])
}

/// Stamp the frame magic, version, and checksum over a page image
/// (leaving the class byte as the producer set it).
pub fn seal_frame(buf: &mut [u8; PAGE_SIZE]) {
    buf[FRAME_AT] = FRAME_MAGIC;
    buf[FRAME_AT + 1] = FORMAT_VERSION;
    let sum = fnv64(&buf[..PAGE_SIZE - 8]);
    buf[PAGE_SIZE - 8..].copy_from_slice(&sum.to_le_bytes());
}

/// Outcome of verifying a page frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCheck {
    /// Frame present and checksum matches.
    Ok,
    /// No frame magic/version: not a sealed format-3 page.
    NotFramed,
    /// Frame present but the checksum disagrees with the contents.
    Mismatch {
        /// Checksum stored in the frame.
        expected: u64,
        /// Checksum computed over the page contents.
        found: u64,
    },
}

/// Verify the frame of a page image.
pub fn verify_frame(buf: &[u8; PAGE_SIZE]) -> FrameCheck {
    if buf[FRAME_AT] != FRAME_MAGIC || buf[FRAME_AT + 1] != FORMAT_VERSION {
        return FrameCheck::NotFramed;
    }
    let expected = u64::from_le_bytes(buf[PAGE_SIZE - 8..].try_into().expect("8 bytes"));
    let found = fnv64(&buf[..PAGE_SIZE - 8]);
    if expected == found {
        FrameCheck::Ok
    } else {
        FrameCheck::Mismatch { expected, found }
    }
}

/// True if the page is entirely zero (allocated but never written).
pub fn is_zero_page(buf: &[u8; PAGE_SIZE]) -> bool {
    buf.iter().all(|&b| b == 0)
}

/// A view over a page buffer with slotted-page operations.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8; PAGE_SIZE],
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing (already formatted) page.
    pub fn new(buf: &'a mut [u8; PAGE_SIZE]) -> SlottedPage<'a> {
        SlottedPage { buf }
    }

    /// Format a fresh page: empty slot array, payloads growing backward
    /// from the payload end, class tagged as [`PageClass::Record`].
    pub fn format(buf: &'a mut [u8; PAGE_SIZE]) -> SlottedPage<'a> {
        buf[0..2].copy_from_slice(&0u16.to_le_bytes());
        buf[2..4].copy_from_slice(&(PAYLOAD_SIZE as u16).to_le_bytes());
        set_page_class(buf, PageClass::Record);
        SlottedPage { buf }
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (including dead ones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn free_end(&self) -> usize {
        self.read_u16(2) as usize
    }

    /// Contiguous free bytes available for a new insert (payload + slot).
    pub fn free_space(&self) -> usize {
        let used_head = HEADER + SLOT * self.slot_count() as usize;
        self.free_end().saturating_sub(used_head)
    }

    /// True if `payload_len` bytes can be inserted.
    pub fn fits(&self, payload_len: usize) -> bool {
        self.free_space() >= payload_len + SLOT
    }

    /// Insert a record payload; returns the slot number or `None` if the
    /// page is full.
    pub fn insert(&mut self, payload: &[u8]) -> Option<u16> {
        if !self.fits(payload.len()) {
            return None;
        }
        let slot = self.slot_count();
        let start = self.free_end() - payload.len();
        self.buf[start..start + payload.len()].copy_from_slice(payload);
        let slot_off = HEADER + SLOT * slot as usize;
        self.write_u16(slot_off, start as u16);
        self.write_u16(slot_off + 2, payload.len() as u16);
        self.write_u16(0, slot + 1);
        self.write_u16(2, start as u16);
        Some(slot)
    }

    /// Read a record payload. Returns `None` for missing/dead slots and
    /// for slot entries whose bounds do not fit the page (torn or
    /// corrupted pages must not panic).
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let slot_off = HEADER + SLOT * slot as usize;
        if slot_off + SLOT > PAGE_SIZE {
            return None;
        }
        let len = self.read_u16(slot_off + 2);
        if len == DEAD {
            return None;
        }
        let start = self.read_u16(slot_off) as usize;
        let end = start.checked_add(len as usize)?;
        if end > PAGE_SIZE {
            return None;
        }
        Some(&self.buf[start..end])
    }

    /// Mutable view of a record payload, for in-place byte patches (the
    /// streaming bulkloader fixes up parent back-links this way). Payload
    /// offsets are stable — deletes only tombstone, nothing is ever
    /// compacted — so a patch can land any time after the insert. Same
    /// bounds rules as [`SlottedPage::get`].
    pub fn get_mut(&mut self, slot: u16) -> Option<&mut [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let slot_off = HEADER + SLOT * slot as usize;
        if slot_off + SLOT > PAGE_SIZE {
            return None;
        }
        let len = self.read_u16(slot_off + 2);
        if len == DEAD {
            return None;
        }
        let start = self.read_u16(slot_off) as usize;
        let end = start.checked_add(len as usize)?;
        if end > PAGE_SIZE {
            return None;
        }
        Some(&mut self.buf[start..end])
    }

    /// Tombstone a record (space is not compacted; bulkload never reuses
    /// it, matching an append-only import).
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let slot_off = HEADER + SLOT * slot as usize;
        if slot_off + SLOT > PAGE_SIZE {
            return false;
        }
        if self.read_u16(slot_off + 2) == DEAD {
            return false;
        }
        self.write_u16(slot_off + 2, DEAD);
        true
    }

    /// Bytes in use (header + slots + live payloads); for occupancy stats.
    pub fn used_bytes(&self) -> usize {
        let mut used = HEADER + SLOT * self.slot_count() as usize;
        for s in 0..self.slot_count() {
            let slot_off = HEADER + SLOT * s as usize;
            if slot_off + SLOT > PAGE_SIZE {
                break;
            }
            let len = self.read_u16(slot_off + 2);
            if len != DEAD {
                used += len as usize;
            }
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        SlottedPage::format(&mut buf);
        buf
    }

    #[test]
    fn insert_and_get() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let payload = vec![7u8; 2000];
        let mut inserted = 0;
        while p.insert(&payload).is_some() {
            inserted += 1;
        }
        // 8180 usable / ~2004 -> 4 records per page.
        assert_eq!(inserted, 4);
        assert!(!p.fits(2000));
        assert!(p.fits(100));
    }

    #[test]
    fn delete_tombstones() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let a = p.insert(b"abc").unwrap();
        assert!(p.delete(a));
        assert_eq!(p.get(a), None);
        assert!(!p.delete(a));
        // Slot ids are not reused.
        let b = p.insert(b"def").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn max_payload_fits() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let payload = vec![1u8; MAX_IN_PAGE];
        let s = p.insert(&payload).unwrap();
        assert_eq!(p.get(s).unwrap().len(), MAX_IN_PAGE);
        assert_eq!(p.free_space(), 0);
    }

    #[test]
    fn payloads_stay_out_of_the_frame() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        while p.insert(&[0xAB; 64]).is_some() {}
        assert_eq!(page_class_of(&buf), PageClass::Record);
        assert!(buf[FRAME_AT..].iter().all(|&b| b != 0xAB));
    }

    #[test]
    fn used_bytes_accounting() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        assert_eq!(p.used_bytes(), HEADER);
        let a = p.insert(&[0u8; 100]).unwrap();
        assert_eq!(p.used_bytes(), HEADER + SLOT + 100);
        p.delete(a);
        assert_eq!(p.used_bytes(), HEADER + SLOT);
    }

    #[test]
    fn frame_seal_and_verify() {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        assert!(is_zero_page(&buf));
        assert_eq!(verify_frame(&buf), FrameCheck::NotFramed);
        buf[100] = 9;
        set_page_class(&mut buf, PageClass::Catalog);
        seal_frame(&mut buf);
        assert!(!is_zero_page(&buf));
        assert_eq!(verify_frame(&buf), FrameCheck::Ok);
        assert_eq!(page_class_of(&buf), PageClass::Catalog);
        // Any flipped payload bit is caught.
        buf[100] ^= 0x20;
        assert!(matches!(verify_frame(&buf), FrameCheck::Mismatch { .. }));
        buf[100] ^= 0x20;
        assert_eq!(verify_frame(&buf), FrameCheck::Ok);
        // A flipped checksum bit is caught too.
        buf[PAGE_SIZE - 1] ^= 0x01;
        assert!(matches!(verify_frame(&buf), FrameCheck::Mismatch { .. }));
    }

    #[test]
    fn torn_half_page_fails_verification() {
        let mut old = Box::new([0u8; PAGE_SIZE]);
        old[10] = 1;
        set_page_class(&mut old, PageClass::Record);
        seal_frame(&mut old);
        let mut new = Box::new([0u8; PAGE_SIZE]);
        new[10] = 2;
        new[PAGE_SIZE / 2 + 10] = 3;
        set_page_class(&mut new, PageClass::Record);
        seal_frame(&mut new);
        // First half new, second half (including the frame) old.
        let mut torn = old.clone();
        torn[..PAGE_SIZE / 2].copy_from_slice(&new[..PAGE_SIZE / 2]);
        assert!(matches!(verify_frame(&torn), FrameCheck::Mismatch { .. }));
    }
}
