//! Slotted pages: the unit of disk I/O.
//!
//! Natix stores several physical records per disk page (paper Sec. 6.4:
//! "the record manager … stores several records on a single disk page").
//! A page is a classic slotted page: a header, a slot array growing
//! forward, and record payloads growing backward from the page end.
//!
//! ```text
//! +--------+--------+-----------+------------------->        <----------+
//! | nslots | free   | slot 0..n |  free space        payload payload ...|
//! +--------+--------+-----------+------------------->        <----------+
//! ```

/// Page size in bytes (8 KB; four 2 KB records fit comfortably).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4;
const SLOT: usize = 4;
/// Length marker for deleted slots.
const DEAD: u16 = u16::MAX;

/// Maximum payload a single page can hold (one slot + header overhead).
pub const MAX_IN_PAGE: usize = PAGE_SIZE - HEADER - SLOT;

/// A view over a page buffer with slotted-page operations.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8; PAGE_SIZE],
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing (already formatted) page.
    pub fn new(buf: &'a mut [u8; PAGE_SIZE]) -> SlottedPage<'a> {
        SlottedPage { buf }
    }

    /// Format a fresh page.
    pub fn format(buf: &'a mut [u8; PAGE_SIZE]) -> SlottedPage<'a> {
        buf[0..2].copy_from_slice(&0u16.to_le_bytes());
        buf[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        // PAGE_SIZE == 8192 fits in u16 only as 0x2000; fine (< 0xFFFF).
        SlottedPage { buf }
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (including dead ones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn free_end(&self) -> usize {
        self.read_u16(2) as usize
    }

    /// Contiguous free bytes available for a new insert (payload + slot).
    pub fn free_space(&self) -> usize {
        let used_head = HEADER + SLOT * self.slot_count() as usize;
        self.free_end().saturating_sub(used_head)
    }

    /// True if `payload_len` bytes can be inserted.
    pub fn fits(&self, payload_len: usize) -> bool {
        self.free_space() >= payload_len + SLOT
    }

    /// Insert a record payload; returns the slot number or `None` if the
    /// page is full.
    pub fn insert(&mut self, payload: &[u8]) -> Option<u16> {
        if !self.fits(payload.len()) {
            return None;
        }
        let slot = self.slot_count();
        let start = self.free_end() - payload.len();
        self.buf[start..start + payload.len()].copy_from_slice(payload);
        let slot_off = HEADER + SLOT * slot as usize;
        self.write_u16(slot_off, start as u16);
        self.write_u16(slot_off + 2, payload.len() as u16);
        self.write_u16(0, slot + 1);
        self.write_u16(2, start as u16);
        Some(slot)
    }

    /// Read a record payload. Returns `None` for missing/dead slots and
    /// for slot entries whose bounds do not fit the page (torn or
    /// corrupted pages must not panic).
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let slot_off = HEADER + SLOT * slot as usize;
        if slot_off + SLOT > PAGE_SIZE {
            return None;
        }
        let len = self.read_u16(slot_off + 2);
        if len == DEAD {
            return None;
        }
        let start = self.read_u16(slot_off) as usize;
        let end = start.checked_add(len as usize)?;
        if end > PAGE_SIZE {
            return None;
        }
        Some(&self.buf[start..end])
    }

    /// Tombstone a record (space is not compacted; bulkload never reuses
    /// it, matching an append-only import).
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let slot_off = HEADER + SLOT * slot as usize;
        if slot_off + SLOT > PAGE_SIZE {
            return false;
        }
        if self.read_u16(slot_off + 2) == DEAD {
            return false;
        }
        self.write_u16(slot_off + 2, DEAD);
        true
    }

    /// Bytes in use (header + slots + live payloads); for occupancy stats.
    pub fn used_bytes(&self) -> usize {
        let mut used = HEADER + SLOT * self.slot_count() as usize;
        for s in 0..self.slot_count() {
            let slot_off = HEADER + SLOT * s as usize;
            if slot_off + SLOT > PAGE_SIZE {
                break;
            }
            let len = self.read_u16(slot_off + 2);
            if len != DEAD {
                used += len as usize;
            }
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        SlottedPage::format(&mut buf);
        buf
    }

    #[test]
    fn insert_and_get() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let payload = vec![7u8; 2000];
        let mut inserted = 0;
        while p.insert(&payload).is_some() {
            inserted += 1;
        }
        // 8192 / ~2004 -> 4 records per page.
        assert_eq!(inserted, 4);
        assert!(!p.fits(2000));
        assert!(p.fits(100));
    }

    #[test]
    fn delete_tombstones() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let a = p.insert(b"abc").unwrap();
        assert!(p.delete(a));
        assert_eq!(p.get(a), None);
        assert!(!p.delete(a));
        // Slot ids are not reused.
        let b = p.insert(b"def").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn max_payload_fits() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let payload = vec![1u8; MAX_IN_PAGE];
        let s = p.insert(&payload).unwrap();
        assert_eq!(p.get(s).unwrap().len(), MAX_IN_PAGE);
        assert_eq!(p.free_space(), 0);
    }

    #[test]
    fn used_bytes_accounting() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        assert_eq!(p.used_bytes(), HEADER);
        let a = p.insert(&[0u8; 100]).unwrap();
        assert_eq!(p.used_bytes(), HEADER + SLOT + 100);
        p.delete(a);
        assert_eq!(p.used_bytes(), HEADER + SLOT);
    }
}
