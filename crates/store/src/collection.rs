//! Sharded document collections: N independent store files behind one
//! directory catalog, loaded by parallel streaming bulkload.
//!
//! A collection directory holds `shard-NNNN.natix` page files — each an
//! ordinary [`XmlStore`] — plus an append-only catalog
//! (`collection.ncat`) mapping document ids to shards and doc-root
//! records. Documents are distributed round-robin (`doc_id % shards`),
//! so a document's shard is computable without the catalog; the catalog
//! supplies its root record.
//!
//! Inside a shard, documents hang off a synthetic `<natix-shard/>` root
//! through per-batch `<seg>` records: the loader reserves a segment
//! record number up front, streams each document's records in with
//! [`stream_append_document`] (their root back-links point at the
//! not-yet-written segment record), then writes the segment record (one
//! element whose entries are proxies to the document roots), links it
//! under the shard root, and commits through the normal journal +
//! header-flip path. One commit per segment amortizes fsync while
//! keeping every shard independently recoverable: a power cut rolls the
//! shard back to its last segment boundary.
//!
//! The catalog frame for a segment is appended only after its shard
//! commit returns, so the catalog never references uncommitted state. A
//! crash can leave a shard with committed-but-uncatalogued segments;
//! those documents are unreachable but harmless (fsck counts them as
//! reachable store content, and the catalog stays the source of truth
//! for document ids). A torn catalog tail is detected by per-frame
//! checksums and ignored.
//!
//! Parallel loading: shard `s` is owned by loader thread `s % threads`.
//! [`XmlStore`] is deliberately not `Send` (its record cache is
//! `Rc`-based), so each worker thread creates and owns its shard stores
//! outright; the coordinator moves only `(doc_id, xml)` pairs through
//! bounded channels and appends catalog frames as acks arrive. Memory
//! is bounded by `queue_depth × document size + threads × pool budget`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

use natix_xml::Document;

use crate::bulkload::{stream_append_document, stream_bulkload, BulkloadError, LoadStats};
use crate::fsck::{fsck, FsckReport};
use crate::page::{fnv64, PAGE_SIZE};
use crate::pager::{FilePager, Pager, StoreError, StoreResult};
use crate::record::{ChildEntry, ImageNode, NONE_U16};
use crate::store::{NodeRef, StoreConfig, XmlStore};
use natix_xml::NodeKind;

/// Catalog file name inside a collection directory.
pub const CATALOG_FILE: &str = "collection.ncat";

const CATALOG_MAGIC: &[u8; 4] = b"NCOL";
const CATALOG_VERSION: u32 = 1;
const HEADER_LEN: usize = 16;

/// Page file of shard `s`.
pub fn shard_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard:04}.natix"))
}

/// One committed segment: `count` documents of one shard, in shard-local
/// document order.
#[derive(Debug, Clone)]
pub struct ShardSegment {
    /// Owning shard.
    pub shard: u32,
    /// The segment record inside the shard store.
    pub seg_record: u32,
    /// Shard-local index of the first document (global id = `shard +
    /// local × shard_count`).
    pub first_local: u64,
    /// Root record of each document, in order.
    pub doc_roots: Vec<u32>,
}

/// Knobs of a collection bulkload.
#[derive(Debug, Clone, Copy)]
pub struct BulkloadOptions {
    /// Number of shard files.
    pub shards: u32,
    /// Loader threads; shard `s` is owned by thread `s % threads`.
    pub threads: usize,
    /// Streaming partitioner sibling budget (0 = unbounded EKM).
    pub sibling_budget: usize,
    /// Documents per segment (= per shard commit).
    pub seg_docs: usize,
    /// Bounded depth of each worker's document queue.
    pub queue_depth: usize,
}

impl Default for BulkloadOptions {
    fn default() -> Self {
        BulkloadOptions {
            shards: 4,
            threads: 1,
            sibling_budget: 8,
            seg_docs: 256,
            queue_depth: 64,
        }
    }
}

/// What a collection bulkload did.
#[derive(Debug, Clone, Default)]
pub struct BulkloadReport {
    /// Documents ingested.
    pub docs: u64,
    /// Records written across all shards.
    pub records: u64,
    /// Max over workers of the streaming loader's peak resident bytes
    /// (buffered nodes + driver state) for any single document.
    pub peak_loader_resident: usize,
    /// Max over workers of their shards' combined buffer-pool resident
    /// bytes at segment boundaries.
    pub peak_pool_resident: usize,
    /// Documents per shard.
    pub shard_docs: Vec<u64>,
}

fn catalog_header(shard_count: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(CATALOG_MAGIC);
    h[4..8].copy_from_slice(&CATALOG_VERSION.to_le_bytes());
    h[8..12].copy_from_slice(&shard_count.to_le_bytes());
    h
}

fn corrupt_catalog(what: &'static str) -> StoreError {
    StoreError::Corrupt {
        what,
        page: None,
        class: None,
        record: None,
        expected: None,
        found: None,
    }
}

fn encode_frame(seg: &ShardSegment) -> Vec<u8> {
    let mut payload = Vec::with_capacity(20 + seg.doc_roots.len() * 4);
    payload.extend_from_slice(&seg.shard.to_le_bytes());
    payload.extend_from_slice(&seg.seg_record.to_le_bytes());
    payload.extend_from_slice(&seg.first_local.to_le_bytes());
    payload.extend_from_slice(&(seg.doc_roots.len() as u32).to_le_bytes());
    for &r in &seg.doc_roots {
        payload.extend_from_slice(&r.to_le_bytes());
    }
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
    frame
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("bounds checked"))
}

fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("bounds checked"))
}

/// Read the catalog: shard count plus every intact segment frame. A torn
/// or checksum-failing tail (a crash mid-append) is silently dropped —
/// the frames before it are still valid.
pub fn read_catalog(dir: &Path) -> StoreResult<(u32, Vec<ShardSegment>)> {
    let mut bytes = Vec::new();
    File::open(dir.join(CATALOG_FILE))?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN || &bytes[..4] != CATALOG_MAGIC {
        return Err(corrupt_catalog("collection catalog header"));
    }
    if u32_at(&bytes, 4) != CATALOG_VERSION {
        return Err(corrupt_catalog("collection catalog version"));
    }
    let shard_count = u32_at(&bytes, 8);
    if shard_count == 0 {
        return Err(corrupt_catalog("collection with zero shards"));
    }
    let mut segments = Vec::new();
    let mut off = HEADER_LEN;
    while off + 4 <= bytes.len() {
        let len = u32_at(&bytes, off) as usize;
        let (start, end) = (off + 4, off + 4 + len);
        if end + 8 > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[start..end];
        if u64_at(&bytes, end) != fnv64(payload) || len < 20 {
            break; // torn or corrupt tail
        }
        let count = u32_at(payload, 16) as usize;
        if len != 20 + count * 4 {
            break;
        }
        let doc_roots = (0..count).map(|i| u32_at(payload, 20 + i * 4)).collect();
        segments.push(ShardSegment {
            shard: u32_at(payload, 0),
            seg_record: u32_at(payload, 4),
            first_local: u64_at(payload, 8),
            doc_roots,
        });
        off = end + 8;
    }
    Ok((shard_count, segments))
}

/// Per-shard ingest state inside one worker thread.
struct ShardWriter {
    shard: u32,
    store: XmlStore,
    /// Open (uncommitted) segment, if any.
    seg: Option<OpenSeg>,
    /// Documents committed + staged in this shard.
    local_docs: u64,
    records: u64,
}

struct OpenSeg {
    seg_record: u32,
    first_local: u64,
    doc_roots: Vec<u32>,
}

/// Builds the backend pager for one shard file — the default creates a
/// plain [`FilePager`]; crash campaigns wrap it in a fault injector.
/// Called from inside the owning worker thread, so the returned pager
/// need not be `Send`.
pub type ShardBackendFactory<'f> = dyn Fn(u32, &Path) -> StoreResult<Box<dyn Pager>> + Sync + 'f;

impl ShardWriter {
    fn create(
        dir: &Path,
        shard: u32,
        config: &StoreConfig,
        backend: &ShardBackendFactory<'_>,
    ) -> Result<ShardWriter, BulkloadError> {
        // Every shard starts as a one-record store holding the synthetic
        // root; stream_bulkload keeps the creation path uniform.
        let pager = backend(shard, &shard_path(dir, shard)).map_err(BulkloadError::Store)?;
        let (store, _) = stream_bulkload("<natix-shard/>", 0, pager, *config)?;
        Ok(ShardWriter {
            shard,
            store,
            seg: None,
            local_docs: 0,
            records: 1,
        })
    }

    fn add_doc(
        &mut self,
        xml: &str,
        opts: &BulkloadOptions,
    ) -> Result<(LoadStats, Option<ShardSegment>), BulkloadError> {
        let seg = match &mut self.seg {
            Some(seg) => seg,
            None => self.seg.insert(OpenSeg {
                seg_record: self.store.reserve_record(),
                first_local: self.local_docs,
                doc_roots: Vec::new(),
            }),
        };
        let pos = seg.doc_roots.len() as u16;
        let root_parent = (seg.seg_record, 0u16, pos);
        let (doc_root, stats) =
            stream_append_document(&mut self.store, xml, opts.sibling_budget, root_parent)?;
        let seg = self.seg.as_mut().expect("segment is open");
        seg.doc_roots.push(doc_root);
        self.local_docs += 1;
        self.records += stats.records as u64;
        let closed = if seg.doc_roots.len() >= opts.seg_docs {
            Some(self.close_segment()?)
        } else {
            None
        };
        Ok((stats, closed))
    }

    /// Write the segment record, link it under the shard root, commit.
    fn close_segment(&mut self) -> Result<ShardSegment, BulkloadError> {
        let seg = self.seg.take().expect("open segment");
        let root_record = self.store.root_record;
        let mut root_img = self.store.fetch(root_record)?.to_image();
        let seg_pos = root_img.nodes[0].entries.len() as u16;

        let label = self.store.intern_label("seg")?;
        let seg_img = crate::record::RecordImage {
            parent_record: root_record,
            parent_local: 0,
            proxy_pos: seg_pos,
            roots: vec![0],
            nodes: vec![ImageNode {
                kind: NodeKind::Element,
                label,
                parent_local: NONE_U16,
                entry_pos: NONE_U16,
                content: None,
                entries: seg
                    .doc_roots
                    .iter()
                    .map(|&r| ChildEntry::Proxy(r))
                    .collect(),
            }],
        };
        self.store.write_record(seg.seg_record, &seg_img)?;
        root_img.nodes[0]
            .entries
            .push(ChildEntry::Proxy(seg.seg_record));
        self.store.write_record(root_record, &root_img)?;
        self.store.commit()?;
        self.records += 1;
        Ok(ShardSegment {
            shard: self.shard,
            seg_record: seg.seg_record,
            first_local: seg.first_local,
            doc_roots: seg.doc_roots,
        })
    }

    fn finish(&mut self) -> Result<Option<ShardSegment>, BulkloadError> {
        if self.seg.is_none() {
            return Ok(None);
        }
        Ok(Some(self.close_segment()?))
    }
}

/// Messages from workers to the coordinator.
enum Ack {
    /// A segment committed durably in its shard; safe to catalog.
    Segment(ShardSegment),
    /// Worker finished all its shards.
    Done {
        records: u64,
        peak_loader_resident: usize,
        peak_pool_resident: usize,
        shard_docs: Vec<(u32, u64)>,
    },
    /// Worker failed; the load aborts.
    Fail(String),
}

fn worker(
    dir: &Path,
    thread: usize,
    opts: &BulkloadOptions,
    config: &StoreConfig,
    backend: &ShardBackendFactory<'_>,
    rx: mpsc::Receiver<(u64, String)>,
    ack: mpsc::Sender<Ack>,
) {
    let mut writers: HashMap<u32, ShardWriter> = HashMap::new();
    let mut peak_loader = 0usize;
    let mut peak_pool = 0usize;
    let mut run = || -> Result<(u64, Vec<(u32, u64)>), BulkloadError> {
        for s in (0..opts.shards).filter(|s| *s as usize % opts.threads == thread) {
            writers.insert(s, ShardWriter::create(dir, s, config, backend)?);
        }
        while let Ok((doc_id, xml)) = rx.recv() {
            let shard = (doc_id % opts.shards as u64) as u32;
            let w = writers.get_mut(&shard).expect("doc routed to wrong thread");
            let (stats, closed) = w.add_doc(&xml, opts)?;
            peak_loader = peak_loader.max(stats.peak_resident_bytes);
            if let Some(seg) = closed {
                let pool: usize = writers
                    .values()
                    .map(|w| w.store.pool.resident() * PAGE_SIZE)
                    .sum();
                peak_pool = peak_pool.max(pool);
                if ack.send(Ack::Segment(seg)).is_err() {
                    break; // coordinator gone; abort quietly
                }
            }
        }
        let mut records = 0;
        let mut shard_docs = Vec::new();
        for (&s, w) in &mut writers {
            if let Some(seg) = w.finish()? {
                let _ = ack.send(Ack::Segment(seg));
            }
            records += w.records;
            shard_docs.push((s, w.local_docs));
        }
        Ok((records, shard_docs))
    };
    match run() {
        Ok((records, shard_docs)) => {
            let _ = ack.send(Ack::Done {
                records,
                peak_loader_resident: peak_loader,
                peak_pool_resident: peak_pool,
                shard_docs,
            });
        }
        Err(e) => {
            let _ = ack.send(Ack::Fail(format!("loader thread {thread}: {e}")));
        }
    }
}

/// Bulk-load `docs` (XML strings, in document-id order) into a new
/// collection at `dir` with `opts.shards` shard files and `opts.threads`
/// parallel loader threads.
///
/// The resulting shard files are deterministic for a fixed shard count:
/// thread count only changes wall-clock time, not bytes (each shard's
/// content depends only on its own document subsequence).
pub fn bulkload_collection<I>(
    dir: &Path,
    docs: I,
    config: StoreConfig,
    opts: BulkloadOptions,
) -> Result<BulkloadReport, BulkloadError>
where
    I: IntoIterator<Item = String>,
{
    bulkload_collection_with(dir, docs, config, opts, &|_, path| {
        Ok(Box::new(FilePager::create(path)?))
    })
}

/// [`bulkload_collection`] with a custom shard backend factory — crash
/// campaigns inject power-cut pagers into chosen shards this way.
pub fn bulkload_collection_with<I>(
    dir: &Path,
    docs: I,
    config: StoreConfig,
    opts: BulkloadOptions,
    backend: &ShardBackendFactory<'_>,
) -> Result<BulkloadReport, BulkloadError>
where
    I: IntoIterator<Item = String>,
{
    if opts.shards == 0 || opts.threads == 0 || opts.seg_docs == 0 {
        return Err(BulkloadError::Store(StoreError::InvalidUpdate(
            "shards, threads and seg_docs must be positive",
        )));
    }
    let threads = opts.threads.min(opts.shards as usize);
    let opts = BulkloadOptions { threads, ..opts };
    std::fs::create_dir_all(dir).map_err(|e| BulkloadError::Store(e.into()))?;
    let mut catalog = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(dir.join(CATALOG_FILE))
        .map_err(|e| BulkloadError::Store(e.into()))?;
    catalog
        .write_all(&catalog_header(opts.shards))
        .map_err(|e| BulkloadError::Store(e.into()))?;

    let mut report = BulkloadReport {
        shard_docs: vec![0; opts.shards as usize],
        ..BulkloadReport::default()
    };
    let mut failure: Option<String> = None;

    std::thread::scope(|scope| -> Result<(), BulkloadError> {
        let (ack_tx, ack_rx) = mpsc::channel::<Ack>();
        let mut doc_txs = Vec::with_capacity(threads);
        for t in 0..threads {
            let (tx, rx) = mpsc::sync_channel::<(u64, String)>(opts.queue_depth);
            doc_txs.push(tx);
            let ack = ack_tx.clone();
            let (opts, config) = (&opts, &config);
            scope.spawn(move || worker(dir, t, opts, config, backend, rx, ack));
        }
        drop(ack_tx);

        let mut handle = |ack: Ack, report: &mut BulkloadReport| -> StoreResult<()> {
            match ack {
                Ack::Segment(seg) => {
                    catalog.write_all(&encode_frame(&seg))?;
                    Ok(())
                }
                Ack::Done {
                    records,
                    peak_loader_resident,
                    peak_pool_resident,
                    shard_docs,
                } => {
                    report.records += records;
                    report.peak_loader_resident =
                        report.peak_loader_resident.max(peak_loader_resident);
                    report.peak_pool_resident = report.peak_pool_resident.max(peak_pool_resident);
                    for (s, n) in shard_docs {
                        report.shard_docs[s as usize] = n;
                    }
                    Ok(())
                }
                Ack::Fail(msg) => {
                    if failure.is_none() {
                        failure = Some(msg);
                    }
                    Ok(())
                }
            }
        };

        for (doc_id, xml) in docs.into_iter().enumerate() {
            let shard = doc_id as u64 % opts.shards as u64;
            let t = (shard as usize) % threads;
            // A failed worker drops its receiver; stop feeding then.
            if doc_txs[t].send((doc_id as u64, xml)).is_err() {
                break;
            }
            report.docs += 1;
            while let Ok(a) = ack_rx.try_recv() {
                handle(a, &mut report).map_err(BulkloadError::Store)?;
            }
        }
        drop(doc_txs);
        for a in ack_rx {
            handle(a, &mut report).map_err(BulkloadError::Store)?;
        }
        catalog
            .sync_all()
            .map_err(|e| BulkloadError::Store(e.into()))?;
        Ok(())
    })?;

    if let Some(msg) = failure {
        return Err(BulkloadError::Thread(msg));
    }
    Ok(report)
}

/// A collection opened for reads: lazily opens shard stores on demand.
pub struct Collection {
    dir: PathBuf,
    shard_count: u32,
    /// Per shard: doc-root record by shard-local document index.
    docs: Vec<Vec<u32>>,
    shards: Vec<Option<XmlStore>>,
    config: StoreConfig,
}

impl Collection {
    /// Open the collection at `dir` by reading its catalog.
    pub fn open(dir: &Path, config: StoreConfig) -> StoreResult<Collection> {
        let (shard_count, segments) = read_catalog(dir)?;
        let mut docs: Vec<Vec<u32>> = vec![Vec::new(); shard_count as usize];
        for seg in &segments {
            let list = docs
                .get_mut(seg.shard as usize)
                .ok_or_else(|| corrupt_catalog("catalog frame for unknown shard"))?;
            if seg.first_local != list.len() as u64 {
                return Err(corrupt_catalog("catalog frames out of order"));
            }
            list.extend_from_slice(&seg.doc_roots);
        }
        Ok(Collection {
            dir: dir.to_path_buf(),
            shard_count,
            shards: (0..shard_count).map(|_| None).collect(),
            docs,
            config,
        })
    }

    /// Shards in the collection.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Cataloged documents across all shards.
    pub fn doc_count(&self) -> u64 {
        self.docs.iter().map(|d| d.len() as u64).sum()
    }

    /// Documents cataloged in one shard.
    pub fn shard_doc_count(&self, shard: u32) -> u64 {
        self.docs[shard as usize].len() as u64
    }

    fn shard_store(&mut self, shard: u32) -> StoreResult<&mut XmlStore> {
        let slot = &mut self.shards[shard as usize];
        if slot.is_none() {
            let pager = FilePager::open(&shard_path(&self.dir, shard))?;
            *slot = Some(XmlStore::open(Box::new(pager), self.config)?);
        }
        Ok(slot.as_mut().expect("just opened"))
    }

    /// Root record of `doc_id`, if cataloged.
    pub fn doc_root(&self, doc_id: u64) -> Option<(u32, u32)> {
        let shard = (doc_id % self.shard_count as u64) as u32;
        let local = (doc_id / self.shard_count as u64) as usize;
        let rec = *self.docs[shard as usize].get(local)?;
        Some((shard, rec))
    }

    /// Extract document `doc_id` from its shard.
    pub fn get_document(&mut self, doc_id: u64) -> StoreResult<Document> {
        let (shard, rec) = self
            .doc_root(doc_id)
            .ok_or(StoreError::InvalidUpdate("document id not in catalog"))?;
        let store = self.shard_store(shard)?;
        let node = store.fetch(rec)?.roots[0];
        store.subtree_to_document(NodeRef { record: rec, node })
    }

    /// Per-shard `(docs, live records, pages)`.
    pub fn stats(&mut self) -> StoreResult<Vec<(u64, usize, u32)>> {
        let mut out = Vec::with_capacity(self.shard_count as usize);
        for s in 0..self.shard_count {
            let docs = self.shard_doc_count(s);
            let store = self.shard_store(s)?;
            out.push((docs, store.live_record_count(), store.page_count()));
        }
        Ok(out)
    }

    /// Run the store-level consistency check on every shard and verify
    /// every cataloged doc-root record is live. Returns per-shard
    /// failures; empty = healthy.
    pub fn check(&mut self) -> StoreResult<Vec<(u32, String)>> {
        let mut problems = Vec::new();
        for s in 0..self.shard_count {
            let roots = self.docs[s as usize].clone();
            match self.shard_store(s) {
                Ok(store) => {
                    if let Err(e) = store.check_consistency() {
                        problems.push((s, e.to_string()));
                        continue;
                    }
                    for (local, &rec) in roots.iter().enumerate() {
                        if store.fetch(rec).is_err() {
                            problems.push((
                                s,
                                format!("cataloged doc {local} (record {rec}) unreadable"),
                            ));
                            break;
                        }
                    }
                }
                Err(e) => problems.push((s, e.to_string())),
            }
        }
        Ok(problems)
    }
}

/// Cross-shard fsck: page-level scrub of every shard file, independently.
/// Damage in one shard never blocks checking the others — the report
/// names exactly which shards are hurt.
pub fn fsck_collection(dir: &Path, repair: bool) -> StoreResult<Vec<(u32, FsckReport)>> {
    let (shard_count, _) = read_catalog(dir)?;
    let mut reports = Vec::with_capacity(shard_count as usize);
    for s in 0..shard_count {
        let mut pager = FilePager::open(&shard_path(dir, s))?;
        reports.push((s, fsck(&mut pager, repair)));
    }
    Ok(reports)
}
