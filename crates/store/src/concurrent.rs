//! Concurrent store access: snapshot-isolated readers over a single
//! serialized writer.
//!
//! The epoch ping-pong headers that make commits atomic (see
//! `store::XmlStore::commit`) are an MVCC primitive in disguise, and this
//! module cashes that in:
//!
//! * **Snapshot reads** — [`SharedStore::begin_read`] pins the current
//!   committed epoch and hands out a [`Snapshot`]: a read-only
//!   [`XmlStore`] over its *own* pager (from the [`PagerFactory`]), the
//!   pinned catalog served from memory and the pending journal's page
//!   images overlaid above the checksum layer. While any pin is held the
//!   writer defers checkpoints, so the backend only ever sees appends to
//!   fresh pages plus header-slot writes — no page a snapshot references
//!   is ever overwritten.
//! * **One serialized writer** — [`SharedStore::begin_write`] grants the
//!   single [`WriteGuard`]; a second request is shed with
//!   [`StoreError::Overloaded`]. Mutations run the ordinary journal
//!   commit path.
//! * **Pin-aware reclamation** — superseded catalog/journal chains are
//!   retired at the epoch that replaced them and zero-filled only when
//!   (a) no reader pins an epoch at or below the retirement epoch and
//!   (b) a later epoch has been published, so neither header slot still
//!   references the chain. Freed pages are checked against every pinned
//!   snapshot's reachable-page set; a hit is counted in
//!   [`ConcurrencyStats::pinned_free_violations`] (and the page kept) —
//!   the chaos harness asserts this counter stays zero.
//! * **Admission control** — bounded in-flight reads
//!   ([`AdmissionConfig::max_inflight_reads`], shed with
//!   [`StoreError::Overloaded`]) and a per-read deadline budget measured
//!   in backend page reads ([`AdmissionConfig::read_page_budget`], shed
//!   with [`StoreError::Timeout`]). [`SharedStore::read_document`]
//!   degrades shed requests to an unpinned [`OpenMode::Degraded`](crate::OpenMode) read
//!   instead of failing hard.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use natix_xml::Document;

use crate::catalog::RecordLoc;
use crate::fsck::{fsck, FsckReport};
use crate::page::{set_page_class, PageClass, PAGE_SIZE, PAYLOAD_SIZE};
use crate::pager::{BufferPool, ChecksummingPager, PageId, Pager, StoreError, StoreResult};
use crate::store::{overflow_page_span, DamageReport, StoreConfig, XmlStore};

/// Opens fresh [`Pager`] handles over the same underlying pages, one per
/// snapshot reader. [`crate::SharedMemPager`] implements it by cloning
/// itself; file-backed stores implement it by reopening the path.
pub trait PagerFactory {
    /// A new independent pager over the shared backing pages.
    fn open_pager(&self) -> StoreResult<Box<dyn Pager>>;
}

impl PagerFactory for crate::SharedMemPager {
    fn open_pager(&self) -> StoreResult<Box<dyn Pager>> {
        Ok(Box::new(self.clone()))
    }
}

impl PagerFactory for std::path::PathBuf {
    fn open_pager(&self) -> StoreResult<Box<dyn Pager>> {
        Ok(Box::new(crate::FilePager::open(self)?))
    }
}

/// Admission-control limits for a [`SharedStore`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Snapshot readers allowed in flight at once; the next
    /// [`SharedStore::begin_read`] is shed with
    /// [`StoreError::Overloaded`].
    pub max_inflight_reads: u32,
    /// Backend page reads a single snapshot may perform before its next
    /// read fails with [`StoreError::Timeout`] (a deterministic deadline
    /// budget). `0` means unlimited.
    pub read_page_budget: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight_reads: 64,
            read_page_budget: 0,
        }
    }
}

/// Counters kept by a [`SharedStore`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ConcurrencyStats {
    /// Snapshots handed out.
    pub snapshots_opened: u64,
    /// Snapshots currently holding an epoch pin.
    pub snapshots_active: u32,
    /// Reads shed by the in-flight limit.
    pub reads_shed: u64,
    /// Snapshots that exhausted their page-read budget.
    pub reads_timed_out: u64,
    /// Shed or timed-out reads served as unpinned degraded reads.
    pub degraded_fallbacks: u64,
    /// `begin_write` calls rejected because the writer was taken.
    pub writer_conflicts: u64,
    /// Committed write operations.
    pub commits: u64,
    /// Commits whose checkpoint was deferred because readers held pins.
    pub checkpoints_deferred: u64,
    /// Deferred checkpoints applied after the pins drained.
    pub checkpoints_applied: u64,
    /// Garbage pages zero-filled by the reclaimer.
    pub pages_reclaimed: u64,
    /// Reclamation rounds that left garbage in place because of pins.
    pub reclaim_blocked_by_pins: u64,
    /// Garbage pages found inside a pinned snapshot's reachable set (the
    /// reclaimer skips them; must stay zero).
    pub pinned_free_violations: u64,
    /// Checkpoint/reclaim failures from deferred maintenance (the commit
    /// itself was durable; maintenance retries on the next opportunity).
    pub maintenance_errors: u64,
    /// Group commits published (each one journal write + one header flip
    /// covering every staged op of a [`WriteGuard::mutate_batch`]).
    pub group_commits: u64,
    /// Operations staged and acknowledged through group commits.
    pub batched_ops: u64,
    /// Times the store entered read-only degraded mode (a resource-class
    /// commit failure, e.g. a full disk, rolled the write back).
    pub read_only_entered: u64,
    /// Times the space probe saw the backend recover and re-enabled
    /// writes.
    pub read_only_recovered: u64,
    /// Writes refused with [`StoreError::ReadOnly`] while degraded.
    pub writes_rejected_read_only: u64,
    /// Space probes that still found the backend full.
    pub space_probes_failed: u64,
}

/// Committed-state size counters from [`SharedStore::storage_stats`].
#[derive(Debug, Clone, Copy)]
pub struct StorageStats {
    /// Epoch of the committed state the counters describe.
    pub epoch: u64,
    /// Records reachable from the committed catalog.
    pub live_records: usize,
    /// Pages allocated in the backing file.
    pub pages: u32,
    /// Bytes occupied by allocated pages.
    pub occupied_bytes: u64,
}

/// A superseded catalog/journal chain awaiting reclamation.
struct GarbageSet {
    /// Epoch whose publication made the chain unreferenced.
    retired_epoch: u64,
    pages: Vec<PageId>,
}

/// A deferred release from a [`Snapshot`]/[`WriteGuard`] drop that could
/// not lock the shared state (dropped inside a writer callback).
enum Release {
    Pin { pin_id: u64, timed_out: bool },
    Writer,
}

struct PinInfo {
    epoch: u64,
    /// Every backend page the snapshot may read: record pages, overflow
    /// chains and overlaid journal targets at pin time.
    pages: HashSet<PageId>,
}

struct Inner {
    store: XmlStore,
    factory: Box<dyn PagerFactory>,
    config: StoreConfig,
    admission: AdmissionConfig,
    /// Pinned epochs → pin count.
    pins: BTreeMap<u64, u32>,
    pinned: HashMap<u64, PinInfo>,
    next_pin: u64,
    writer_active: bool,
    /// `Some(reason)` while the store is in read-only degraded mode: a
    /// resource-class failure (disk full) rolled the in-flight commit
    /// back, reads keep serving, and writes answer
    /// [`StoreError::ReadOnly`] until the space probe clears it.
    read_only: Option<&'static str>,
    garbage: Vec<GarbageSet>,
    stats: ConcurrencyStats,
}

/// Shared, clonable handle over one store: many snapshot-isolated
/// readers, one serialized writer. See the module docs for the protocol.
///
/// Handles are `Rc`-based and single-threaded (like every pager in this
/// crate); "concurrent" means interleaved logical readers and writers
/// with snapshot isolation, which the deterministic chaos scheduler in
/// `natix-testkit` drives through every interleaving a thread scheduler
/// could produce at commit granularity.
pub struct SharedStore {
    inner: Rc<RefCell<Inner>>,
    releases: Rc<RefCell<Vec<Release>>>,
}

impl Clone for SharedStore {
    fn clone(&self) -> Self {
        SharedStore {
            inner: Rc::clone(&self.inner),
            releases: Rc::clone(&self.releases),
        }
    }
}

impl SharedStore {
    /// Wrap an already-open writer store. `factory` must open pagers over
    /// the *same* backing pages as the store's own backend (e.g. clones
    /// of the same [`crate::SharedMemPager`]); snapshot readers use it
    /// for their independent read paths.
    pub fn new(
        mut store: XmlStore,
        factory: Box<dyn PagerFactory>,
        config: StoreConfig,
        admission: AdmissionConfig,
    ) -> SharedStore {
        store.defer_checkpoint = true;
        SharedStore {
            inner: Rc::new(RefCell::new(Inner {
                store,
                factory,
                config,
                admission,
                pins: BTreeMap::new(),
                pinned: HashMap::new(),
                next_pin: 0,
                writer_active: false,
                read_only: None,
                garbage: Vec::new(),
                stats: ConcurrencyStats::default(),
            })),
            releases: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Open the store on `backend` (running crash recovery if needed) and
    /// share it. `factory` must reach the same backing pages.
    pub fn open(
        backend: Box<dyn Pager>,
        factory: Box<dyn PagerFactory>,
        config: StoreConfig,
        admission: AdmissionConfig,
    ) -> StoreResult<SharedStore> {
        let store = XmlStore::open(backend, config)?;
        Ok(SharedStore::new(store, factory, config, admission))
    }

    /// Epoch of the current committed state.
    pub fn committed_epoch(&self) -> u64 {
        self.inner.borrow().store.current_epoch()
    }

    /// Counters so far.
    pub fn stats(&self) -> ConcurrencyStats {
        self.process_releases();
        self.inner.borrow().stats
    }

    /// Buffer-pool counters of the writer store's pool (snapshot pools
    /// are per-reader and die with their snapshot).
    pub fn buffer_stats(&self) -> crate::pager::BufferStats {
        self.inner.borrow().store.buffer_stats()
    }

    /// Size/shape counters of the committed store state, read off the
    /// writer's in-memory catalog without opening a snapshot (so a stats
    /// probe never competes with readers for admission slots).
    pub fn storage_stats(&self) -> StorageStats {
        let inner = self.inner.borrow();
        StorageStats {
            epoch: inner.store.current_epoch(),
            live_records: inner.store.live_record_count(),
            pages: inner.store.page_count(),
            occupied_bytes: inner.store.occupied_bytes(),
        }
    }

    /// Distinct page ids pinned in the writer's pool by live snapshots.
    pub fn pinned_pool_pages(&self) -> usize {
        self.inner.borrow().store.pool.pinned_pages()
    }

    /// `Some(reason)` while the store is in read-only degraded mode
    /// (writes refused, reads still served). Cleared by the space probe
    /// once the backend accepts writes again.
    pub fn read_only_reason(&self) -> Option<&'static str> {
        self.inner.borrow().read_only
    }

    /// Snapshot pins currently held (each one blocks checkpointing and
    /// gates reclamation).
    pub fn active_pins(&self) -> u32 {
        self.inner.borrow().stats.snapshots_active
    }

    /// Superseded catalog/journal chains awaiting reclamation — the
    /// backlog pins keep alive. Bounded in healthy operation; a number
    /// that only grows means a pin is stuck (e.g. a leaked session).
    pub fn reclaim_backlog(&self) -> usize {
        self.inner.borrow().garbage.len()
    }

    /// Pin the current committed epoch and return a read-only snapshot
    /// over it, or shed the request with [`StoreError::Overloaded`] when
    /// [`AdmissionConfig::max_inflight_reads`] snapshots are in flight.
    pub fn begin_read(&self) -> StoreResult<Snapshot> {
        self.process_releases();
        let mut inner = self.inner.borrow_mut();
        let limit = inner.admission.max_inflight_reads;
        let active = inner.stats.snapshots_active;
        if active >= limit {
            inner.stats.reads_shed += 1;
            return Err(StoreError::Overloaded {
                what: "read",
                inflight: active,
                limit,
            });
        }
        let budget = inner.admission.read_page_budget;
        let (store, exhausted) = inner.snapshot_store(budget)?;
        let epoch = store.current_epoch();
        let pages = reachable_pages(&store);
        let pin_id = inner.next_pin;
        inner.next_pin += 1;
        *inner.pins.entry(epoch).or_insert(0) += 1;
        // Mirror the epoch pin into the writer's buffer pool: no page
        // this snapshot can reach may be evicted from under it while the
        // pin is held (the pool grows past budget instead).
        inner.store.pool.pin_pages(pages.iter().copied());
        inner.pinned.insert(pin_id, PinInfo { epoch, pages });
        inner.stats.snapshots_opened += 1;
        inner.stats.snapshots_active += 1;
        Ok(Snapshot {
            store,
            shared: self.clone(),
            pin_id,
            exhausted,
            released: false,
        })
    }

    /// Serve one full document read under admission control. A request
    /// shed by the in-flight limit — or one whose pinned read exhausts
    /// its page budget — is degraded to an unpinned
    /// [`OpenMode::Degraded`](crate::OpenMode) read (best-effort, damage-tolerant) instead
    /// of failing hard; only real I/O or corruption errors surface.
    pub fn read_document(&self) -> StoreResult<ServedRead> {
        match self.begin_read() {
            Ok(mut snap) => match snap.document() {
                Ok(doc) => Ok(ServedRead::Full(doc)),
                Err(e) if e.is_overload() => {
                    drop(snap);
                    self.degraded_read()
                }
                Err(e) => Err(e),
            },
            Err(e) if e.is_overload() => self.degraded_read(),
            Err(e) => Err(e),
        }
    }

    fn degraded_read(&self) -> StoreResult<ServedRead> {
        let mut inner = self.inner.borrow_mut();
        // Unpinned and unbudgeted: the shed path trades isolation
        // guarantees for guaranteed progress.
        let (mut store, _) = inner.snapshot_store(0)?;
        inner.stats.degraded_fallbacks += 1;
        drop(inner);
        let (doc, damage) = store.to_document_degraded()?;
        Ok(ServedRead::Degraded(doc, damage))
    }

    /// Claim the single writer slot. A second claim while a
    /// [`WriteGuard`] is alive is shed with [`StoreError::Overloaded`];
    /// while the store is read-only degraded the claim is refused with
    /// [`StoreError::ReadOnly`] (after one space-probe attempt, so
    /// recovery needs no separate maintenance call).
    pub fn begin_write(&self) -> StoreResult<WriteGuard> {
        self.process_releases();
        let mut inner = self.inner.borrow_mut();
        if inner.read_only.is_some() {
            inner.space_probe();
        }
        if let Some(reason) = inner.read_only {
            inner.stats.writes_rejected_read_only += 1;
            return Err(StoreError::ReadOnly { reason });
        }
        if inner.writer_active {
            inner.stats.writer_conflicts += 1;
            return Err(StoreError::Overloaded {
                what: "write",
                inflight: 1,
                limit: 1,
            });
        }
        inner.writer_active = true;
        Ok(WriteGuard {
            shared: self.clone(),
        })
    }

    /// Run deferred maintenance now: apply a pending checkpoint if every
    /// pin has drained, then reclaim retired pages the pin/epoch gates
    /// allow. Called automatically after writes and snapshot releases;
    /// exposed for deterministic tests and shutdown paths.
    pub fn maintain(&self) -> StoreResult<()> {
        self.process_releases();
        self.inner.borrow_mut().maintain()
    }

    /// Scrub the shared backing pages (read-only fsck over a fresh pager
    /// from the factory). Safe to run concurrently with readers and the
    /// writer: committed state plus pending journal is always consistent
    /// on the backend.
    pub fn scrub(&self) -> StoreResult<FsckReport> {
        let inner = self.inner.borrow();
        let mut pager = inner.factory.open_pager()?;
        Ok(fsck(pager.as_mut(), false))
    }

    /// Apply queued pin/writer releases (from guards dropped while the
    /// shared state was locked) if the state is lockable right now.
    fn process_releases(&self) {
        let pending: Vec<Release> = {
            let mut q = self.releases.borrow_mut();
            if q.is_empty() {
                return;
            }
            q.drain(..).collect()
        };
        match self.inner.try_borrow_mut() {
            Ok(mut inner) => {
                for r in pending {
                    inner.apply_release(r);
                }
            }
            Err(_) => self.releases.borrow_mut().extend(pending),
        }
    }

    /// Queue a release and apply it immediately when possible.
    fn release(&self, r: Release) {
        self.releases.borrow_mut().push(r);
        self.process_releases();
        // Opportunistic maintenance: the last reader leaving is what
        // unblocks deferred checkpoints and reclamation.
        if let Ok(mut inner) = self.inner.try_borrow_mut() {
            if let Err(_e) = inner.maintain() {
                inner.stats.maintenance_errors += 1;
            }
        }
    }
}

/// What [`SharedStore::read_document`] served.
#[derive(Debug)]
pub enum ServedRead {
    /// A pinned, snapshot-isolated, fully-verified read.
    Full(Document),
    /// An unpinned degraded read (the request was shed by admission
    /// control); damaged or unreadable partitions are reported, not
    /// served.
    Degraded(Document, DamageReport),
}

impl ServedRead {
    /// The document, whichever path served it.
    pub fn document(&self) -> &Document {
        match self {
            ServedRead::Full(d) | ServedRead::Degraded(d, _) => d,
        }
    }

    /// True for the pinned, fully-verified path.
    pub fn is_full(&self) -> bool {
        matches!(self, ServedRead::Full(_))
    }
}

impl Inner {
    /// Build a read-only snapshot store of the current committed state:
    /// catalog bytes and pending-journal page images come from the
    /// writer's memory, data pages from a fresh factory pager. With
    /// `budget > 0` the store's backend reads are deadline-limited.
    fn snapshot_store(&mut self, budget: u64) -> StoreResult<(XmlStore, Rc<Cell<bool>>)> {
        let header = self.store.committed_header();
        let catalog_bytes = self.store.committed_catalog_bytes.clone();
        let overlay = self.store.committed_overlay.clone();
        let format = self.store.format;
        let raw = self.factory.open_pager()?;
        // The overlay must sit *above* the checksum layer: journal images
        // are unsealed page payloads (sealing happens on write).
        let checked: Box<dyn Pager> = if format >= 3 {
            Box::new(ChecksummingPager::new(raw))
        } else {
            raw
        };
        let stacked: Box<dyn Pager> = Box::new(OverlayPager {
            inner: checked,
            overlay,
        });
        let exhausted = Rc::new(Cell::new(false));
        let limited: Box<dyn Pager> = if budget > 0 {
            Box::new(BudgetPager {
                inner: stacked,
                remaining: budget,
                budget,
                exhausted: Rc::clone(&exhausted),
            })
        } else {
            stacked
        };
        let pool = BufferPool::new(limited, self.config.buffer_pages);
        let mut store =
            XmlStore::open_snapshot(pool, &self.config, catalog_bytes, &header, format)?;
        if budget > 0 {
            // A deadline-budgeted read must not spend its page budget on
            // speculation.
            store.readahead_records = 0;
        }
        Ok((store, exhausted))
    }

    fn apply_release(&mut self, r: Release) {
        match r {
            Release::Pin { pin_id, timed_out } => {
                let Some(info) = self.pinned.remove(&pin_id) else {
                    return;
                };
                self.store.pool.unpin_pages(info.pages.iter().copied());
                if let Some(n) = self.pins.get_mut(&info.epoch) {
                    *n -= 1;
                    if *n == 0 {
                        self.pins.remove(&info.epoch);
                    }
                }
                self.stats.snapshots_active = self.stats.snapshots_active.saturating_sub(1);
                if timed_out {
                    self.stats.reads_timed_out += 1;
                }
            }
            Release::Writer => self.writer_active = false,
        }
    }

    /// When degraded, try one small backend write; success clears
    /// read-only mode. The probe costs one appended page per recovery
    /// (immediately retired as reclaimable garbage), and each failed
    /// probe is one write event on the backend — deterministic under the
    /// fault injector's event counting.
    fn space_probe(&mut self) {
        if self.read_only.is_none() {
            return;
        }
        let probe = (|| -> StoreResult<()> {
            let id = self.store.pool.allocate()?;
            let mut zero = Box::new([0u8; PAGE_SIZE]);
            set_page_class(&mut zero, PageClass::Free);
            self.store.pool.backend_write(id, &zero)?;
            Ok(())
        })();
        match probe {
            Ok(()) => {
                self.read_only = None;
                self.stats.read_only_recovered += 1;
            }
            Err(_) => self.stats.space_probes_failed += 1,
        }
    }

    /// Enter read-only degraded mode (idempotent).
    fn enter_read_only(&mut self, reason: &'static str) {
        if self.read_only.is_none() {
            self.read_only = Some(reason);
            self.stats.read_only_entered += 1;
        }
    }

    /// Apply a pending checkpoint once pins drain, then reclaim garbage.
    fn maintain(&mut self) -> StoreResult<()> {
        if self.read_only.is_some() {
            self.space_probe();
            if self.read_only.is_some() {
                // Still full: checkpointing and reclamation both write,
                // so there is nothing useful to do yet.
                return Ok(());
            }
        }
        if self.pins.is_empty() && self.store.has_pending_checkpoint() {
            let journal = self.store.last_commit_journal;
            self.store.apply_pending_checkpoint()?;
            self.stats.checkpoints_applied += 1;
            // The checkpoint epoch's header is journal-free: the replayed
            // journal chain is garbage once the slot that referenced it
            // is overwritten (gated by retired_epoch below).
            let pages = chunk_span(journal.0, journal.1, self.chunk());
            self.garbage.push(GarbageSet {
                retired_epoch: self.store.current_epoch(),
                pages,
            });
        }
        self.reclaim()
    }

    fn chunk(&self) -> usize {
        if self.store.format >= 3 {
            PAYLOAD_SIZE
        } else {
            PAGE_SIZE
        }
    }

    /// Zero-fill retired chains that are provably unreachable: a later
    /// epoch has been published (so neither header slot references the
    /// chain any more) and no reader pins an epoch at or below the
    /// retirement epoch. Every page is additionally checked against all
    /// pinned snapshots' reachable sets; a hit is a reclaimer bug —
    /// counted, skipped, never freed.
    fn reclaim(&mut self) -> StoreResult<()> {
        if self.garbage.is_empty() {
            return Ok(());
        }
        let min_pin = self.pins.keys().next().copied().unwrap_or(u64::MAX);
        let epoch = self.store.current_epoch();
        let mut blocked = Vec::new();
        let mut free: Vec<PageId> = Vec::new();
        for set in self.garbage.drain(..) {
            if epoch > set.retired_epoch && min_pin >= set.retired_epoch {
                free.extend(set.pages);
            } else {
                blocked.push(set);
            }
        }
        if !blocked.is_empty() {
            self.stats.reclaim_blocked_by_pins += 1;
        }
        self.garbage = blocked;
        let mut zero = Box::new([0u8; PAGE_SIZE]);
        set_page_class(&mut zero, PageClass::Free);
        for id in free {
            if self.pinned.values().any(|p| p.pages.contains(&id)) {
                // Never free a page a live snapshot can reach.
                self.stats.pinned_free_violations += 1;
                continue;
            }
            // Through the pool's checksum layer: the freed page carries a
            // sealed Free-class frame, so scrubs see retired space, not
            // torn debris.
            self.store.pool.backend_write(id, &zero)?;
            self.stats.pages_reclaimed += 1;
        }
        Ok(())
    }
}

/// Pages `first .. first + ceil(len / chunk)`.
fn chunk_span(first: PageId, len: u64, chunk: usize) -> Vec<PageId> {
    let n = (len as usize).div_ceil(chunk) as u32;
    (first..first + n).collect()
}

/// Every backend page a snapshot may read: record pages and overflow
/// chains from its directory. (Overlay pages are served from memory but
/// belong to the snapshot's footprint too — they are the journal's write
/// targets.)
fn reachable_pages(store: &XmlStore) -> HashSet<PageId> {
    let mut pages = HashSet::new();
    for loc in &store.directory {
        match *loc {
            RecordLoc::InPage { page, .. } => {
                pages.insert(page);
            }
            RecordLoc::Overflow { first_page, len } => {
                for i in 0..overflow_page_span(len as usize) as u32 {
                    pages.insert(first_page + i);
                }
            }
            RecordLoc::Free => {}
        }
    }
    for id in store.committed_overlay.keys() {
        pages.insert(*id);
    }
    pages
}

/// A pinned, read-only view of one committed epoch. Dropping the
/// snapshot releases the pin (and may trigger the deferred checkpoint
/// and reclamation).
pub struct Snapshot {
    store: XmlStore,
    shared: SharedStore,
    pin_id: u64,
    exhausted: Rc<Cell<bool>>,
    released: bool,
}

impl Snapshot {
    /// Epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.store.current_epoch()
    }

    /// The underlying read-only store, for navigation
    /// (`root`/`first_child`/…). Updates are rejected
    /// ([`OpenMode::Degraded`](crate::OpenMode)).
    pub fn store(&mut self) -> &mut XmlStore {
        &mut self.store
    }

    /// Strict full-document read of the pinned state.
    pub fn document(&mut self) -> StoreResult<Document> {
        self.store.to_document()
    }

    /// Damage-tolerant full-document read of the pinned state.
    pub fn document_degraded(&mut self) -> StoreResult<(Document, DamageReport)> {
        self.store.to_document_degraded()
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.store.current_epoch())
            .field("pin_id", &self.pin_id)
            .finish_non_exhaustive()
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        if !self.released {
            self.released = true;
            self.shared.release(Release::Pin {
                pin_id: self.pin_id,
                timed_out: self.exhausted.get(),
            });
        }
    }
}

/// One queued operation for [`WriteGuard::mutate_batch`].
pub type BatchOp<'a> = Box<dyn FnOnce(&mut XmlStore) -> StoreResult<()> + 'a>;

/// The single writer over a [`SharedStore`]. Mutations run through
/// [`WriteGuard::mutate`]; dropping the guard frees the writer slot.
pub struct WriteGuard {
    shared: SharedStore,
}

impl WriteGuard {
    /// Run `f` over the writer store (typically one
    /// `append_child`/`insert_before`/`delete_subtree` call, which
    /// commits internally). On a committed epoch advance the superseded
    /// catalog/journal chains are retired for reclamation, then deferred
    /// maintenance runs (checkpoint + reclaim when pins allow;
    /// maintenance failures are counted, not surfaced — the commit
    /// itself is already durable).
    pub fn mutate<T>(&mut self, f: impl FnOnce(&mut XmlStore) -> StoreResult<T>) -> StoreResult<T> {
        self.shared.process_releases();
        let r = {
            let mut inner = self.shared.inner.borrow_mut();
            let inner = &mut *inner;
            if let Some(reason) = inner.read_only {
                // The guard was claimed before the store degraded (or is
                // held across the transition): refuse before touching
                // the store.
                inner.stats.writes_rejected_read_only += 1;
                return Err(StoreError::ReadOnly { reason });
            }
            let before_epoch = inner.store.current_epoch();
            let before_catalog = inner.store.committed_catalog;
            let before_journal = inner
                .store
                .has_pending_checkpoint()
                .then_some(inner.store.last_commit_journal);
            let r = f(&mut inner.store);
            let after_epoch = inner.store.current_epoch();
            if after_epoch > before_epoch {
                inner.stats.commits += 1;
                if inner.store.has_pending_checkpoint() {
                    inner.stats.checkpoints_deferred += 1;
                }
                let chunk = inner.chunk();
                // The new header supersedes the previous catalog chain —
                // and the previous journal chain too: every page image it
                // held that is still uncheckpointed was re-journaled by
                // this commit.
                inner.garbage.push(GarbageSet {
                    retired_epoch: after_epoch,
                    pages: chunk_span(before_catalog.0, before_catalog.1, chunk),
                });
                if let Some((first, len)) = before_journal {
                    inner.garbage.push(GarbageSet {
                        retired_epoch: after_epoch,
                        pages: chunk_span(first, len, chunk),
                    });
                }
            }
            match r {
                // A resource-class failure (disk full) already rolled the
                // commit back inside the store; degrade to read-only and
                // answer with the typed long-back-off error.
                Err(e) if e.is_resource() => {
                    inner.enter_read_only("disk full");
                    Err(StoreError::ReadOnly {
                        reason: "disk full",
                    })
                }
                other => other,
            }
        };
        if let Err(_e) = self.shared.maintain() {
            self.shared.inner.borrow_mut().stats.maintenance_errors += 1;
        }
        r
    }

    /// Group commit: run every queued operation inside one store batch,
    /// then publish all of them under a *single* journal write and header
    /// flip (see [`XmlStore::begin_batch`]) — the amortization that makes
    /// many small commits cheap.
    ///
    /// Returns one durability ack per operation. `Ok(acks)` means the
    /// header flip happened: every op whose ack is `Ok(())` is durable,
    /// and crash recovery can only ever surface the whole acked batch or
    /// none of it — an exact prefix of the acks, never a partial batch.
    /// Ops with an `Err` ack were rejected (rolled back to the previous
    /// op's savepoint) and are not part of the committed state.
    /// `Err(_)` means the batch commit itself failed: *nothing* was
    /// acknowledged and the store rolled back (though, as with any
    /// commit, a failure after the flip can leave the post-state durable
    /// — the standard "pre or post" crash contract).
    pub fn mutate_batch(&mut self, ops: Vec<BatchOp<'_>>) -> StoreResult<Vec<StoreResult<()>>> {
        self.shared.process_releases();
        let r = {
            let mut inner = self.shared.inner.borrow_mut();
            let inner = &mut *inner;
            if let Some(reason) = inner.read_only {
                inner.stats.writes_rejected_read_only += 1;
                return Err(StoreError::ReadOnly { reason });
            }
            let before_epoch = inner.store.current_epoch();
            let before_catalog = inner.store.committed_catalog;
            let before_journal = inner
                .store
                .has_pending_checkpoint()
                .then_some(inner.store.last_commit_journal);
            let op_count = ops.len() as u64;
            inner.store.begin_batch()?;
            let mut acks = Vec::with_capacity(ops.len());
            for op in ops {
                acks.push(op(&mut inner.store));
            }
            let commit = inner.store.commit_batch();
            let after_epoch = inner.store.current_epoch();
            if after_epoch > before_epoch {
                inner.stats.commits += 1;
                inner.stats.group_commits += 1;
                inner.stats.batched_ops += op_count;
                if inner.store.has_pending_checkpoint() {
                    inner.stats.checkpoints_deferred += 1;
                }
                let chunk = inner.chunk();
                inner.garbage.push(GarbageSet {
                    retired_epoch: after_epoch,
                    pages: chunk_span(before_catalog.0, before_catalog.1, chunk),
                });
                if let Some((first, len)) = before_journal {
                    inner.garbage.push(GarbageSet {
                        retired_epoch: after_epoch,
                        pages: chunk_span(first, len, chunk),
                    });
                }
            }
            match commit {
                Ok(_) => Ok(acks),
                Err(e) if e.is_resource() => {
                    // Nothing was acknowledged; the batch rolled back.
                    inner.enter_read_only("disk full");
                    Err(StoreError::ReadOnly {
                        reason: "disk full",
                    })
                }
                Err(e) => Err(e),
            }
        };
        if let Err(_e) = self.shared.maintain() {
            self.shared.inner.borrow_mut().stats.maintenance_errors += 1;
        }
        r
    }
}

impl std::fmt::Debug for WriteGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteGuard").finish_non_exhaustive()
    }
}

impl Drop for WriteGuard {
    fn drop(&mut self) {
        self.shared.release(Release::Writer);
    }
}

/// Read-only pager serving some pages from an in-memory overlay (the
/// pending journal's committed page images) and the rest from `inner`.
/// Writes are rejected: a snapshot must never touch the backend.
struct OverlayPager {
    inner: Box<dyn Pager>,
    overlay: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
}

impl Pager for OverlayPager {
    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn allocate(&mut self) -> StoreResult<PageId> {
        Err(StoreError::InvalidUpdate("snapshot is read-only"))
    }

    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StoreResult<()> {
        if let Some(p) = self.overlay.get(&id) {
            buf.copy_from_slice(&p[..]);
            return Ok(());
        }
        self.inner.read(id, buf)
    }

    fn write(&mut self, _id: PageId, _buf: &[u8; PAGE_SIZE]) -> StoreResult<()> {
        Err(StoreError::InvalidUpdate("snapshot is read-only"))
    }
}

/// Deadline budget at the pager seam: each backend page read spends one
/// unit; at zero, reads fail with [`StoreError::Timeout`]. Deterministic
/// by construction — no wall clocks in the read path.
struct BudgetPager {
    inner: Box<dyn Pager>,
    remaining: u64,
    budget: u64,
    exhausted: Rc<Cell<bool>>,
}

impl Pager for BudgetPager {
    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn allocate(&mut self) -> StoreResult<PageId> {
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StoreResult<()> {
        if self.remaining == 0 {
            self.exhausted.set(true);
            return Err(StoreError::Timeout {
                what: "read",
                budget: self.budget,
            });
        }
        self.remaining -= 1;
        self.inner.read(id, buf)
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StoreResult<()> {
        self.inner.write(id, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::SharedMemPager;
    use crate::store::bulkload_with;
    use natix_core::Ekm;
    use natix_xml::{parse, NodeKind};

    fn shared(xml: &str, k: u64, admission: AdmissionConfig) -> (SharedStore, SharedMemPager) {
        let doc = parse(xml).unwrap();
        let disk = SharedMemPager::new();
        let config = StoreConfig {
            record_limit_slots: k,
            ..Default::default()
        };
        let store = bulkload_with(&doc, &Ekm, k, Box::new(disk.clone()), config).unwrap();
        (
            SharedStore::new(store, Box::new(disk.clone()), config, admission),
            disk,
        )
    }

    fn xml_of(snap: &mut Snapshot) -> String {
        snap.document().unwrap().to_xml()
    }

    #[test]
    fn snapshot_survives_concurrent_writes() {
        let (shared, disk) = shared(
            "<list><e>one entry of text</e><e>two entry of text</e></list>",
            16,
            AdmissionConfig::default(),
        );
        let before = {
            let mut s = shared.begin_read().unwrap();
            xml_of(&mut s)
        };
        let mut pinned = shared.begin_read().unwrap();
        let mut writer = shared.begin_write().unwrap();
        for i in 0..4 {
            writer
                .mutate(|s| {
                    let root = s.root()?;
                    s.append_child(
                        root,
                        NodeKind::Text,
                        "#text",
                        Some(&format!("heavy appended payload {i}")),
                    )
                    .map(|_| ())
                })
                .unwrap();
        }
        // The pinned snapshot still reads its epoch's state, strictly.
        assert_eq!(xml_of(&mut pinned), before);
        // A fresh snapshot sees the new state.
        let mut fresh = shared.begin_read().unwrap();
        let after = xml_of(&mut fresh);
        assert_ne!(after, before);
        assert!(after.contains("heavy appended payload 3"));
        assert!(fresh.epoch() > pinned.epoch());
        // The backend scrubs clean mid-pin (checkpoint deferred).
        assert!(shared.stats().checkpoints_deferred > 0);
        let scrub = shared.scrub().unwrap();
        assert!(scrub.clean(), "{scrub}");
        drop(pinned);
        drop(fresh);
        drop(writer);
        shared.maintain().unwrap();
        let stats = shared.stats();
        assert!(stats.checkpoints_applied > 0, "{stats:?}");
        assert!(stats.pages_reclaimed > 0, "{stats:?}");
        assert_eq!(stats.pinned_free_violations, 0, "{stats:?}");
        // After everything drains the disk reopens to the final state.
        drop(shared);
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        assert_eq!(re.to_document().unwrap().to_xml(), after);
        let scrub = fsck(&mut disk.clone(), false);
        assert!(scrub.clean(), "{scrub}");
    }

    #[test]
    fn snapshots_are_read_only() {
        let (shared, _disk) = shared("<a><b/></a>", 64, AdmissionConfig::default());
        let mut snap = shared.begin_read().unwrap();
        let root = snap.store().root().unwrap();
        let err = snap
            .store()
            .append_child(root, NodeKind::Element, "x", None)
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidUpdate(_)), "{err}");
    }

    #[test]
    fn admission_sheds_and_recovers() {
        let (shared, _disk) = shared(
            "<a><b/></a>",
            64,
            AdmissionConfig {
                max_inflight_reads: 2,
                read_page_budget: 0,
            },
        );
        let s1 = shared.begin_read().unwrap();
        let _s2 = shared.begin_read().unwrap();
        let err = shared.begin_read().unwrap_err();
        assert!(
            matches!(err, StoreError::Overloaded { what: "read", .. }),
            "{err}"
        );
        // The convenience path degrades instead of failing.
        let served = shared.read_document().unwrap();
        assert!(!served.is_full());
        assert_eq!(served.document().to_xml(), "<a><b/></a>");
        drop(s1);
        // A slot freed: pinned reads work again.
        assert!(shared.read_document().unwrap().is_full());
        let stats = shared.stats();
        assert_eq!(stats.reads_shed, 2, "{stats:?}");
        assert_eq!(stats.degraded_fallbacks, 1, "{stats:?}");
    }

    #[test]
    fn read_budget_times_out_deterministically() {
        // A multi-record store with a 1-page budget cannot finish a
        // strict read; the error is a structured Timeout, and the
        // degraded path still serves what it can reach... also within
        // the budget, so read_document falls back unpinned.
        let mut xml = String::from("<list>");
        for i in 0..6 {
            xml.push_str(&format!("<e>{}</e>", "y".repeat(2000 + i)));
        }
        xml.push_str("</list>");
        let (shared, _disk) = shared(
            &xml,
            1_000_000,
            AdmissionConfig {
                max_inflight_reads: 4,
                read_page_budget: 1,
            },
        );
        let mut snap = shared.begin_read().unwrap();
        let err = snap.document().unwrap_err();
        assert!(matches!(err, StoreError::Timeout { .. }), "{err}");
        drop(snap);
        assert_eq!(shared.stats().reads_timed_out, 1);
        // The shed path is unbudgeted: full content, degraded guarantees.
        let served = shared.read_document().unwrap();
        assert!(!served.is_full());
        assert!(served.document().to_xml().contains(&"y".repeat(2005)));
    }

    #[test]
    fn single_writer_is_enforced() {
        let (shared, _disk) = shared("<a><b/></a>", 64, AdmissionConfig::default());
        let w1 = shared.begin_write().unwrap();
        let err = shared.begin_write().unwrap_err();
        assert!(
            matches!(err, StoreError::Overloaded { what: "write", .. }),
            "{err}"
        );
        drop(w1);
        let _w2 = shared.begin_write().unwrap();
        assert_eq!(shared.stats().writer_conflicts, 1);
    }

    #[test]
    fn reclaimed_space_is_bounded_not_leaking() {
        // Many commits with no pins: superseded catalog/journal chains
        // must be reclaimed as we go, so garbage never accumulates more
        // than the constant tail the epoch gate keeps alive.
        let (shared, disk) = shared("<a><b/></a>", 64, AdmissionConfig::default());
        let mut writer = shared.begin_write().unwrap();
        for i in 0..20 {
            writer
                .mutate(|s| {
                    let root = s.root()?;
                    s.append_child(root, NodeKind::Element, &format!("x{i}"), None)
                        .map(|_| ())
                })
                .unwrap();
        }
        drop(writer);
        shared.maintain().unwrap();
        let stats = shared.stats();
        assert!(stats.pages_reclaimed >= 20, "{stats:?}");
        assert_eq!(stats.pinned_free_violations, 0, "{stats:?}");
        let scrub = fsck(&mut disk.clone(), false);
        assert!(scrub.clean(), "{scrub}");
        // And the final state still reopens.
        drop(shared);
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        assert!(re.to_document().unwrap().to_xml().contains("x19"));
    }

    #[test]
    fn disk_full_degrades_to_read_only_and_recovers() {
        use crate::pager::{FaultInjectingPager, FaultSchedule};
        // Bulkload onto the shared disk, then reopen the writer through a
        // fault injector whose disk fills at write event 2 for 6 events.
        let doc = parse("<list><e>one entry of text</e><e>two entry of text</e></list>").unwrap();
        let disk = SharedMemPager::new();
        let config = StoreConfig {
            record_limit_slots: 16,
            ..Default::default()
        };
        drop(bulkload_with(&doc, &Ekm, 16, Box::new(disk.clone()), config).unwrap());
        let faulty =
            FaultInjectingPager::new(Box::new(disk.clone()), FaultSchedule::storage_full(2, 6));
        let store = XmlStore::open(Box::new(faulty), config).unwrap();
        let shared = SharedStore::new(
            store,
            Box::new(disk.clone()),
            config,
            AdmissionConfig::default(),
        );
        let before = {
            let mut s = shared.begin_read().unwrap();
            xml_of(&mut s)
        };
        // The commit hits the full disk, rolls back, and degrades.
        let mut writer = shared.begin_write().unwrap();
        let err = writer
            .mutate(|s| {
                let root = s.root()?;
                s.append_child(root, NodeKind::Text, "#text", Some("will not fit"))
                    .map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::ReadOnly { .. }), "{err}");
        assert!(err.retry_after_hint_ms().unwrap() > 50, "{err}");
        drop(writer);
        assert_eq!(shared.read_only_reason(), Some("disk full"));
        // Reads keep serving the committed pre-state, and the backing
        // bytes stay fsck-clean (the rollback was atomic).
        let mut pinned = shared.begin_read().unwrap();
        assert_eq!(xml_of(&mut pinned), before);
        drop(pinned);
        let scrub = fsck(&mut disk.clone(), false);
        assert!(scrub.clean(), "{scrub}");
        // Writes are refused with the typed error while degraded; each
        // refused begin_write runs one space probe, marching the fault
        // window to its end — then the store recovers by itself.
        let mut recovered = None;
        for _ in 0..20 {
            match shared.begin_write() {
                Ok(w) => {
                    recovered = Some(w);
                    break;
                }
                Err(e) => assert!(matches!(e, StoreError::ReadOnly { .. }), "{e}"),
            }
        }
        let mut writer = recovered.expect("writes must resume after the full window passes");
        assert_eq!(shared.read_only_reason(), None);
        writer
            .mutate(|s| {
                let root = s.root()?;
                s.append_child(root, NodeKind::Text, "#text", Some("post recovery"))
                    .map(|_| ())
            })
            .unwrap();
        drop(writer);
        let mut fresh = shared.begin_read().unwrap();
        assert!(xml_of(&mut fresh).contains("post recovery"));
        drop(fresh);
        shared.maintain().unwrap();
        let stats = shared.stats();
        assert_eq!(stats.read_only_entered, 1, "{stats:?}");
        assert_eq!(stats.read_only_recovered, 1, "{stats:?}");
        assert!(stats.writes_rejected_read_only >= 1, "{stats:?}");
        assert!(stats.space_probes_failed >= 1, "{stats:?}");
        let scrub = fsck(&mut disk.clone(), false);
        assert!(scrub.clean(), "{scrub}");
    }

    #[test]
    fn rollback_under_pins_keeps_committed_overlay() {
        // Commit with a pin held (deferred checkpoint), then fail an op:
        // the rollback must preserve the committed-but-uncheckpointed
        // images, and both snapshots and recovery must see them.
        let (shared, disk) = shared(
            "<list><e>one entry of text</e><e>two entry of text</e></list>",
            16,
            AdmissionConfig::default(),
        );
        let pin = shared.begin_read().unwrap();
        let mut writer = shared.begin_write().unwrap();
        writer
            .mutate(|s| {
                let root = s.root()?;
                s.append_child(root, NodeKind::Text, "#text", Some("committed payload"))
                    .map(|_| ())
            })
            .unwrap();
        // A rejected update rolls back without losing the commit.
        let err = writer
            .mutate(|s| {
                let root = s.root()?;
                s.delete_subtree(root)
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidUpdate(_)), "{err}");
        let mut fresh = shared.begin_read().unwrap();
        assert!(xml_of(&mut fresh).contains("committed payload"));
        drop(fresh);
        drop(pin);
        drop(writer);
        shared.maintain().unwrap();
        drop(shared);
        let mut re = XmlStore::open(Box::new(disk.clone()), StoreConfig::default()).unwrap();
        re.check_consistency().unwrap();
        assert!(re
            .to_document()
            .unwrap()
            .to_xml()
            .contains("committed payload"));
    }
}
