//! The XML store: partitioner-driven bulkload, record directory, and
//! navigation primitives that cross record boundaries through proxies.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::rc::Rc;

use natix_tree::{NodeId, Partitioning};
use natix_xml::{Document, DocumentBuilder, NodeKind};

use crate::catalog::{self, Header, RecordLoc};
use crate::journal;
use crate::page::{set_page_class, PageClass, SlottedPage, MAX_IN_PAGE, PAGE_SIZE, PAYLOAD_SIZE};
use crate::pager::{
    BufferPool, BufferStats, ChecksummingPager, PageId, Pager, StoreError, StoreResult,
};
use crate::record::{
    self, ChildEntry, ImageNode, RecNode, RecordData, RecordImage, NONE_U16, NONE_U32,
};

/// How to open a store with respect to at-rest damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// Any corruption reached by a read is an error (the default).
    #[default]
    Strict,
    /// Reads of quarantined or corrupt partitions are skipped and
    /// reported via [`DamageReport`] instead of failing the whole
    /// document ([`XmlStore::to_document_degraded`]). The store is
    /// read-only in this mode.
    Degraded,
}

/// One sibling interval (= partition record) missing from a degraded
/// read: its proxy position under the surviving parent, and why.
#[derive(Debug, Clone)]
pub struct MissingInterval {
    /// The unreadable record.
    pub record: u32,
    /// Surviving node whose child list references the missing interval.
    pub parent: NodeRef,
    /// Position of the proxy in the parent's entry list.
    pub entry_pos: u16,
    /// Human-readable cause (quarantined, checksum mismatch, …).
    pub cause: String,
}

/// What a degraded read could not serve. Intervals are topmost-only: a
/// missing record's descendants are not listed separately.
#[derive(Debug, Clone, Default)]
pub struct DamageReport {
    /// Missing sibling intervals, in traversal order.
    pub missing: Vec<MissingInterval>,
}

impl DamageReport {
    /// True when the degraded read served the full document.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty()
    }

    /// The set of missing record numbers.
    pub fn records(&self) -> HashSet<u32> {
        self.missing.iter().map(|m| m.record).collect()
    }
}

impl std::fmt::Display for DamageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.missing.is_empty() {
            return write!(f, "damage: none");
        }
        for m in &self.missing {
            writeln!(
                f,
                "damage record={} parent={}:{} entry={} cause={}",
                m.record, m.parent.record, m.parent.node, m.entry_pos, m.cause
            )?;
        }
        Ok(())
    }
}

/// Magic prefix on the first page of a format-3 overflow chain:
/// `[magic][record byte length]` before the record bytes, so a raw-page
/// scan can find and bound overflow records without a catalog.
pub(crate) const OVERFLOW_MAGIC: &[u8; 4] = b"NOV3";

/// Record bytes the first page of an overflow chain can carry.
pub(crate) const OVERFLOW_HEAD: usize = PAYLOAD_SIZE - 8;

/// Write `bytes` as a format-3 overflow chain on freshly allocated pages
/// (dirty frames: they commit through the journal like any other page).
/// Returns the first page id.
pub(crate) fn write_overflow_chain(pool: &mut BufferPool, bytes: &[u8]) -> StoreResult<PageId> {
    let first = pool.allocate()?;
    let head = bytes.len().min(OVERFLOW_HEAD);
    pool.with_page(first, true, |buf| {
        buf[..4].copy_from_slice(OVERFLOW_MAGIC);
        buf[4..8].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        buf[8..8 + head].copy_from_slice(&bytes[..head]);
        set_page_class(buf, PageClass::Overflow);
    })?;
    let mut off = head;
    while off < bytes.len() {
        let page = pool.allocate()?;
        let take = (bytes.len() - off).min(PAYLOAD_SIZE);
        pool.with_page(page, true, |buf| {
            buf[..take].copy_from_slice(&bytes[off..off + take]);
            set_page_class(buf, PageClass::Overflow);
        })?;
        off += take;
    }
    Ok(first)
}

/// Number of pages a format-3 overflow chain of `len` record bytes spans.
pub(crate) fn overflow_page_span(len: usize) -> usize {
    1 + len.saturating_sub(OVERFLOW_HEAD).div_ceil(PAYLOAD_SIZE)
}

/// Read back an overflow chain written by [`write_overflow_chain`] (or,
/// with `legacy`, the headerless format-2 layout chunked at the full
/// page size).
pub(crate) fn read_overflow_chain(
    pool: &mut BufferPool,
    no: u32,
    first_page: PageId,
    len: usize,
    legacy: bool,
) -> StoreResult<Vec<u8>> {
    let mut bytes = Vec::with_capacity(len);
    if legacy {
        let mut remaining = len;
        let mut page = first_page;
        while remaining > 0 {
            let take = remaining.min(PAGE_SIZE);
            pool.with_page(page, false, |buf| {
                bytes.extend_from_slice(&buf[..take]);
            })?;
            remaining -= take;
            page += 1;
        }
        return Ok(bytes);
    }
    let head = len.min(OVERFLOW_HEAD);
    pool.with_page(first_page, false, |buf| {
        if &buf[..4] != OVERFLOW_MAGIC {
            return Err(StoreError::corrupt_page(
                "overflow chain magic missing",
                first_page,
                Some(PageClass::Overflow),
            )
            .in_record(no));
        }
        let stored = u32::from_le_bytes(buf[4..8].try_into().expect("4")) as usize;
        if stored != len {
            return Err(StoreError::corrupt_page(
                "overflow chain length disagrees with directory",
                first_page,
                Some(PageClass::Overflow),
            )
            .in_record(no));
        }
        bytes.extend_from_slice(&buf[8..8 + head]);
        Ok(())
    })??;
    let mut remaining = len - head;
    let mut page = first_page + 1;
    while remaining > 0 {
        let take = remaining.min(PAYLOAD_SIZE);
        pool.with_page(page, false, |buf| {
            bytes.extend_from_slice(&buf[..take]);
        })?;
        remaining -= take;
        page += 1;
    }
    Ok(bytes)
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Buffer pool capacity in pages. The paper's query experiment uses "a
    /// buffer pool that is larger than the document", so the default is
    /// generous (8192 pages = 64 MB).
    pub buffer_pages: usize,
    /// Capacity of the decoded-record cache. Small by design: navigation
    /// that leaves this working set pays the decode cost again, which is
    /// exactly the intra- vs. inter-record asymmetry the partitioning
    /// algorithms optimize for.
    pub record_cache: usize,
    /// Record weight limit `K` in slots, enforced when the update path
    /// grows a record (the bulkload partitioning carries its own limit).
    pub record_limit_slots: natix_tree::Weight,
    /// How many *following* records to prefetch into the buffer pool on
    /// a record fetch. Bulkload lays sibling-partition records out in
    /// record order, so the next records' pages are exactly the pages a
    /// document-order navigation touches next. 0 disables read-ahead.
    pub readahead_records: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            buffer_pages: 8192,
            record_cache: 16,
            record_limit_slots: 256,
            readahead_records: 2,
        }
    }
}

/// Reference to a stored node: record number plus local node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// Record number (index into the record directory).
    pub record: u32,
    /// Local node index within the record.
    pub node: u16,
}

/// Navigation counters: the observable cost model of the paper — crossing
/// storage units is expensive, staying inside one is cheap.
#[derive(Debug, Default, Clone, Copy)]
pub struct NavStats {
    /// Record fetches that switched away from the previously used record.
    pub record_switches: u64,
    /// Fetches served by the decoded-record cache.
    pub record_cache_hits: u64,
    /// Fetches that had to read pages and decode the record.
    pub record_decodes: u64,
}

pub(crate) struct RecordCache {
    map: HashMap<u32, Rc<RecordData>>,
    order: VecDeque<u32>,
    cap: usize,
}

impl RecordCache {
    pub(crate) fn new(cap: usize) -> RecordCache {
        RecordCache {
            map: HashMap::with_capacity(cap),
            order: VecDeque::with_capacity(cap),
            cap: cap.max(1),
        }
    }

    fn get(&self, no: u32) -> Option<Rc<RecordData>> {
        self.map.get(&no).cloned()
    }

    pub(crate) fn remove(&mut self, no: u32) {
        self.map.remove(&no);
        // The stale id stays in `order` and is skipped at eviction time.
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn insert(&mut self, no: u32, rec: Rc<RecordData>) {
        while self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            } else {
                break;
            }
        }
        if self.map.insert(no, rec).is_none() {
            self.order.push_back(no);
        }
    }
}

/// A bulkloaded XML store.
pub struct XmlStore {
    pub(crate) pool: BufferPool,
    pub(crate) directory: Vec<RecordLoc>,
    pub(crate) labels: Vec<Box<str>>,
    pub(crate) label_ids: HashMap<Box<str>, u16>,
    pub(crate) root_record: u32,
    pub(crate) cache: RecordCache,
    pub(crate) nav: NavStats,
    pub(crate) last_fetched: u32,
    /// Record weight limit `K` in slots, enforced by the update path.
    pub(crate) record_limit: natix_tree::Weight,
    /// Page with known free space, used by the update path's placement.
    pub(crate) open_page: Option<PageId>,
    /// The last fetched record, pinned: repeated access to the current
    /// record is a branch and an `Rc` clone — the cheap intra-record
    /// navigation the paper's cost model assumes.
    pub(crate) hot: Option<Rc<RecordData>>,
    /// Epoch of the current committed header (see `catalog::Header`).
    pub(crate) epoch: u64,
    /// Location of the last committed catalog `(first_page, len)`, used by
    /// the checkpoint header.
    pub(crate) committed_catalog: (PageId, u64),
    /// In-memory copy of the last committed catalog, so rollback can
    /// restore the directory and label table without touching the backend
    /// (which may be the very thing that just failed).
    pub(crate) committed_catalog_bytes: Vec<u8>,
    /// On-disk format version backing this store: 3 (page frames,
    /// checksummed reads) or 2 (legacy, read-only).
    pub(crate) format: u8,
    /// How reads treat corrupt/quarantined partitions.
    pub(crate) mode: OpenMode,
    /// Records quarantined by `fsck --repair` (unrecoverable partitions);
    /// strict reads of them fail, degraded reads skip and report them.
    pub(crate) quarantined: BTreeSet<u32>,
    /// When set, `commit` stops at the commit point (phases 1–3) and does
    /// not checkpoint: the backend only ever sees appends to fresh pages
    /// plus header-slot writes, so every data page a concurrent snapshot
    /// reader references stays byte-stable. The `concurrent::SharedStore`
    /// layer sets this while readers hold epoch pins and runs
    /// [`XmlStore::apply_pending_checkpoint`] once they drain.
    pub(crate) defer_checkpoint: bool,
    /// A durable commit is published whose checkpoint (phases 4–5) has
    /// not run yet; the winning header still references a redo journal.
    pub(crate) pending_checkpoint: bool,
    /// Page images of every committed-but-not-yet-checkpointed page, in
    /// their committed state. Rollback re-admits these as dirty frames
    /// (plain `discard_dirty` would lose the committed images, which live
    /// only in pool frames until the deferred checkpoint runs); snapshot
    /// readers overlay them over the backend.
    pub(crate) committed_overlay: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
    /// Location `(first_page, len)` of the journal referenced by the last
    /// durable commit, for reconstructing the committed header while its
    /// checkpoint is pending.
    pub(crate) last_commit_journal: (PageId, u64),
    /// Open group-commit batch, if any (see [`XmlStore::begin_batch`]).
    pub(crate) batch: Option<BatchState>,
    /// Records to prefetch ahead of a fetch (see `StoreConfig`).
    pub(crate) readahead_records: usize,
}

/// A consistent point inside a group-commit batch that a failing
/// operation can roll back to without losing earlier staged operations.
/// Captures everything [`XmlStore::rollback`] would otherwise restore
/// from the *committed* state: dirty page images plus the in-memory
/// catalog projections.
pub(crate) struct Savepoint {
    dirty: Vec<(PageId, Box<[u8; PAGE_SIZE]>)>,
    directory: Vec<RecordLoc>,
    labels: Vec<Box<str>>,
    label_ids: HashMap<Box<str>, u16>,
    quarantined: BTreeSet<u32>,
    open_page: Option<PageId>,
    root_record: u32,
}

/// In-flight group-commit batch state: one journal segment (page-id set)
/// per staged operation, plus the savepoint guarding the operation in
/// flight.
pub(crate) struct BatchState {
    /// Newly dirtied pages per staged op, in batch order. Diagnostic
    /// only — the single header flip covers the whole batch (see
    /// `journal::encode_batched`).
    segments: Vec<Vec<PageId>>,
    /// Pages already claimed by an earlier segment (or dirty before the
    /// batch began), so each page is attributed to one segment.
    claimed: HashSet<PageId>,
    save: Savepoint,
    ops: usize,
}

/// First-fit record placement over a small set of open pages, like a
/// record manager that keeps a free-space inventory. Fragmentation is
/// real and reported (paper Sec. 6.4).
///
/// Shared by the batch bulkloader and the streaming loader so that both
/// paths produce byte-identical page layouts for the same record
/// sequence.
pub(crate) struct RecordPlacer {
    /// (page, free bytes)
    open_pages: Vec<(PageId, usize)>,
}

impl RecordPlacer {
    const OPEN_LIMIT: usize = 8;

    pub(crate) fn new() -> RecordPlacer {
        RecordPlacer {
            open_pages: Vec::new(),
        }
    }

    /// Place one encoded record, returning its location. Records larger
    /// than a page payload go to a dedicated overflow chain.
    pub(crate) fn place(&mut self, pool: &mut BufferPool, bytes: &[u8]) -> StoreResult<RecordLoc> {
        if bytes.len() > MAX_IN_PAGE {
            let first_page = write_overflow_chain(pool, bytes)?;
            return Ok(RecordLoc::Overflow {
                first_page,
                len: bytes.len() as u32,
            });
        }
        let need = bytes.len() + 4; // payload + slot
        let slot_page = self.open_pages.iter().position(|&(_, free)| free >= need);
        let (page, pos) = match slot_page {
            Some(pos) => (self.open_pages[pos].0, pos),
            None => {
                if self.open_pages.len() >= Self::OPEN_LIMIT {
                    // Close the fullest page before opening a new one.
                    let min = self
                        .open_pages
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, free))| free)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    self.open_pages.swap_remove(min);
                }
                let page = pool.allocate()?;
                pool.with_page(page, true, |buf| {
                    SlottedPage::format(buf);
                })?;
                self.open_pages.push((page, PAYLOAD_SIZE - 4));
                (page, self.open_pages.len() - 1)
            }
        };
        let (slot, free) = pool.with_page(page, true, |buf| {
            let mut sp = SlottedPage::new(buf);
            let slot = sp.insert(bytes).expect("fit was checked");
            (slot, sp.free_space())
        })?;
        self.open_pages[pos].1 = free;
        Ok(RecordLoc::InPage { page, slot })
    }
}

/// Assemble the in-memory [`XmlStore`] for a freshly bulkloaded backend
/// whose epoch-1 header has just been flushed (batch and streaming
/// loaders share this tail).
pub(crate) fn assemble_fresh(
    pool: BufferPool,
    directory: Vec<RecordLoc>,
    labels: Vec<Box<str>>,
    label_ids: HashMap<Box<str>, u16>,
    root_record: u32,
    catalog: (PageId, Vec<u8>),
    config: &StoreConfig,
) -> XmlStore {
    let (catalog_first_page, catalog_bytes) = catalog;
    XmlStore {
        pool,
        directory,
        labels,
        label_ids,
        root_record,
        cache: RecordCache::new(config.record_cache),
        nav: NavStats::default(),
        last_fetched: NONE_U32,
        record_limit: config.record_limit_slots,
        open_page: None,
        hot: None,
        epoch: 1,
        committed_catalog: (catalog_first_page, catalog_bytes.len() as u64),
        committed_catalog_bytes: catalog_bytes,
        format: 3,
        mode: OpenMode::Strict,
        quarantined: BTreeSet::new(),
        defer_checkpoint: false,
        pending_checkpoint: false,
        committed_overlay: HashMap::new(),
        last_commit_journal: (0, 0),
        batch: None,
        readahead_records: config.readahead_records,
    }
}

impl XmlStore {
    /// Load `doc`, decomposed by `partitioning`, into a store over
    /// `backend`.
    ///
    /// The partitioning must be feasible for the document's tree (use
    /// [`natix_tree::validate`]); each partition becomes one record.
    pub fn bulkload(
        doc: &Document,
        partitioning: &Partitioning,
        backend: Box<dyn Pager>,
        config: StoreConfig,
    ) -> StoreResult<XmlStore> {
        let tree = doc.tree();
        let n = tree.len();
        let intervals = &partitioning.intervals;
        let p_count = intervals.len();
        assert!(p_count < NONE_U32 as usize, "too many partitions");

        // Which interval (= record) owns each cut node; NONE for nodes that
        // stay with an ancestor.
        let mut owner = vec![NONE_U32; n];
        for (i, iv) in intervals.iter().enumerate() {
            for x in iv.nodes(tree) {
                owner[x.index()] = i as u32;
            }
        }
        assert_ne!(
            owner[tree.root().index()],
            NONE_U32,
            "partitioning must contain the root interval"
        );
        // Record (= partition) every node belongs to.
        let mut assign = vec![NONE_U32; n];
        for v in tree.node_ids() {
            assign[v.index()] = if owner[v.index()] != NONE_U32 {
                owner[v.index()]
            } else {
                assign[tree.parent(v).expect("non-root").index()]
            };
        }

        // Local (per-record) preorder numbering.
        let mut local_idx = vec![NONE_U16; n];
        let mut locals: Vec<Vec<NodeId>> = vec![Vec::new(); p_count];
        for (i, iv) in intervals.iter().enumerate() {
            let list = &mut locals[i];
            for root in iv.nodes(tree) {
                // DFS over the fragment, skipping cut children.
                let mut stack = vec![root];
                while let Some(v) = stack.pop() {
                    local_idx[v.index()] =
                        u16::try_from(list.len()).expect("fragment larger than u16::MAX nodes");
                    list.push(v);
                    for &c in tree.children(v).iter().rev() {
                        if owner[c.index()] == NONE_U32 {
                            stack.push(c);
                        }
                    }
                }
            }
        }

        // Build record images and discover proxy positions.
        let mut labels: Vec<Box<str>> = Vec::new();
        let mut label_ids: HashMap<Box<str>, u16> = HashMap::new();
        let mut label_of = |name: &str| -> u16 {
            if let Some(&id) = label_ids.get(name) {
                return id;
            }
            let id = u16::try_from(labels.len()).expect("more than u16::MAX labels");
            labels.push(name.into());
            label_ids.insert(name.into(), id);
            id
        };

        let mut records: Vec<RecordImage> = Vec::with_capacity(p_count);
        // (parent_record, parent_local, proxy_pos) per record.
        let mut proxy_info = vec![(NONE_U32, NONE_U16, NONE_U16); p_count];

        for (i, list) in locals.iter().enumerate() {
            let mut nodes: Vec<ImageNode> = list
                .iter()
                .map(|&v| ImageNode {
                    kind: doc.kind(v),
                    label: label_of(doc.name(v)),
                    parent_local: NONE_U16,
                    entry_pos: NONE_U16,
                    content: doc.content(v).map(Into::into),
                    entries: Vec::new(),
                })
                .collect();

            for (li, &v) in list.iter().enumerate() {
                let children = tree.children(v);
                if children.is_empty() {
                    continue;
                }
                let mut entries = Vec::with_capacity(children.len());
                let mut last_proxy = NONE_U32;
                for &c in children {
                    let o = owner[c.index()];
                    if o == NONE_U32 {
                        let cl = local_idx[c.index()];
                        nodes[cl as usize].parent_local = li as u16;
                        nodes[cl as usize].entry_pos = entries.len() as u16;
                        entries.push(ChildEntry::Local(cl));
                        last_proxy = NONE_U32;
                    } else if o != last_proxy {
                        // First member of a cut interval: one proxy per
                        // interval run.
                        proxy_info[o as usize] = (i as u32, li as u16, entries.len() as u16);
                        entries.push(ChildEntry::Proxy(o));
                        last_proxy = o;
                    }
                }
                nodes[li].entries = entries;
            }

            let roots = intervals[i]
                .nodes(tree)
                .map(|v| local_idx[v.index()])
                .collect();
            records.push(RecordImage {
                parent_record: NONE_U32,
                parent_local: NONE_U16,
                proxy_pos: NONE_U16,
                roots,
                nodes,
            });
        }
        for (i, rec) in records.iter_mut().enumerate() {
            let (pr, pl, pp) = proxy_info[i];
            rec.parent_record = pr;
            rec.parent_local = pl;
            rec.proxy_pos = pp;
        }

        // Place the encoded records onto pages: first fit over a small set
        // of open pages, like a record manager that keeps a free-space
        // inventory. Fragmentation is real and reported (paper Sec. 6.4).
        // Every page write goes through the checksumming layer, which
        // seals the typed page frame (class + FNV-64) on the way out.
        let backend: Box<dyn Pager> = Box::new(ChecksummingPager::new(backend));
        let mut pool = BufferPool::new(backend, config.buffer_pages);
        // A fresh backend has no committed state: every page is past the
        // write-back floor, so eviction may stream dirty pages out and
        // bulkload runs in bounded memory even for out-of-budget
        // documents. (A crash mid-load leaves a headerless file either
        // way.)
        pool.set_writeback_floor(0);
        // Pages 0 and 1 are the two header slots; the catalog goes after
        // the data pages so the store can be reopened from its page file
        // alone.
        let header_slot0 = pool.allocate()?;
        let header_slot1 = pool.allocate()?;
        debug_assert_eq!((header_slot0, header_slot1), (0, 1));
        let mut directory = Vec::with_capacity(p_count);
        let mut placer = RecordPlacer::new();
        for (no, rec) in records.iter().enumerate() {
            let bytes = record::encode(rec, no as u32, 1);
            directory.push(placer.place(&mut pool, &bytes)?);
        }
        // Persist the catalog: directory + label table across dedicated
        // pages, located from the header page.
        let root_record = owner[tree.root().index()];
        let catalog_bytes = catalog::encode_catalog(
            &directory,
            &labels,
            &[],
            root_record,
            config.record_limit_slots,
            1,
        );
        let catalog_first_page = pool.append_chunked(&catalog_bytes, PageClass::Catalog)?;
        // Initial commit: no pre-state exists yet, so no journal is needed;
        // epoch 1 lands in slot 1 and slot 0 stays invalid (zeroed).
        let header = catalog::encode_header(&Header {
            epoch: 1,
            root_record,
            catalog_first_page,
            catalog_len: catalog_bytes.len() as u64,
            record_limit: config.record_limit_slots,
            journal_first_page: 0,
            journal_len: 0,
        });
        pool.with_page(header_slot1, true, |buf| buf.copy_from_slice(&header))?;
        pool.flush()?;
        // Everything written so far is now the committed state: raise the
        // floor so only future appends qualify for dirty write-back.
        pool.set_writeback_floor(pool.page_count());

        Ok(assemble_fresh(
            pool,
            directory,
            labels,
            label_ids,
            root_record,
            (catalog_first_page, catalog_bytes),
            &config,
        ))
    }

    /// Number of live (non-deleted) records.
    pub fn live_record_count(&self) -> usize {
        self.directory
            .iter()
            .filter(|l| !matches!(l, RecordLoc::Free))
            .count()
    }

    /// Durably commit all pending changes (alias of [`XmlStore::commit`];
    /// kept for callers written against the pre-journal API).
    pub fn persist(&mut self) -> StoreResult<()> {
        self.commit()
    }

    /// Atomically commit every pending change (dirty pages, catalog and
    /// label-table growth) to the backend.
    ///
    /// Shadow-commit protocol: (1) append the new catalog, (2) append a
    /// redo journal holding the full image of every dirty page, (3) publish
    /// a header referencing both into the inactive header slot — **this
    /// single page write is the commit point** — then (4) checkpoint the
    /// dirty pages in place and (5) publish a journal-free header. A crash
    /// before (3) leaves the previous commit intact; a crash after it is
    /// repaired by replaying the journal in [`XmlStore::open`].
    pub fn commit(&mut self) -> StoreResult<()> {
        if self.batch.is_some() {
            return Err(StoreError::InvalidUpdate(
                "commit() inside an open group-commit batch; use commit_batch()",
            ));
        }
        if let Err(e) = self.commit_durable() {
            // Nothing was published: put the in-memory state back to the
            // last committed one. If the backend is dead (power cut) the
            // reload fails too; every later call will error the same way.
            let _ = self.rollback();
            return Err(e);
        }
        if self.defer_checkpoint {
            // Snapshot readers hold epoch pins: leave the journal as the
            // winner and the committed images in their dirty frames, so
            // no pinned page on the backend is overwritten. The commit is
            // durable; `apply_pending_checkpoint` finishes it later.
            self.pending_checkpoint = true;
            return Ok(());
        }
        // Past the commit point: a failure below leaves a replayable
        // journal behind, so the commit itself is not lost.
        self.checkpoint()
    }

    /// Phases (1)–(3) of the commit protocol, up to and including the
    /// commit point.
    fn commit_durable(&mut self) -> StoreResult<()> {
        self.commit_durable_with(None)
    }

    /// [`XmlStore::commit_durable`] with optional group-commit journal
    /// segmentation: `segments` lists the pages each batched operation
    /// newly dirtied, in batch order. Pages dirty before the batch began
    /// (deferred-checkpoint overlay images being re-journaled) lead the
    /// batch as a carry segment; pages that eviction already wrote back
    /// are clean again and need no journal entry (they sit past the
    /// write-back floor, where recovery never looks before the flip and
    /// the backend already holds their final image after it).
    fn commit_durable_with(&mut self, segments: Option<Vec<Vec<PageId>>>) -> StoreResult<()> {
        let quarantined: Vec<u32> = self.quarantined.iter().copied().collect();
        let catalog_bytes = catalog::encode_catalog(
            &self.directory,
            &self.labels,
            &quarantined,
            self.root_record,
            self.record_limit,
            self.epoch + 1,
        );
        let catalog_first_page = self
            .pool
            .append_chunked(&catalog_bytes, PageClass::Catalog)?;

        let dirty = self.pool.dirty_pages();
        let segment_ids: Vec<Vec<PageId>> = match segments {
            None => vec![dirty.clone()],
            Some(mut segs) => {
                let dirty_set: HashSet<PageId> = dirty.iter().copied().collect();
                let claimed: HashSet<PageId> = segs.iter().flatten().copied().collect();
                let carry: Vec<PageId> = dirty
                    .iter()
                    .copied()
                    .filter(|id| !claimed.contains(id))
                    .collect();
                for seg in &mut segs {
                    seg.retain(|id| dirty_set.contains(id));
                }
                if !carry.is_empty() {
                    segs.insert(0, carry);
                }
                segs
            }
        };
        let mut entry_segments = Vec::with_capacity(segment_ids.len());
        for ids in &segment_ids {
            let mut seg = Vec::with_capacity(ids.len());
            for &id in ids {
                seg.push((id, self.pool.page_image(id)?));
            }
            entry_segments.push(seg);
        }
        let journal_bytes = journal::encode_batched(&entry_segments);
        let journal_first_page = self
            .pool
            .append_chunked(&journal_bytes, PageClass::Journal)?;

        let header = Header {
            epoch: self.epoch + 1,
            root_record: self.root_record,
            catalog_first_page,
            catalog_len: catalog_bytes.len() as u64,
            record_limit: self.record_limit,
            journal_first_page,
            journal_len: journal_bytes.len() as u64,
        };
        // Durability barriers around the commit point: the catalog and
        // journal must be stable before the flip can name them, and the
        // flip must be stable before the commit is acked. These two
        // fsyncs are what group commit amortizes across a batch.
        self.pool.sync_backend()?;
        self.pool
            .write_through(header.slot(), &catalog::encode_header(&header))?;
        self.pool.sync_backend()?;
        self.epoch = header.epoch;
        self.committed_catalog = (catalog_first_page, catalog_bytes.len() as u64);
        self.committed_catalog_bytes = catalog_bytes;
        self.last_commit_journal = (journal_first_page, header.journal_len);
        // Every page on the backend now belongs to the committed state
        // (the flip published the catalog and journal just appended).
        self.pool.set_writeback_floor(self.pool.page_count());
        if self.defer_checkpoint {
            // The journaled images *are* the committed page states; keep
            // them so rollback of a later failed op cannot lose them and
            // snapshot readers can overlay them without replaying the
            // journal from disk.
            for seg in entry_segments {
                for (id, image) in seg {
                    self.committed_overlay.insert(id, image);
                }
            }
        }
        Ok(())
    }

    /// Phases (4)–(5): write the journaled images in place and retire the
    /// journal. Failures here are reported but do not lose the commit —
    /// still-dirty frames stay resident and the journal header stays the
    /// winner until a later checkpoint or recovery replay succeeds.
    fn checkpoint(&mut self) -> StoreResult<()> {
        self.pool.flush()?;
        let header = Header {
            epoch: self.epoch + 1,
            root_record: self.root_record,
            catalog_first_page: self.committed_catalog.0,
            catalog_len: self.committed_catalog.1,
            record_limit: self.record_limit,
            journal_first_page: 0,
            journal_len: 0,
        };
        // The in-place page images must be stable before the journal-free
        // header can declare the journal obsolete.
        self.pool.sync_backend()?;
        self.pool
            .write_through(header.slot(), &catalog::encode_header(&header))?;
        self.epoch = header.epoch;
        self.pending_checkpoint = false;
        self.committed_overlay.clear();
        Ok(())
    }

    /// Run the checkpoint a deferred [`XmlStore::commit`] skipped (called
    /// by the concurrent layer once every reader pin is released). No-op
    /// when nothing is pending. On failure the journal header stays the
    /// winner and this can simply be called again.
    pub fn apply_pending_checkpoint(&mut self) -> StoreResult<()> {
        if self.pending_checkpoint {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Whether a durable commit is still waiting for its checkpoint.
    pub fn has_pending_checkpoint(&self) -> bool {
        self.pending_checkpoint
    }

    /// Open a group-commit batch: update operations after this stage
    /// their changes in memory instead of committing one by one, and
    /// [`XmlStore::commit_batch`] publishes all of them under a *single*
    /// journal write and header flip. Crash recovery therefore restores
    /// either none or all of the batch — an exact prefix of what
    /// `commit_batch` acknowledged, since acks only exist after the flip.
    ///
    /// An operation that fails inside the batch rolls back to the
    /// savepoint taken at the previous operation boundary: earlier staged
    /// operations survive, only the failing one is discarded.
    pub fn begin_batch(&mut self) -> StoreResult<()> {
        self.require_writable()?;
        if self.batch.is_some() {
            return Err(StoreError::InvalidUpdate(
                "a group-commit batch is already open",
            ));
        }
        let save = self.savepoint()?;
        let claimed: HashSet<PageId> = save.dirty.iter().map(|&(id, _)| id).collect();
        self.batch = Some(BatchState {
            segments: Vec::new(),
            claimed,
            save,
            ops: 0,
        });
        Ok(())
    }

    /// Whether a group-commit batch is open.
    pub fn in_batch(&self) -> bool {
        self.batch.is_some()
    }

    /// Publish every operation staged since [`XmlStore::begin_batch`]
    /// under one journal write and one header flip; returns how many were
    /// staged. On error the whole batch is rolled back to the last
    /// committed state — the caller must treat every staged operation as
    /// unacknowledged (though, as with [`XmlStore::commit`], a failure
    /// *after* the flip can still leave the post-state durable).
    pub fn commit_batch(&mut self) -> StoreResult<usize> {
        let batch = self
            .batch
            .take()
            .ok_or(StoreError::InvalidUpdate("no group-commit batch is open"))?;
        if batch.ops == 0 {
            return Ok(0);
        }
        if let Err(e) = self.commit_durable_with(Some(batch.segments)) {
            let _ = self.rollback();
            return Err(e);
        }
        if self.defer_checkpoint {
            self.pending_checkpoint = true;
            return Ok(batch.ops);
        }
        self.checkpoint()?;
        Ok(batch.ops)
    }

    /// Abandon the open batch (if any), discarding every staged op.
    pub fn abort_batch(&mut self) -> StoreResult<()> {
        if self.batch.take().is_some() {
            self.rollback()?;
        }
        Ok(())
    }

    /// Capture everything a mid-batch rollback must restore.
    fn savepoint(&mut self) -> StoreResult<Savepoint> {
        let mut dirty = Vec::new();
        for id in self.pool.dirty_pages() {
            dirty.push((id, self.pool.page_image(id)?));
        }
        Ok(Savepoint {
            dirty,
            directory: self.directory.clone(),
            labels: self.labels.clone(),
            label_ids: self.label_ids.clone(),
            quarantined: self.quarantined.clone(),
            open_page: self.open_page,
            root_record: self.root_record,
        })
    }

    /// Operation boundary inside a batch: attribute the pages this op
    /// newly dirtied to its journal segment and take a fresh savepoint.
    /// Raises the write-back floor to the current page count so pages
    /// now owned by *staged* (but uncommitted) operations are never
    /// evicted dirty — their only safe copy is the resident frame until
    /// the batch commits.
    pub(crate) fn batch_op_staged(&mut self) -> StoreResult<()> {
        let save = self.savepoint()?;
        self.pool.set_writeback_floor(self.pool.page_count());
        let batch = self.batch.as_mut().expect("staging requires an open batch");
        let seg: Vec<PageId> = save
            .dirty
            .iter()
            .map(|&(id, _)| id)
            .filter(|id| !batch.claimed.contains(id))
            .collect();
        batch.claimed.extend(seg.iter().copied());
        batch.segments.push(seg);
        batch.ops += 1;
        batch.save = save;
        Ok(())
    }

    /// Roll back to the savepoint of the last staged operation, keeping
    /// the batch open. Touches no backend pages (savepoint images live in
    /// memory), mirroring [`XmlStore::rollback`].
    pub(crate) fn rollback_to_savepoint(&mut self) -> StoreResult<()> {
        self.pool.discard_dirty();
        let batch = self
            .batch
            .as_ref()
            .expect("savepoint requires an open batch");
        for (id, image) in &batch.save.dirty {
            self.pool.restore_dirty(*id, image);
        }
        self.directory = batch.save.directory.clone();
        self.labels = batch.save.labels.clone();
        self.label_ids = batch.save.label_ids.clone();
        self.quarantined = batch.save.quarantined.clone();
        self.open_page = batch.save.open_page;
        self.root_record = batch.save.root_record;
        self.cache.clear();
        self.hot = None;
        self.last_fetched = NONE_U32;
        Ok(())
    }

    /// Epoch of the current committed header.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The current committed header, reconstructed from in-memory state
    /// (identical to what the winning header slot holds on the backend).
    pub(crate) fn committed_header(&self) -> Header {
        let (journal_first_page, journal_len) = if self.pending_checkpoint {
            self.last_commit_journal
        } else {
            (0, 0)
        };
        Header {
            epoch: self.epoch,
            root_record: self.root_record,
            catalog_first_page: self.committed_catalog.0,
            catalog_len: self.committed_catalog.1,
            record_limit: self.record_limit,
            journal_first_page,
            journal_len,
        }
    }

    /// Discard all uncommitted changes, restoring the in-memory state from
    /// the last committed catalog. Does not touch the backend: the catalog
    /// is restored from its in-memory copy, so rollback works even when
    /// the backend is failing.
    pub(crate) fn rollback(&mut self) -> StoreResult<()> {
        // A full rollback abandons any open batch: the savepoint chain is
        // meaningless once the committed state is restored.
        self.batch = None;
        self.pool.discard_dirty();
        // Under a deferred checkpoint the committed images of earlier
        // epochs still live in dirty frames (discarded just above): put
        // them back, or the eventual checkpoint would silently skip them
        // and reads between now and then would see pre-commit backend
        // bytes.
        for (id, image) in &self.committed_overlay {
            self.pool.restore_dirty(*id, image);
        }
        self.cache.clear();
        self.hot = None;
        self.last_fetched = NONE_U32;
        self.open_page = None;
        let cat = catalog::decode_catalog(&self.committed_catalog_bytes, self.root_record)?;
        let mut label_ids = HashMap::with_capacity(cat.labels.len());
        for (i, l) in cat.labels.iter().enumerate() {
            label_ids.insert(l.clone(), i as u16);
        }
        self.directory = cat.directory;
        self.labels = cat.labels;
        self.label_ids = label_ids;
        self.quarantined = cat.quarantined.into_iter().collect();
        Ok(())
    }

    /// Reopen a previously committed store from its page file, running
    /// crash recovery if the last commit did not finish checkpointing:
    /// the winning header's redo journal (if any) is replayed — every
    /// journaled image is the post-commit page state, so replay is
    /// idempotent — and a journal-free header is published.
    pub fn open(backend: Box<dyn Pager>, config: StoreConfig) -> StoreResult<XmlStore> {
        Self::open_with(backend, config, OpenMode::Strict)
    }

    /// [`XmlStore::open`] with an explicit [`OpenMode`].
    pub fn open_with(
        mut backend: Box<dyn Pager>,
        config: StoreConfig,
        mode: OpenMode,
    ) -> StoreResult<XmlStore> {
        if backend.page_count() < 2 {
            return Err(StoreError::corrupt("file too small for header slots"));
        }
        // Header slots are read raw (below any checksum verification):
        // the ping-pong protocol relies on decoding *both* slots and
        // falling back past a torn one, and the slots also announce the
        // format version that decides whether frames exist at all.
        let mut slot0 = Box::new([0u8; PAGE_SIZE]);
        let mut slot1 = Box::new([0u8; PAGE_SIZE]);
        backend.read(0, &mut slot0)?;
        backend.read(1, &mut slot1)?;
        let (mut header, format) = catalog::pick_header(&slot0, &slot1)?;
        let backend: Box<dyn Pager> = if format >= 3 {
            Box::new(ChecksummingPager::new(backend))
        } else {
            backend
        };
        let chunk = if format >= 3 { PAYLOAD_SIZE } else { PAGE_SIZE };
        let mut pool = BufferPool::new(backend, config.buffer_pages);
        if header.journal_len > 0 {
            let bytes = pool.read_chunked(
                header.journal_first_page,
                header.journal_len as usize,
                chunk,
            )?;
            for (page, image) in journal::decode(&bytes)? {
                pool.write_through(page, &image)?;
            }
            header.epoch += 1;
            header.journal_first_page = 0;
            header.journal_len = 0;
            pool.write_through(header.slot(), &catalog::encode_header(&header))?;
        }
        let catalog_bytes = pool.read_chunked(
            header.catalog_first_page,
            header.catalog_len as usize,
            chunk,
        )?;
        let cat = catalog::decode_catalog(&catalog_bytes, header.root_record)?;
        let mut label_ids = HashMap::with_capacity(cat.labels.len());
        for (i, l) in cat.labels.iter().enumerate() {
            label_ids.insert(l.clone(), i as u16);
        }
        // The file now holds exactly the committed state (recovery above
        // replayed any pending journal): appends past here may be
        // written back by eviction.
        pool.set_writeback_floor(pool.page_count());
        Ok(XmlStore {
            pool,
            directory: cat.directory,
            labels: cat.labels,
            label_ids,
            root_record: cat.root_record,
            cache: RecordCache::new(config.record_cache),
            nav: NavStats::default(),
            last_fetched: NONE_U32,
            record_limit: header.record_limit,
            open_page: None,
            hot: None,
            epoch: header.epoch,
            committed_catalog: (header.catalog_first_page, header.catalog_len),
            committed_catalog_bytes: catalog_bytes,
            format,
            mode,
            quarantined: cat.quarantined.into_iter().collect(),
            defer_checkpoint: false,
            pending_checkpoint: false,
            committed_overlay: HashMap::new(),
            last_commit_journal: (0, 0),
            batch: None,
            readahead_records: config.readahead_records,
        })
    }

    /// Assemble a read-only snapshot store from an already-committed
    /// state held in memory: the pinned header and catalog bytes come
    /// from the writer (never re-read from the backend, whose header
    /// slots the writer will reuse), and `pool` wraps a backend stack
    /// that overlays the pending journal's page images. Used by
    /// `concurrent::SharedStore`; performs no backend writes.
    ///
    /// The store is opened [`OpenMode::Degraded`]: updates are rejected
    /// (`require_writable`), strict reads still fail loudly on
    /// corruption, and degraded reads are available for shed requests.
    pub(crate) fn open_snapshot(
        pool: BufferPool,
        config: &StoreConfig,
        catalog_bytes: Vec<u8>,
        header: &Header,
        format: u8,
    ) -> StoreResult<XmlStore> {
        let cat = catalog::decode_catalog(&catalog_bytes, header.root_record)?;
        let mut label_ids = HashMap::with_capacity(cat.labels.len());
        for (i, l) in cat.labels.iter().enumerate() {
            label_ids.insert(l.clone(), i as u16);
        }
        Ok(XmlStore {
            pool,
            directory: cat.directory,
            labels: cat.labels,
            label_ids,
            root_record: cat.root_record,
            cache: RecordCache::new(config.record_cache),
            nav: NavStats::default(),
            last_fetched: NONE_U32,
            record_limit: header.record_limit,
            open_page: None,
            hot: None,
            epoch: header.epoch,
            committed_catalog: (header.catalog_first_page, header.catalog_len),
            committed_catalog_bytes: catalog_bytes,
            format,
            mode: OpenMode::Degraded,
            quarantined: cat.quarantined.into_iter().collect(),
            defer_checkpoint: false,
            pending_checkpoint: false,
            committed_overlay: HashMap::new(),
            last_commit_journal: (0, 0),
            batch: None,
            readahead_records: config.readahead_records,
        })
    }

    /// On-disk format version backing this store (3 current, 2 legacy).
    pub fn format_version(&self) -> u8 {
        self.format
    }

    /// How this store treats corrupt/quarantined partitions on read.
    pub fn open_mode(&self) -> OpenMode {
        self.mode
    }

    /// Records quarantined by `fsck --repair`, ascending.
    pub fn quarantined_records(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    /// `Err` unless this store accepts updates: legacy format-2 stores
    /// and degraded-mode opens are read-only.
    pub(crate) fn require_writable(&self) -> StoreResult<()> {
        if self.format < 3 {
            return Err(StoreError::InvalidUpdate(
                "legacy format-2 store is read-only; migrate it with compact()",
            ));
        }
        if self.mode == OpenMode::Degraded {
            return Err(StoreError::InvalidUpdate(
                "store opened in degraded mode is read-only",
            ));
        }
        Ok(())
    }

    /// Fetch (and decode if necessary) a record.
    pub(crate) fn fetch(&mut self, no: u32) -> StoreResult<Rc<RecordData>> {
        if no == self.last_fetched {
            if let Some(rec) = &self.hot {
                return Ok(rec.clone());
            }
        }
        self.nav.record_switches += 1;
        self.last_fetched = no;
        if let Some(rec) = self.cache.get(no) {
            self.nav.record_cache_hits += 1;
            self.hot = Some(rec.clone());
            return Ok(rec);
        }
        self.nav.record_decodes += 1;
        if self.quarantined.contains(&no) {
            return Err(StoreError::corrupt_record(
                "record quarantined by fsck repair",
                no,
            ));
        }
        let loc = *self
            .directory
            .get(no as usize)
            .ok_or(StoreError::BadRecord(no))?;
        self.readahead(no);
        let bytes = match loc {
            RecordLoc::InPage { page, slot } => self
                .pool
                .with_page(page, false, |buf| {
                    SlottedPage::new(buf).get(slot).map(<[u8]>::to_vec)
                })
                .map_err(|e| e.in_record(no))?,
            RecordLoc::Overflow { first_page, len } => Some(read_overflow_chain(
                &mut self.pool,
                no,
                first_page,
                len as usize,
                self.format < 3,
            )?),
            RecordLoc::Free => None,
        };
        let bytes = bytes.ok_or(StoreError::BadRecord(no))?;
        let rec = record::decode(bytes).map_err(|e| e.in_record(no))?;
        // A framed record announces which directory slot it was written
        // for; a mismatch means the directory points at the wrong page.
        if rec.self_no != NONE_U32 && rec.self_no != no {
            return Err(StoreError::corrupt_record(
                "record self-number does not match directory slot",
                no,
            ));
        }
        // Label ids must resolve in this store's label table.
        for n in &rec.nodes {
            if n.label as usize >= self.labels.len() {
                return Err(StoreError::corrupt_record("label id out of range", no));
            }
        }
        let rec = Rc::new(rec);
        self.cache.insert(no, rec.clone());
        self.hot = Some(rec.clone());
        Ok(rec)
    }

    /// Prefetch the pages of the records following `no` in directory
    /// order. Bulkload assigns record numbers in document order and lays
    /// their pages out consecutively, so the next records are exactly the
    /// sibling-partition chain a forward navigation crosses next.
    /// Best-effort: quarantined, free, and legacy-format records are
    /// skipped, and the pool ignores prefetch read failures.
    fn readahead(&mut self, no: u32) {
        if self.readahead_records == 0 || self.format < 3 {
            return;
        }
        let mut pages: Vec<PageId> = Vec::new();
        for next in no as usize + 1..=(no as usize + self.readahead_records) {
            let Some(loc) = self.directory.get(next) else {
                break;
            };
            if self.quarantined.contains(&(next as u32)) {
                continue;
            }
            match *loc {
                RecordLoc::InPage { page, .. } => pages.push(page),
                RecordLoc::Overflow { first_page, len } => {
                    let span = overflow_page_span(len as usize).min(4);
                    pages.extend((0..span as u32).map(|i| first_page + i));
                }
                RecordLoc::Free => {}
            }
        }
        self.pool.prefetch(&pages);
    }

    /// The document root.
    pub fn root(&mut self) -> StoreResult<NodeRef> {
        let rec = self.fetch(self.root_record)?;
        Ok(NodeRef {
            record: self.root_record,
            node: rec.roots[0],
        })
    }

    /// Run `f` on the decoded node.
    pub fn with_node<T>(&mut self, r: NodeRef, f: impl FnOnce(&RecNode) -> T) -> StoreResult<T> {
        let rec = self.fetch(r.record)?;
        let node = rec
            .nodes
            .get(r.node as usize)
            .ok_or(StoreError::BadRecord(r.record))?;
        Ok(f(node))
    }

    /// Run `f` on the decoded record and node together (needed to access
    /// content and child entries, which live in per-record arenas).
    pub fn with_node_in<T>(
        &mut self,
        r: NodeRef,
        f: impl FnOnce(&RecordData, &RecNode) -> T,
    ) -> StoreResult<T> {
        let rec = self.fetch(r.record)?;
        let node = rec
            .nodes
            .get(r.node as usize)
            .ok_or(StoreError::BadRecord(r.record))?;
        Ok(f(&rec, node))
    }

    /// Node kind.
    pub fn node_kind(&mut self, r: NodeRef) -> StoreResult<NodeKind> {
        self.with_node(r, |n| n.kind)
    }

    /// Node label id (see [`XmlStore::label_name`]).
    pub fn node_label(&mut self, r: NodeRef) -> StoreResult<u16> {
        self.with_node(r, |n| n.label)
    }

    /// Node content (owned copy).
    pub fn node_content(&mut self, r: NodeRef) -> StoreResult<Option<String>> {
        self.with_node_in(r, |rec, n| rec.content(n).map(str::to_string))
    }

    /// Resolve a label id to its name.
    pub fn label_name(&self, id: u16) -> &str {
        &self.labels[id as usize]
    }

    /// Resolve a name to its label id, if the store contains it.
    pub fn label_id(&self, name: &str) -> Option<u16> {
        self.label_ids.get(name).copied()
    }

    /// Visit all children of `r` in document order, delivering kind and
    /// label along with the handle.
    ///
    /// This is the bulk primitive behind the child and descendant axes:
    /// local children cost nothing beyond the already-pinned record, and
    /// each cut child *interval* (proxy) costs exactly one record fetch —
    /// the asymmetry that makes sibling partitioning pay off.
    pub fn for_each_child(
        &mut self,
        r: NodeRef,
        mut f: impl FnMut(NodeRef, NodeKind, u16),
    ) -> StoreResult<()> {
        let rec = self.fetch(r.record)?;
        let node = rec
            .nodes
            .get(r.node as usize)
            .ok_or(StoreError::BadRecord(r.record))?;
        for entry in rec.entries(node) {
            match *entry {
                ChildEntry::Local(i) => {
                    let cn = &rec.nodes[i as usize];
                    f(
                        NodeRef {
                            record: r.record,
                            node: i,
                        },
                        cn.kind,
                        cn.label,
                    );
                }
                ChildEntry::Proxy(no) => {
                    let prec = self.fetch(no)?;
                    for &root in &prec.roots {
                        let cn = &prec.nodes[root as usize];
                        f(
                            NodeRef {
                                record: no,
                                node: root,
                            },
                            cn.kind,
                            cn.label,
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// First child in document order (elements only; attributes are
    /// children in the model and are *not* skipped here — axis semantics
    /// belong to the query layer).
    pub fn first_child(&mut self, r: NodeRef) -> StoreResult<Option<NodeRef>> {
        let rec = self.fetch(r.record)?;
        let node = &rec.nodes[r.node as usize];
        match rec.entries(node).first() {
            None => Ok(None),
            Some(&ChildEntry::Local(i)) => Ok(Some(NodeRef {
                record: r.record,
                node: i,
            })),
            Some(&ChildEntry::Proxy(no)) => self.first_root(no).map(Some),
        }
    }

    /// Parent node; `None` at the document root.
    pub fn parent(&mut self, r: NodeRef) -> StoreResult<Option<NodeRef>> {
        let rec = self.fetch(r.record)?;
        let node = &rec.nodes[r.node as usize];
        if node.parent_local != NONE_U16 {
            return Ok(Some(NodeRef {
                record: r.record,
                node: node.parent_local,
            }));
        }
        if rec.parent_record == NONE_U32 {
            return Ok(None);
        }
        Ok(Some(NodeRef {
            record: rec.parent_record,
            node: rec.parent_local,
        }))
    }

    /// Next sibling in document order.
    pub fn next_sibling(&mut self, r: NodeRef) -> StoreResult<Option<NodeRef>> {
        self.sibling(r, 1)
    }

    /// Previous sibling in document order.
    pub fn prev_sibling(&mut self, r: NodeRef) -> StoreResult<Option<NodeRef>> {
        self.sibling(r, -1)
    }

    fn sibling(&mut self, r: NodeRef, dir: isize) -> StoreResult<Option<NodeRef>> {
        let rec = self.fetch(r.record)?;
        let node = &rec.nodes[r.node as usize];
        if node.parent_local != NONE_U16 {
            // Parent is local: step through its entry list.
            let parent = &rec.nodes[node.parent_local as usize];
            let pos = node.entry_pos as isize + dir;
            return self.entry_neighbor(r.record, rec.entries(parent), pos, dir);
        }
        // Fragment root: try the neighboring root in this record.
        let pos = rec
            .root_pos(r.node)
            .ok_or_else(|| StoreError::corrupt_record("fragment root not in root list", r.record))?
            as isize;
        let next = pos + dir;
        if next >= 0 && (next as usize) < rec.roots.len() {
            return Ok(Some(NodeRef {
                record: r.record,
                node: rec.roots[next as usize],
            }));
        }
        // Cross into the parent record, stepping over our proxy entry.
        if rec.parent_record == NONE_U32 {
            return Ok(None);
        }
        let parent_rec = self.fetch(rec.parent_record)?;
        let parent = &parent_rec.nodes[rec.parent_local as usize];
        let pos = rec.proxy_pos as isize + dir;
        self.entry_neighbor(rec.parent_record, parent_rec.entries(parent), pos, dir)
    }

    /// Resolve the child entry at `pos` of `parent` (which lives in record
    /// `record_no`) into a node reference. A proxy is entered at its first
    /// fragment root when stepping forward (`dir > 0`) and at its last
    /// when stepping backward.
    fn entry_neighbor(
        &mut self,
        record_no: u32,
        entries: &[ChildEntry],
        pos: isize,
        dir: isize,
    ) -> StoreResult<Option<NodeRef>> {
        if pos < 0 || pos as usize >= entries.len() {
            return Ok(None);
        }
        match entries[pos as usize] {
            ChildEntry::Local(i) => Ok(Some(NodeRef {
                record: record_no,
                node: i,
            })),
            ChildEntry::Proxy(no) => {
                if dir > 0 {
                    self.first_root(no).map(Some)
                } else {
                    self.last_root(no).map(Some)
                }
            }
        }
    }

    fn first_root(&mut self, no: u32) -> StoreResult<NodeRef> {
        let rec = self.fetch(no)?;
        Ok(NodeRef {
            record: no,
            node: rec.roots[0],
        })
    }

    fn last_root(&mut self, no: u32) -> StoreResult<NodeRef> {
        let rec = self.fetch(no)?;
        Ok(NodeRef {
            record: no,
            node: *rec.roots.last().expect("records have roots"),
        })
    }

    /// Navigation counters.
    pub fn nav_stats(&self) -> NavStats {
        self.nav
    }

    /// Reset navigation counters (e.g. between measured queries).
    pub fn reset_nav_stats(&mut self) {
        self.nav = NavStats::default();
        self.last_fetched = NONE_U32;
        self.hot = None;
    }

    /// Buffer pool counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Resident buffer-pool frames right now.
    pub fn buffer_resident(&self) -> usize {
        self.pool.resident()
    }

    /// Re-budget the buffer pool (see [`BufferPool::set_capacity`]):
    /// shrinking evicts eagerly so a cut frees memory immediately.
    pub fn set_buffer_capacity(&mut self, pages: usize) -> StoreResult<()> {
        self.pool.set_capacity(pages)
    }

    /// Number of records (= partitions).
    pub fn record_count(&self) -> usize {
        self.directory.len()
    }

    /// Total allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }

    /// Occupied disk space in bytes (allocated pages × page size), the
    /// metric of Table 3's first row.
    pub fn occupied_bytes(&self) -> u64 {
        self.page_count() as u64 * PAGE_SIZE as u64
    }

    /// Rebuild the document by pure cursor navigation — used by round-trip
    /// tests to prove the store preserves content and order.
    pub fn to_document(&mut self) -> StoreResult<Document> {
        let root = self.root()?;
        self.subtree_to_document(root)
    }

    /// Rebuild the subtree rooted at `root` (which must be an element) as
    /// a standalone document — the collection layer uses this to extract
    /// one document from a shard whose store root fans out over many.
    pub fn subtree_to_document(&mut self, root: NodeRef) -> StoreResult<Document> {
        let (kind, label, content) = self.with_node_in(root, |rec, n| {
            (n.kind, n.label, rec.content(n).map(str::to_string))
        })?;
        assert_eq!(kind, NodeKind::Element, "document root must be an element");
        let _ = content;
        let root_name = self.label_name(label).to_string();
        let mut b = DocumentBuilder::new(&root_name);
        let mut stack: Vec<(NodeRef, natix_xml::NodeId)> = vec![(root, natix_xml::NodeId::ROOT)];
        while let Some((r, target)) = stack.pop() {
            // Add all children in document order; element children are
            // queued for their own expansion (queue order is irrelevant —
            // sibling order is fixed by the insertion order under each
            // parent).
            let mut c = self.first_child(r)?;
            while let Some(cr) = c {
                let (kind, label, content) = self.with_node_in(cr, |rec, n| {
                    (n.kind, n.label, rec.content(n).map(str::to_string))
                })?;
                let name = self.label_name(label).to_string();
                let content = content.unwrap_or_default();
                match kind {
                    NodeKind::Element => {
                        let id = b.element(target, &name);
                        stack.push((cr, id));
                    }
                    NodeKind::Attribute => {
                        b.attribute(target, &name, &content);
                    }
                    NodeKind::Text => {
                        b.text(target, &content);
                    }
                    NodeKind::Comment => {
                        b.comment(target, &content);
                    }
                    NodeKind::ProcessingInstruction => {
                        b.processing_instruction(target, &name, &content);
                    }
                }
                c = self.next_sibling(cr)?;
            }
        }
        Ok(b.build())
    }

    /// Degraded read: rebuild whatever survives, plus an exact report of
    /// every partition that did not. Subtrees whose records are corrupt
    /// or quarantined are skipped at their proxy entry and recorded as
    /// [`MissingInterval`]s; everything else is reproduced faithfully.
    /// Corruption of the root record itself is not salvageable and
    /// propagates as an error.
    pub fn to_document_degraded(&mut self) -> StoreResult<(Document, DamageReport)> {
        self.salvage_document(&HashSet::new())
    }

    /// Oracle helper for corruption tests: rebuild the document as if the
    /// records in `exclude` had been lost, on an otherwise clean store.
    /// A degraded read of a damaged store must equal the partial read of
    /// its clean twin excluding the reported records.
    pub fn to_document_partial(&mut self, exclude: &HashSet<u32>) -> StoreResult<Document> {
        Ok(self.salvage_document(exclude)?.0)
    }

    fn salvage_document(
        &mut self,
        exclude: &HashSet<u32>,
    ) -> StoreResult<(Document, DamageReport)> {
        let mut damage = DamageReport::default();
        let root = self.root()?;
        let (kind, label) = self.with_node(root, |n| (n.kind, n.label))?;
        assert_eq!(kind, NodeKind::Element, "document root must be an element");
        let root_name = self.label_name(label).to_string();
        let mut b = DocumentBuilder::new(&root_name);
        let mut stack: Vec<(NodeRef, natix_xml::NodeId)> = vec![(root, natix_xml::NodeId::ROOT)];
        while let Some((r, target)) = stack.pop() {
            // Records on the stack decoded successfully when discovered,
            // so this re-fetch (cache-miss at worst) cannot newly fail.
            let rec = self.fetch(r.record)?;
            let parent = &rec.nodes[r.node as usize];
            for (pos, entry) in rec.entries(parent).iter().enumerate() {
                match *entry {
                    ChildEntry::Local(i) => {
                        salvage_emit(&mut b, &mut stack, &self.labels, &rec, r.record, i, target);
                    }
                    ChildEntry::Proxy(no) => {
                        let child = if exclude.contains(&no) {
                            Err(StoreError::corrupt_record(
                                "record excluded from partial read",
                                no,
                            ))
                        } else {
                            self.fetch(no)
                        };
                        match child {
                            Ok(crec) => {
                                for &root_node in &crec.roots {
                                    salvage_emit(
                                        &mut b,
                                        &mut stack,
                                        &self.labels,
                                        &crec,
                                        no,
                                        root_node,
                                        target,
                                    );
                                }
                            }
                            Err(e) if e.is_corruption() => {
                                damage.missing.push(MissingInterval {
                                    record: no,
                                    parent: r,
                                    entry_pos: pos as u16,
                                    cause: e.to_string(),
                                });
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        Ok((b.build(), damage))
    }
}

/// Append node `node` of record `rec` (number `record_no`) under builder
/// node `target`, queueing elements for their own child expansion.
fn salvage_emit(
    b: &mut DocumentBuilder,
    stack: &mut Vec<(NodeRef, natix_xml::NodeId)>,
    labels: &[Box<str>],
    rec: &RecordData,
    record_no: u32,
    node: u16,
    target: natix_xml::NodeId,
) {
    let n = &rec.nodes[node as usize];
    let name = &*labels[n.label as usize];
    let content = rec.content(n).unwrap_or_default();
    match n.kind {
        NodeKind::Element => {
            let id = b.element(target, name);
            stack.push((
                NodeRef {
                    record: record_no,
                    node,
                },
                id,
            ));
        }
        NodeKind::Attribute => {
            b.attribute(target, name, content);
        }
        NodeKind::Text => {
            b.text(target, content);
        }
        NodeKind::Comment => {
            b.comment(target, content);
        }
        NodeKind::ProcessingInstruction => {
            b.processing_instruction(target, name, content);
        }
    }
}

/// Convenience: bulkload using any partitioning algorithm.
pub fn bulkload_with(
    doc: &Document,
    partitioner: &dyn natix_core::Partitioner,
    k: natix_tree::Weight,
    backend: Box<dyn Pager>,
    config: StoreConfig,
) -> StoreResult<XmlStore> {
    let partitioning = partitioner
        .partition(doc.tree(), k)
        .unwrap_or_else(|e| panic!("partitioner {} failed: {e}", partitioner.name()));
    XmlStore::bulkload(doc, &partitioning, backend, config)
}
