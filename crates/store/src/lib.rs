//! A Natix-like storage engine for partitioned XML documents.
//!
//! The paper's query-performance experiment (Sec. 6.4, Table 3) loads a
//! document into the Natix store under different partitioning algorithms
//! and measures navigation-heavy XPath queries. This crate reproduces the
//! storage machinery that experiment depends on:
//!
//! * **slotted pages** ([`SlottedPage`]) — 8 KB disk pages holding several
//!   records, as in Natix's record manager;
//! * **pagers and a buffer pool** ([`Pager`], [`BufferPool`]) — in-memory
//!   and file-backed page storage behind a CLOCK buffer pool with hit/miss
//!   counters;
//! * **subtree-fragment records** ([`RecordData`]) — one record per
//!   partition, holding the interval's subtrees with *proxy* entries
//!   linking to cut child intervals and a back-link to the parent record;
//! * **the store** ([`XmlStore`]) — partitioner-driven bulkload, a record
//!   directory, a small decoded-record cache, and navigation primitives
//!   (`first_child` / `next_sibling` / `prev_sibling` / `parent`) that
//!   transparently cross record boundaries while counting every crossing.
//!
//! The cost model matches the paper's premise: navigation inside a record
//! is an array access; entering a record that is not in the small decoded
//! cache costs page reads plus a record decode. Fewer partitions therefore
//! mean faster navigation — which is what Table 3 measures.

mod bulkload;
mod catalog;
mod collection;
mod concurrent;
mod fsck;
mod journal;
mod page;
mod pager;
mod record;
mod replicate;
mod store;
mod update;

pub use bulkload::{stream_append_document, stream_bulkload, BulkloadError, LoadStats};
pub use collection::{
    bulkload_collection, bulkload_collection_with, fsck_collection, read_catalog, shard_path,
    BulkloadOptions, BulkloadReport, Collection, ShardBackendFactory, ShardSegment, CATALOG_FILE,
};
pub use concurrent::{
    AdmissionConfig, BatchOp, ConcurrencyStats, PagerFactory, ServedRead, SharedStore, Snapshot,
    StorageStats, WriteGuard,
};
pub use fsck::{fsck, FsckFinding, FsckReport, FsckSeverity};
pub use page::{
    page_class_of, seal_frame, verify_frame, FrameCheck, PageClass, SlottedPage, FORMAT_VERSION,
    MAX_IN_PAGE, PAGE_SIZE, PAYLOAD_SIZE,
};
pub use pager::{
    corrupt_checksum_of_class, corrupt_page_of_class, inject_bit_rot, io_error_is_resource,
    io_error_is_transient, BufferPool, BufferStats, ChecksummingPager, ErrorCategory, Fault,
    FaultInjectingPager, FaultSchedule, FilePager, MemPager, PageId, Pager, RetryPolicy,
    RetryStats, RetryingPager, SharedMemPager, StoreError, StoreResult, READ_ONLY_RETRY_HINT_MS,
    RESOURCE_BACKOFF_FACTOR,
};
pub use record::{ChildEntry, RecNode, RecordData};
pub use replicate::{
    decode_part, ApplyOutcome, BatchKind, CaptureHandle, CapturePager, Follower, ReplBatch,
    ReplPart, ReplicaSource, REPL_LOG_BATCHES, REPL_PART_MAGIC, REPL_PART_MAX_PAGES,
};
pub use store::{
    bulkload_with, DamageReport, MissingInterval, NavStats, NodeRef, OpenMode, StoreConfig,
    XmlStore,
};

#[cfg(test)]
mod tests {
    use super::*;
    use natix_core::{Ekm, Km, Partitioner};
    use natix_xml::{parse, NodeKind};

    fn sample_doc() -> natix_xml::Document {
        parse(concat!(
            r#"<site><regions><europe>"#,
            r#"<item id="i0"><name>first thing</name><payment>cash or wire transfer money</payment></item>"#,
            r#"<item id="i1"><name>second</name><mailbox><mail><from>Ann Marble</from><to>Bob Noble</to></mail></mailbox></item>"#,
            r#"<item id="i2"><name>third</name></item>"#,
            r#"</europe></regions><people><person id="p0"><name>Carol Stone</name></person></people></site>"#,
        ))
        .unwrap()
    }

    fn load(doc: &natix_xml::Document, alg: &dyn Partitioner, k: u64) -> XmlStore {
        bulkload_with(
            doc,
            alg,
            k,
            Box::new(MemPager::new()),
            StoreConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_with_ekm() {
        let doc = sample_doc();
        for k in [8, 12, 20, 64, 4096] {
            let mut store = load(&doc, &Ekm, k);
            let back = store.to_document().unwrap();
            assert_eq!(back.to_xml(), doc.to_xml(), "K={k}");
        }
    }

    #[test]
    fn roundtrip_with_km() {
        let doc = sample_doc();
        for k in [8, 16, 64] {
            let mut store = load(&doc, &Km, k);
            let back = store.to_document().unwrap();
            assert_eq!(back.to_xml(), doc.to_xml(), "K={k}");
        }
    }

    #[test]
    fn navigation_crosses_records() {
        let doc = sample_doc();
        // Small K forces many records.
        let mut store = load(&doc, &Ekm, 10);
        assert!(store.record_count() > 1);
        let root = store.root().unwrap();
        assert_eq!(store.node_kind(root).unwrap(), NodeKind::Element);
        let root_label = store.node_label(root).unwrap();
        assert_eq!(store.label_name(root_label), "site");
        // Walk to the items and count them via sibling navigation.
        let regions = store.first_child(root).unwrap().unwrap();
        let europe = store.first_child(regions).unwrap().unwrap();
        let mut c = store.first_child(europe).unwrap();
        let mut items = 0;
        while let Some(r) = c {
            if store.node_kind(r).unwrap() == NodeKind::Element {
                items += 1;
            }
            c = store.next_sibling(r).unwrap();
        }
        assert_eq!(items, 3);
        assert!(store.nav_stats().record_switches > 0);
    }

    #[test]
    fn prev_sibling_mirrors_next() {
        let doc = sample_doc();
        let mut store = load(&doc, &Ekm, 10);
        let root = store.root().unwrap();
        let regions = store.first_child(root).unwrap().unwrap();
        let europe = store.first_child(regions).unwrap().unwrap();
        // Collect children forward, then verify backward traversal matches.
        let mut forward = Vec::new();
        let mut c = store.first_child(europe).unwrap();
        while let Some(r) = c {
            forward.push(r);
            c = store.next_sibling(r).unwrap();
        }
        let mut backward = Vec::new();
        let mut c = Some(*forward.last().unwrap());
        while let Some(r) = c {
            backward.push(r);
            c = store.prev_sibling(r).unwrap();
        }
        backward.reverse();
        assert_eq!(forward, backward);
        // And parents point back at the element we came from.
        for &r in &forward {
            assert_eq!(store.parent(r).unwrap(), Some(europe));
        }
        assert_eq!(store.parent(root).unwrap(), None);
    }

    #[test]
    fn fewer_partitions_fewer_switches() {
        // The core claim: the same traversal over an EKM layout crosses
        // fewer records than over a KM layout.
        let doc = sample_doc();
        let mut ekm = load(&doc, &Ekm, 24);
        let mut km = load(&doc, &Km, 24);
        assert!(ekm.record_count() <= km.record_count());
        for store in [&mut ekm, &mut km] {
            store.reset_nav_stats();
            let d = store.to_document().unwrap();
            assert_eq!(d.len(), doc.len());
        }
        assert!(
            ekm.nav_stats().record_switches <= km.nav_stats().record_switches,
            "EKM switches {} > KM switches {}",
            ekm.nav_stats().record_switches,
            km.nav_stats().record_switches
        );
    }

    #[test]
    fn file_backed_store_roundtrips() {
        let dir = std::env::temp_dir().join(format!("natix-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.natix");
        let doc = sample_doc();
        let pager = FilePager::create(&path).unwrap();
        let mut store =
            bulkload_with(&doc, &Ekm, 16, Box::new(pager), StoreConfig::default()).unwrap();
        let back = store.to_document().unwrap();
        assert_eq!(back.to_xml(), doc.to_xml());
        assert!(path.metadata().unwrap().len() >= PAGE_SIZE as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_records_use_overflow_pages() {
        // K large enough that the whole document is one record bigger than
        // a page: content strings of ~300 bytes × 40 nodes ≈ 12 KB.
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<x>{}</x>", "y".repeat(300 + i)));
        }
        xml.push_str("</r>");
        let doc = parse(&xml).unwrap();
        let mut store = load(&doc, &Ekm, 1_000_000);
        assert_eq!(store.record_count(), 1);
        assert!(store.page_count() >= 2, "expected overflow chain");
        let back = store.to_document().unwrap();
        assert_eq!(back.to_xml(), doc.to_xml());
    }

    #[test]
    fn legacy_v2_store_opens_read_only() {
        use crate::page::fnv64;
        use crate::record::{ImageNode, RecordImage, NONE_U16, NONE_U32};

        // Fabricate a format-2 page file by hand: zero slot 0, a
        // `NATIXST2` header at epoch 1 in slot 1, the record bytes in a
        // bare (headerless, PAGE_SIZE-chunked) overflow chain at page 2,
        // and the bare catalog blob at page 3.
        let img = RecordImage {
            parent_record: NONE_U32,
            parent_local: NONE_U16,
            proxy_pos: NONE_U16,
            roots: vec![0],
            nodes: vec![
                ImageNode {
                    kind: NodeKind::Element,
                    label: 0,
                    parent_local: NONE_U16,
                    entry_pos: NONE_U16,
                    content: None,
                    entries: vec![ChildEntry::Local(1)],
                },
                ImageNode {
                    kind: NodeKind::Text,
                    label: 1,
                    parent_local: 0,
                    entry_pos: 0,
                    content: Some("hello".into()),
                    entries: Vec::new(),
                },
            ],
        };
        // A format-2 record is the current encoding minus its 16-byte
        // `NRC3` prefix.
        let rec_bytes = crate::record::encode(&img, 0, 1)[16..].to_vec();
        assert!(rec_bytes.len() <= PAGE_SIZE);

        let mut cat = Vec::new();
        cat.extend_from_slice(&1u32.to_le_bytes());
        cat.push(1); // Overflow location
        cat.extend_from_slice(&2u32.to_le_bytes());
        cat.extend_from_slice(&(rec_bytes.len() as u32).to_le_bytes());
        cat.extend_from_slice(&2u32.to_le_bytes());
        for l in ["site", "#text"] {
            cat.extend_from_slice(&(l.len() as u16).to_le_bytes());
            cat.extend_from_slice(l.as_bytes());
        }

        let header = crate::catalog::Header {
            epoch: 1,
            root_record: 0,
            catalog_first_page: 3,
            catalog_len: cat.len() as u64,
            record_limit: 1024,
            journal_first_page: 0,
            journal_len: 0,
        };
        let mut hpage = crate::catalog::encode_header(&header);
        hpage[0..8].copy_from_slice(crate::catalog::MAGIC_V2);
        let sum = fnv64(&hpage[..52]);
        hpage[52..60].copy_from_slice(&sum.to_le_bytes());
        // Format 2 had no page frames: clear what encode_header sealed.
        hpage[PAGE_SIZE - 12..].fill(0);

        let mut pager = MemPager::new();
        for _ in 0..4 {
            pager.allocate().unwrap();
        }
        pager.write(1, &hpage).unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[..rec_bytes.len()].copy_from_slice(&rec_bytes);
        pager.write(2, &page).unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[..cat.len()].copy_from_slice(&cat);
        pager.write(3, &page).unwrap();

        let mut store = XmlStore::open(Box::new(pager), StoreConfig::default()).unwrap();
        assert_eq!(store.format_version(), 2);
        let doc = store.to_document().unwrap();
        assert_eq!(doc.to_xml(), parse("<site>hello</site>").unwrap().to_xml());

        // Old-format stores are read-only; compact() is the migration.
        let root = store.root().unwrap();
        let err = store
            .append_child(root, NodeKind::Element, "x", None)
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidUpdate(_)), "{err}");
        let mut migrated = store
            .compact(Box::new(MemPager::new()), StoreConfig::default())
            .unwrap();
        assert_eq!(migrated.format_version(), 3);
        assert_eq!(migrated.to_document().unwrap().to_xml(), doc.to_xml());
        let kid = migrated.root().unwrap();
        migrated
            .append_child(kid, NodeKind::Element, "x", None)
            .unwrap();
    }

    #[test]
    fn legacy_v2_migrates_under_tiny_pool_budget() {
        use crate::page::fnv64;
        use crate::record::{ImageNode, RecordImage, NONE_U16, NONE_U32};

        // Fabricate a format-2 store whose single record spans a
        // multi-page overflow chain, so that migrating it through a
        // 2-page destination pool must stream pages out by eviction.
        let payload = "v".repeat(3000);
        let mut nodes = vec![ImageNode {
            kind: NodeKind::Element,
            label: 0,
            parent_local: NONE_U16,
            entry_pos: NONE_U16,
            content: None,
            entries: (1..=10).map(ChildEntry::Local).collect(),
        }];
        for i in 0..10u16 {
            nodes.push(ImageNode {
                kind: NodeKind::Text,
                label: 1,
                parent_local: 0,
                entry_pos: i,
                content: Some(payload.clone().into()),
                entries: Vec::new(),
            });
        }
        let img = RecordImage {
            parent_record: NONE_U32,
            parent_local: NONE_U16,
            proxy_pos: NONE_U16,
            roots: vec![0],
            nodes,
        };
        let rec_bytes = crate::record::encode(&img, 0, 1)[16..].to_vec();
        assert!(rec_bytes.len() > 2 * PAGE_SIZE, "want a multi-page chain");
        let chunks = rec_bytes.len().div_ceil(PAGE_SIZE) as u32;

        let mut cat = Vec::new();
        cat.extend_from_slice(&1u32.to_le_bytes());
        cat.push(1); // Overflow location
        cat.extend_from_slice(&2u32.to_le_bytes());
        cat.extend_from_slice(&(rec_bytes.len() as u32).to_le_bytes());
        cat.extend_from_slice(&2u32.to_le_bytes());
        for l in ["site", "#text"] {
            cat.extend_from_slice(&(l.len() as u16).to_le_bytes());
            cat.extend_from_slice(l.as_bytes());
        }

        let header = crate::catalog::Header {
            epoch: 1,
            root_record: 0,
            catalog_first_page: 2 + chunks,
            catalog_len: cat.len() as u64,
            record_limit: 1 << 20,
            journal_first_page: 0,
            journal_len: 0,
        };
        let mut hpage = crate::catalog::encode_header(&header);
        hpage[0..8].copy_from_slice(crate::catalog::MAGIC_V2);
        let sum = fnv64(&hpage[..52]);
        hpage[52..60].copy_from_slice(&sum.to_le_bytes());
        hpage[PAGE_SIZE - 12..].fill(0);

        let mut pager = MemPager::new();
        for _ in 0..2 + chunks + 1 {
            pager.allocate().unwrap();
        }
        pager.write(1, &hpage).unwrap();
        for c in 0..chunks {
            let mut page = [0u8; PAGE_SIZE];
            let start = c as usize * PAGE_SIZE;
            let end = rec_bytes.len().min(start + PAGE_SIZE);
            page[..end - start].copy_from_slice(&rec_bytes[start..end]);
            pager.write(2 + c, &page).unwrap();
        }
        let mut page = [0u8; PAGE_SIZE];
        page[..cat.len()].copy_from_slice(&cat);
        pager.write(2 + chunks, &page).unwrap();

        let tiny = StoreConfig {
            buffer_pages: 2,
            ..StoreConfig::default()
        };
        let mut store = XmlStore::open(Box::new(pager), tiny).unwrap();
        assert_eq!(store.format_version(), 2);
        let source_xml = store.to_document().unwrap().to_xml();

        // Migrate onto a shared backend so the at-rest bytes can be
        // scrubbed and reopened independently of the returned store.
        let shared = SharedMemPager::new();
        let mut migrated = store.compact(Box::new(shared.clone()), tiny).unwrap();
        assert_eq!(migrated.format_version(), 3);
        assert_eq!(migrated.to_document().unwrap().to_xml(), source_xml);
        assert!(
            migrated.page_count() as usize > 2 * tiny.buffer_pages,
            "store must exceed the pool budget for the test to mean anything"
        );
        let stats = migrated.buffer_stats();
        assert!(
            stats.evicted_dirty > 0,
            "migration under a tiny pool must stream dirty pages out: {stats:?}"
        );

        // The migrated file is complete and clean at rest.
        let report = fsck::fsck(&mut shared.clone(), false);
        assert!(report.clean(), "{report}");
        let mut reopened = XmlStore::open(Box::new(shared.clone()), tiny).unwrap();
        assert_eq!(reopened.to_document().unwrap().to_xml(), source_xml);

        // And the migrated store is writable.
        let root = migrated.root().unwrap();
        migrated
            .append_child(root, NodeKind::Element, "x", None)
            .unwrap();
    }

    #[test]
    fn occupied_space_accounts_pages() {
        let doc = sample_doc();
        let store = load(&doc, &Ekm, 16);
        assert_eq!(
            store.occupied_bytes(),
            store.page_count() as u64 * PAGE_SIZE as u64
        );
    }
}
