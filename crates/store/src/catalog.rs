//! On-disk catalog: dual header pages + serialized record directory and
//! label table, so a bulkloaded store can be reopened from its page file.
//!
//! Layout (format version 3): pages 0 and 1 are *ping-pong header slots*.
//! A header carries an epoch, the catalog location, and (while a commit is
//! being checkpointed) a redo-journal location, protected by an FNV-64
//! checksum. Header epoch `E` lives in slot `E % 2`, so publishing epoch
//! `E + 1` never overwrites the current header — a torn header write can
//! only corrupt the slot being replaced, and `open` falls back to the
//! surviving one. The catalog itself is written across dedicated pages
//! appended after the data pages, as a self-describing `NCT3` blob that
//! carries its own length, epoch, root record, record limit, quarantine
//! list, and checksum — so `fsck --repair` can rediscover the newest
//! intact catalog by scanning catalog-class pages even when both header
//! slots are gone.
//!
//! Format version 2 (`NATIXST2` headers, bare catalog blobs, no page
//! frames) is still decoded for read-only access to old stores.

use crate::page::{fnv64, set_page_class, PageClass, PAGE_SIZE};
use crate::pager::{PageId, StoreError, StoreResult};

/// Magic bytes identifying a Natix store page file (format version 3:
/// dual checksummed headers + redo journal + per-page frames).
pub const MAGIC: &[u8; 8] = b"NATIXST3";

/// Magic of the previous format (no page frames); readable, not writable.
pub const MAGIC_V2: &[u8; 8] = b"NATIXST2";

/// Magic prefix of a serialized format-3 catalog blob.
pub(crate) const CATALOG_MAGIC: &[u8; 4] = b"NCT3";

/// Where a record's bytes live (public within the crate; the store keeps
/// the authoritative copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordLoc {
    /// Inside a slotted page.
    InPage { page: u32, slot: u16 },
    /// Spanning dedicated overflow pages.
    Overflow { first_page: u32, len: u32 },
    /// Deleted record (directory tombstone).
    Free,
}

/// Everything needed to reopen a store.
#[derive(Debug)]
pub(crate) struct Catalog {
    pub epoch: u64,
    pub root_record: u32,
    pub record_limit: u64,
    pub directory: Vec<RecordLoc>,
    pub labels: Vec<Box<str>>,
    /// Records quarantined by `fsck --repair`: unrecoverable partitions
    /// whose proxies remain in their parents as tombstones.
    pub quarantined: Vec<u32>,
}

/// Fixed header written into slot page `epoch % 2`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Header {
    pub epoch: u64,
    pub root_record: u32,
    pub catalog_first_page: u32,
    pub catalog_len: u64,
    pub record_limit: u64,
    pub journal_first_page: u32,
    pub journal_len: u64,
}

impl Header {
    /// The header slot page this epoch publishes to.
    pub(crate) fn slot(&self) -> PageId {
        (self.epoch % 2) as PageId
    }
}

const CHECKSUM_AT: usize = 52;

pub(crate) fn encode_header(h: &Header) -> [u8; PAGE_SIZE] {
    let mut buf = [0u8; PAGE_SIZE];
    buf[0..8].copy_from_slice(MAGIC);
    buf[8..16].copy_from_slice(&h.epoch.to_le_bytes());
    buf[16..20].copy_from_slice(&h.root_record.to_le_bytes());
    buf[20..24].copy_from_slice(&h.catalog_first_page.to_le_bytes());
    buf[24..32].copy_from_slice(&h.catalog_len.to_le_bytes());
    buf[32..40].copy_from_slice(&h.record_limit.to_le_bytes());
    buf[40..44].copy_from_slice(&h.journal_first_page.to_le_bytes());
    buf[44..52].copy_from_slice(&h.journal_len.to_le_bytes());
    let sum = fnv64(&buf[..CHECKSUM_AT]);
    buf[CHECKSUM_AT..CHECKSUM_AT + 8].copy_from_slice(&sum.to_le_bytes());
    set_page_class(&mut buf, PageClass::Header);
    buf
}

/// Decode one header slot; `None` if the slot does not hold a valid header
/// (wrong magic, bad checksum — e.g. a torn header write). Returns the
/// header and the store format version it announces (2 or 3).
pub(crate) fn decode_header_slot(buf: &[u8; PAGE_SIZE]) -> Option<(Header, u8)> {
    let version = if &buf[0..8] == MAGIC {
        3
    } else if &buf[0..8] == MAGIC_V2 {
        2
    } else {
        return None;
    };
    let sum = u64::from_le_bytes(buf[CHECKSUM_AT..CHECKSUM_AT + 8].try_into().expect("8"));
    if fnv64(&buf[..CHECKSUM_AT]) != sum {
        return None;
    }
    Some((
        Header {
            epoch: u64::from_le_bytes(buf[8..16].try_into().expect("8")),
            root_record: u32::from_le_bytes(buf[16..20].try_into().expect("4")),
            catalog_first_page: u32::from_le_bytes(buf[20..24].try_into().expect("4")),
            catalog_len: u64::from_le_bytes(buf[24..32].try_into().expect("8")),
            record_limit: u64::from_le_bytes(buf[32..40].try_into().expect("8")),
            journal_first_page: u32::from_le_bytes(buf[40..44].try_into().expect("4")),
            journal_len: u64::from_le_bytes(buf[44..52].try_into().expect("8")),
        },
        version,
    ))
}

/// Pick the winning header from the two slots: highest valid epoch.
/// Returns the header and its format version.
pub(crate) fn pick_header(
    slot0: &[u8; PAGE_SIZE],
    slot1: &[u8; PAGE_SIZE],
) -> StoreResult<(Header, u8)> {
    match (decode_header_slot(slot0), decode_header_slot(slot1)) {
        (Some(a), Some(b)) => Ok(if a.0.epoch >= b.0.epoch { a } else { b }),
        (Some(a), None) => Ok(a),
        (None, Some(b)) => Ok(b),
        (None, None) => Err(StoreError::corrupt(
            "no valid header slot: not a Natix store file",
        )),
    }
}

/// Serialize a format-3 catalog blob. The blob is self-describing
/// (`NCT3` magic, total length, epoch) and ends in an FNV-64 checksum of
/// everything before it.
pub(crate) fn encode_catalog(
    directory: &[RecordLoc],
    labels: &[Box<str>],
    quarantined: &[u32],
    root_record: u32,
    record_limit: u64,
    epoch: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(44 + directory.len() * 9 + labels.len() * 12);
    out.extend_from_slice(CATALOG_MAGIC);
    out.extend_from_slice(&0u64.to_le_bytes()); // total length, patched below
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&root_record.to_le_bytes());
    out.extend_from_slice(&record_limit.to_le_bytes());
    out.extend_from_slice(&(directory.len() as u32).to_le_bytes());
    for loc in directory {
        match *loc {
            RecordLoc::InPage { page, slot } => {
                out.push(0);
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
            }
            RecordLoc::Overflow { first_page, len } => {
                out.push(1);
                out.extend_from_slice(&first_page.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            RecordLoc::Free => out.push(2),
        }
    }
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for l in labels {
        out.extend_from_slice(&(l.len() as u16).to_le_bytes());
        out.extend_from_slice(l.as_bytes());
    }
    out.extend_from_slice(&(quarantined.len() as u32).to_le_bytes());
    for &q in quarantined {
        out.extend_from_slice(&q.to_le_bytes());
    }
    let total = (out.len() + 8) as u64;
    out[4..12].copy_from_slice(&total.to_le_bytes());
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Total length a serialized catalog blob announces for itself, if
/// `bytes` starts like one (used by the repair scan to bound chain reads
/// before the checksum can be verified).
pub(crate) fn catalog_blob_len(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < 12 || &bytes[..4] != CATALOG_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(bytes[4..12].try_into().expect("8")))
}

struct R<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.p + n > self.b.len() {
            return Err(StoreError::corrupt("catalog truncated"));
        }
        let s = &self.b[self.p..self.p + n];
        self.p += n;
        Ok(s)
    }
    fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> StoreResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

fn decode_directory(r: &mut R<'_>) -> StoreResult<Vec<RecordLoc>> {
    let n = r.u32()? as usize;
    let mut directory = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = r.u8()?;
        directory.push(match tag {
            0 => RecordLoc::InPage {
                page: r.u32()?,
                slot: r.u16()?,
            },
            1 => RecordLoc::Overflow {
                first_page: r.u32()?,
                len: r.u32()?,
            },
            2 => RecordLoc::Free,
            _ => return Err(StoreError::corrupt("bad directory entry tag")),
        });
    }
    Ok(directory)
}

fn decode_labels(r: &mut R<'_>) -> StoreResult<Vec<Box<str>>> {
    let nl = r.u32()? as usize;
    let mut labels = Vec::with_capacity(nl.min(1 << 20));
    for _ in 0..nl {
        let len = r.u16()? as usize;
        let s = std::str::from_utf8(r.take(len)?)
            .map_err(|_| StoreError::corrupt("label not UTF-8"))?;
        labels.push(s.into());
    }
    Ok(labels)
}

/// Decode a catalog blob; auto-detects the format-3 `NCT3` framing and
/// falls back to the bare format-2 layout. `header_root` is the root
/// record the winning header announces — authoritative for format 2
/// (which did not store it in the blob) and cross-checked for format 3.
pub(crate) fn decode_catalog(bytes: &[u8], header_root: u32) -> StoreResult<Catalog> {
    if bytes.len() >= 4 && &bytes[..4] == CATALOG_MAGIC {
        let announced = catalog_blob_len(bytes).expect("magic checked");
        if announced as usize != bytes.len() || bytes.len() < 12 + 8 {
            return Err(StoreError::corrupt("catalog blob length mismatch"));
        }
        let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8"));
        if fnv64(&bytes[..bytes.len() - 8]) != sum {
            return Err(StoreError::corrupt("catalog checksum mismatch"));
        }
        let mut r = R {
            b: &bytes[..bytes.len() - 8],
            p: 12,
        };
        let epoch = r.u64()?;
        let root_record = r.u32()?;
        let record_limit = r.u64()?;
        let directory = decode_directory(&mut r)?;
        let labels = decode_labels(&mut r)?;
        let nq = r.u32()? as usize;
        let mut quarantined = Vec::with_capacity(nq.min(1 << 20));
        for _ in 0..nq {
            quarantined.push(r.u32()?);
        }
        if r.p != r.b.len() {
            return Err(StoreError::corrupt("catalog has trailing bytes"));
        }
        if root_record as usize >= directory.len() {
            return Err(StoreError::corrupt("root record out of range"));
        }
        return Ok(Catalog {
            epoch,
            root_record,
            record_limit,
            directory,
            labels,
            quarantined,
        });
    }
    // Legacy format 2: bare directory + labels; root and limit live only
    // in the header.
    let mut r = R { b: bytes, p: 0 };
    let directory = decode_directory(&mut r)?;
    let labels = decode_labels(&mut r)?;
    if header_root as usize >= directory.len() {
        return Err(StoreError::corrupt("root record out of range"));
    }
    Ok(Catalog {
        epoch: 0,
        root_record: header_root,
        record_limit: 0,
        directory,
        labels,
        quarantined: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            epoch: 5,
            root_record: 7,
            catalog_first_page: 123,
            catalog_len: 4567,
            record_limit: 256,
            journal_first_page: 130,
            journal_len: 8200,
        }
    }

    fn sample_catalog() -> Catalog {
        Catalog {
            epoch: 9,
            root_record: 0,
            record_limit: 64,
            directory: vec![
                RecordLoc::InPage { page: 1, slot: 0 },
                RecordLoc::Overflow {
                    first_page: 9,
                    len: 20_000,
                },
                RecordLoc::Free,
                RecordLoc::InPage { page: 2, slot: 3 },
            ],
            labels: vec!["site".into(), "item".into(), "#text".into()],
            quarantined: vec![2],
        }
    }

    fn encode_sample(cat: &Catalog) -> Vec<u8> {
        encode_catalog(
            &cat.directory,
            &cat.labels,
            &cat.quarantined,
            cat.root_record,
            cat.record_limit,
            cat.epoch,
        )
    }

    #[test]
    fn header_roundtrip() {
        let buf = encode_header(&sample_header());
        let (back, version) = decode_header_slot(&buf).unwrap();
        assert_eq!(version, 3);
        assert_eq!(back.epoch, 5);
        assert_eq!(back.root_record, 7);
        assert_eq!(back.catalog_first_page, 123);
        assert_eq!(back.catalog_len, 4567);
        assert_eq!(back.record_limit, 256);
        assert_eq!(back.journal_first_page, 130);
        assert_eq!(back.journal_len, 8200);
        assert_eq!(back.slot(), 1);
        assert_eq!(crate::page::page_class_of(&buf), PageClass::Header);
    }

    #[test]
    fn legacy_v2_header_is_recognized() {
        let mut buf = encode_header(&sample_header());
        buf[0..8].copy_from_slice(MAGIC_V2);
        let sum = fnv64(&buf[..CHECKSUM_AT]);
        buf[CHECKSUM_AT..CHECKSUM_AT + 8].copy_from_slice(&sum.to_le_bytes());
        let (back, version) = decode_header_slot(&buf).unwrap();
        assert_eq!(version, 2);
        assert_eq!(back.epoch, 5);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; PAGE_SIZE];
        assert!(decode_header_slot(&buf).is_none());
        let mut v1 = [0u8; PAGE_SIZE];
        v1[..8].copy_from_slice(b"NATIXST1");
        assert!(decode_header_slot(&v1).is_none());
    }

    #[test]
    fn torn_header_fails_checksum() {
        let mut buf = encode_header(&sample_header());
        // Any flipped byte in the covered region invalidates the slot.
        buf[17] ^= 0x01;
        assert!(decode_header_slot(&buf).is_none());
    }

    #[test]
    fn pick_header_prefers_higher_epoch_and_survives_a_bad_slot() {
        let mut old = sample_header();
        old.epoch = 4;
        let new = sample_header();
        let s0 = encode_header(&old);
        let s1 = encode_header(&new);
        assert_eq!(pick_header(&s0, &s1).unwrap().0.epoch, 5);
        assert_eq!(pick_header(&s1, &s0).unwrap().0.epoch, 5);
        let torn = [0xABu8; PAGE_SIZE];
        assert_eq!(pick_header(&s0, &torn).unwrap().0.epoch, 4);
        assert_eq!(pick_header(&torn, &s1).unwrap().0.epoch, 5);
        assert!(pick_header(&torn, &torn).is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let bytes = encode_sample(&sample_catalog());
        assert_eq!(catalog_blob_len(&bytes), Some(bytes.len() as u64));
        let cat = decode_catalog(&bytes, 0).unwrap();
        assert_eq!(cat.epoch, 9);
        assert_eq!(cat.root_record, 0);
        assert_eq!(cat.record_limit, 64);
        assert_eq!(cat.directory.len(), 4);
        assert!(matches!(cat.directory[2], RecordLoc::Free));
        assert_eq!(cat.labels.len(), 3);
        assert_eq!(&*cat.labels[1], "item");
        assert_eq!(cat.quarantined, vec![2]);
        match cat.directory[1] {
            RecordLoc::Overflow { first_page, len } => {
                assert_eq!((first_page, len), (9, 20_000));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn catalog_checksum_catches_bit_rot() {
        let mut bytes = encode_sample(&sample_catalog());
        bytes[20] ^= 0x40;
        let err = decode_catalog(&bytes, 0).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn legacy_v2_catalog_still_decodes() {
        // Hand-build a format-2 blob: bare directory + labels.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.push(2);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(b"site");
        let cat = decode_catalog(&bytes, 0).unwrap();
        assert_eq!(cat.epoch, 0);
        assert_eq!(cat.directory.len(), 2);
        assert_eq!(&*cat.labels[0], "site");
        assert!(cat.quarantined.is_empty());
    }

    #[test]
    fn truncated_catalog_rejected() {
        let bytes = encode_sample(&sample_catalog());
        for cut in [0, 3, 16, bytes.len() - 1] {
            assert!(decode_catalog(&bytes[..cut], 0).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_root_record_rejected() {
        let mut cat = sample_catalog();
        cat.root_record = 5;
        let bytes = encode_sample(&cat);
        assert!(decode_catalog(&bytes, 5).is_err());
    }
}
