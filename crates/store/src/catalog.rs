//! On-disk catalog: header page + serialized record directory and label
//! table, so a bulkloaded store can be reopened from its page file.
//!
//! Layout: page 0 is the header page (magic, root record, catalog
//! location); the catalog itself (directory entries + labels) is written
//! across dedicated pages appended after the data pages.

use crate::page::PAGE_SIZE;
use crate::pager::{StoreError, StoreResult};

/// Magic bytes identifying a Natix store page file (version 1).
pub const MAGIC: &[u8; 8] = b"NATIXST1";

/// Where a record's bytes live (public within the crate; the store keeps
/// the authoritative copy).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RecordLoc {
    /// Inside a slotted page.
    InPage { page: u32, slot: u16 },
    /// Spanning dedicated overflow pages.
    Overflow { first_page: u32, len: u32 },
    /// Deleted record (directory tombstone).
    Free,
}

/// Everything needed to reopen a store.
pub(crate) struct Catalog {
    pub root_record: u32,
    pub directory: Vec<RecordLoc>,
    pub labels: Vec<Box<str>>,
}

/// Fixed header written into page 0.
pub(crate) struct Header {
    pub root_record: u32,
    pub catalog_first_page: u32,
    pub catalog_len: u64,
    pub record_limit: u64,
}

pub(crate) fn encode_header(h: &Header) -> [u8; PAGE_SIZE] {
    let mut buf = [0u8; PAGE_SIZE];
    buf[0..8].copy_from_slice(MAGIC);
    buf[8..12].copy_from_slice(&h.root_record.to_le_bytes());
    buf[12..16].copy_from_slice(&h.catalog_first_page.to_le_bytes());
    buf[16..24].copy_from_slice(&h.catalog_len.to_le_bytes());
    buf[24..32].copy_from_slice(&h.record_limit.to_le_bytes());
    buf
}

pub(crate) fn decode_header(buf: &[u8; PAGE_SIZE]) -> StoreResult<Header> {
    if &buf[0..8] != MAGIC {
        return Err(StoreError::Corrupt("bad magic: not a Natix store file"));
    }
    Ok(Header {
        root_record: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
        catalog_first_page: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
        catalog_len: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        record_limit: u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes")),
    })
}

pub(crate) fn encode_catalog(directory: &[RecordLoc], labels: &[Box<str>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(directory.len() * 8 + labels.len() * 12);
    out.extend_from_slice(&(directory.len() as u32).to_le_bytes());
    for loc in directory {
        match *loc {
            RecordLoc::InPage { page, slot } => {
                out.push(0);
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
            }
            RecordLoc::Overflow { first_page, len } => {
                out.push(1);
                out.extend_from_slice(&first_page.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            RecordLoc::Free => out.push(2),
        }
    }
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for l in labels {
        out.extend_from_slice(&(l.len() as u16).to_le_bytes());
        out.extend_from_slice(l.as_bytes());
    }
    out
}

pub(crate) fn decode_catalog(bytes: &[u8], root_record: u32) -> StoreResult<Catalog> {
    struct R<'a> {
        b: &'a [u8],
        p: usize,
    }
    impl<'a> R<'a> {
        fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
            if self.p + n > self.b.len() {
                return Err(StoreError::Corrupt("catalog truncated"));
            }
            let s = &self.b[self.p..self.p + n];
            self.p += n;
            Ok(s)
        }
        fn u8(&mut self) -> StoreResult<u8> {
            Ok(self.take(1)?[0])
        }
        fn u16(&mut self) -> StoreResult<u16> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
        }
        fn u32(&mut self) -> StoreResult<u32> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
        }
    }
    let mut r = R { b: bytes, p: 0 };
    let n = r.u32()? as usize;
    let mut directory = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        directory.push(match tag {
            0 => RecordLoc::InPage {
                page: r.u32()?,
                slot: r.u16()?,
            },
            1 => RecordLoc::Overflow {
                first_page: r.u32()?,
                len: r.u32()?,
            },
            2 => RecordLoc::Free,
            _ => return Err(StoreError::Corrupt("bad directory entry tag")),
        });
    }
    let nl = r.u32()? as usize;
    let mut labels = Vec::with_capacity(nl);
    for _ in 0..nl {
        let len = r.u16()? as usize;
        let s = std::str::from_utf8(r.take(len)?)
            .map_err(|_| StoreError::Corrupt("label not UTF-8"))?;
        labels.push(s.into());
    }
    if root_record as usize >= directory.len() {
        return Err(StoreError::Corrupt("root record out of range"));
    }
    Ok(Catalog {
        root_record,
        directory,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            root_record: 7,
            catalog_first_page: 123,
            catalog_len: 4567,
            record_limit: 256,
        };
        let buf = encode_header(&h);
        let back = decode_header(&buf).unwrap();
        assert_eq!(back.root_record, 7);
        assert_eq!(back.catalog_first_page, 123);
        assert_eq!(back.catalog_len, 4567);
        assert_eq!(back.record_limit, 256);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; PAGE_SIZE];
        assert!(decode_header(&buf).is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let dir = vec![
            RecordLoc::InPage { page: 1, slot: 0 },
            RecordLoc::Overflow {
                first_page: 9,
                len: 20_000,
            },
            RecordLoc::Free,
            RecordLoc::InPage { page: 2, slot: 3 },
        ];
        let labels: Vec<Box<str>> = vec!["site".into(), "item".into(), "#text".into()];
        let bytes = encode_catalog(&dir, &labels);
        let cat = decode_catalog(&bytes, 0).unwrap();
        assert_eq!(cat.directory.len(), 4);
        assert!(matches!(cat.directory[2], RecordLoc::Free));
        assert_eq!(cat.labels.len(), 3);
        assert_eq!(&*cat.labels[1], "item");
        match cat.directory[1] {
            RecordLoc::Overflow { first_page, len } => {
                assert_eq!((first_page, len), (9, 20_000));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn truncated_catalog_rejected() {
        let dir = vec![RecordLoc::InPage { page: 1, slot: 0 }];
        let labels: Vec<Box<str>> = vec!["x".into()];
        let bytes = encode_catalog(&dir, &labels);
        for cut in [0, 3, bytes.len() - 1] {
            assert!(decode_catalog(&bytes[..cut], 0).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_root_record_rejected() {
        let bytes = encode_catalog(&[RecordLoc::InPage { page: 1, slot: 0 }], &[]);
        assert!(decode_catalog(&bytes, 5).is_err());
    }
}
