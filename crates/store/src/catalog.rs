//! On-disk catalog: dual header pages + serialized record directory and
//! label table, so a bulkloaded store can be reopened from its page file.
//!
//! Layout (format version 2): pages 0 and 1 are *ping-pong header slots*.
//! A header carries an epoch, the catalog location, and (while a commit is
//! being checkpointed) a redo-journal location, protected by an FNV-64
//! checksum. Header epoch `E` lives in slot `E % 2`, so publishing epoch
//! `E + 1` never overwrites the current header — a torn header write can
//! only corrupt the slot being replaced, and `open` falls back to the
//! surviving one. The catalog itself (directory entries + labels) is
//! written across dedicated pages appended after the data pages.

use crate::page::PAGE_SIZE;
use crate::pager::{PageId, StoreError, StoreResult};

/// Magic bytes identifying a Natix store page file (format version 2:
/// dual checksummed headers + redo journal).
pub const MAGIC: &[u8; 8] = b"NATIXST2";

/// FNV-1a 64-bit hash, used as the header and journal checksum.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Where a record's bytes live (public within the crate; the store keeps
/// the authoritative copy).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RecordLoc {
    /// Inside a slotted page.
    InPage { page: u32, slot: u16 },
    /// Spanning dedicated overflow pages.
    Overflow { first_page: u32, len: u32 },
    /// Deleted record (directory tombstone).
    Free,
}

/// Everything needed to reopen a store.
pub(crate) struct Catalog {
    pub root_record: u32,
    pub directory: Vec<RecordLoc>,
    pub labels: Vec<Box<str>>,
}

/// Fixed header written into slot page `epoch % 2`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Header {
    pub epoch: u64,
    pub root_record: u32,
    pub catalog_first_page: u32,
    pub catalog_len: u64,
    pub record_limit: u64,
    pub journal_first_page: u32,
    pub journal_len: u64,
}

impl Header {
    /// The header slot page this epoch publishes to.
    pub(crate) fn slot(&self) -> PageId {
        (self.epoch % 2) as PageId
    }
}

const CHECKSUM_AT: usize = 52;

pub(crate) fn encode_header(h: &Header) -> [u8; PAGE_SIZE] {
    let mut buf = [0u8; PAGE_SIZE];
    buf[0..8].copy_from_slice(MAGIC);
    buf[8..16].copy_from_slice(&h.epoch.to_le_bytes());
    buf[16..20].copy_from_slice(&h.root_record.to_le_bytes());
    buf[20..24].copy_from_slice(&h.catalog_first_page.to_le_bytes());
    buf[24..32].copy_from_slice(&h.catalog_len.to_le_bytes());
    buf[32..40].copy_from_slice(&h.record_limit.to_le_bytes());
    buf[40..44].copy_from_slice(&h.journal_first_page.to_le_bytes());
    buf[44..52].copy_from_slice(&h.journal_len.to_le_bytes());
    let sum = fnv64(&buf[..CHECKSUM_AT]);
    buf[CHECKSUM_AT..CHECKSUM_AT + 8].copy_from_slice(&sum.to_le_bytes());
    buf
}

/// Decode one header slot; `None` if the slot does not hold a valid header
/// (wrong magic, bad checksum — e.g. a torn header write).
pub(crate) fn decode_header_slot(buf: &[u8; PAGE_SIZE]) -> Option<Header> {
    if &buf[0..8] != MAGIC {
        return None;
    }
    let sum = u64::from_le_bytes(buf[CHECKSUM_AT..CHECKSUM_AT + 8].try_into().expect("8"));
    if fnv64(&buf[..CHECKSUM_AT]) != sum {
        return None;
    }
    Some(Header {
        epoch: u64::from_le_bytes(buf[8..16].try_into().expect("8")),
        root_record: u32::from_le_bytes(buf[16..20].try_into().expect("4")),
        catalog_first_page: u32::from_le_bytes(buf[20..24].try_into().expect("4")),
        catalog_len: u64::from_le_bytes(buf[24..32].try_into().expect("8")),
        record_limit: u64::from_le_bytes(buf[32..40].try_into().expect("8")),
        journal_first_page: u32::from_le_bytes(buf[40..44].try_into().expect("4")),
        journal_len: u64::from_le_bytes(buf[44..52].try_into().expect("8")),
    })
}

/// Pick the winning header from the two slots: highest valid epoch.
pub(crate) fn pick_header(slot0: &[u8; PAGE_SIZE], slot1: &[u8; PAGE_SIZE]) -> StoreResult<Header> {
    match (decode_header_slot(slot0), decode_header_slot(slot1)) {
        (Some(a), Some(b)) => Ok(if a.epoch >= b.epoch { a } else { b }),
        (Some(a), None) => Ok(a),
        (None, Some(b)) => Ok(b),
        (None, None) => Err(StoreError::Corrupt(
            "no valid header slot: not a Natix store file",
        )),
    }
}

pub(crate) fn encode_catalog(directory: &[RecordLoc], labels: &[Box<str>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(directory.len() * 8 + labels.len() * 12);
    out.extend_from_slice(&(directory.len() as u32).to_le_bytes());
    for loc in directory {
        match *loc {
            RecordLoc::InPage { page, slot } => {
                out.push(0);
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
            }
            RecordLoc::Overflow { first_page, len } => {
                out.push(1);
                out.extend_from_slice(&first_page.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            RecordLoc::Free => out.push(2),
        }
    }
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for l in labels {
        out.extend_from_slice(&(l.len() as u16).to_le_bytes());
        out.extend_from_slice(l.as_bytes());
    }
    out
}

pub(crate) fn decode_catalog(bytes: &[u8], root_record: u32) -> StoreResult<Catalog> {
    struct R<'a> {
        b: &'a [u8],
        p: usize,
    }
    impl<'a> R<'a> {
        fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
            if self.p + n > self.b.len() {
                return Err(StoreError::Corrupt("catalog truncated"));
            }
            let s = &self.b[self.p..self.p + n];
            self.p += n;
            Ok(s)
        }
        fn u8(&mut self) -> StoreResult<u8> {
            Ok(self.take(1)?[0])
        }
        fn u16(&mut self) -> StoreResult<u16> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
        }
        fn u32(&mut self) -> StoreResult<u32> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
        }
    }
    let mut r = R { b: bytes, p: 0 };
    let n = r.u32()? as usize;
    let mut directory = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tag = r.u8()?;
        directory.push(match tag {
            0 => RecordLoc::InPage {
                page: r.u32()?,
                slot: r.u16()?,
            },
            1 => RecordLoc::Overflow {
                first_page: r.u32()?,
                len: r.u32()?,
            },
            2 => RecordLoc::Free,
            _ => return Err(StoreError::Corrupt("bad directory entry tag")),
        });
    }
    let nl = r.u32()? as usize;
    let mut labels = Vec::with_capacity(nl.min(1 << 20));
    for _ in 0..nl {
        let len = r.u16()? as usize;
        let s = std::str::from_utf8(r.take(len)?)
            .map_err(|_| StoreError::Corrupt("label not UTF-8"))?;
        labels.push(s.into());
    }
    if root_record as usize >= directory.len() {
        return Err(StoreError::Corrupt("root record out of range"));
    }
    Ok(Catalog {
        root_record,
        directory,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            epoch: 5,
            root_record: 7,
            catalog_first_page: 123,
            catalog_len: 4567,
            record_limit: 256,
            journal_first_page: 130,
            journal_len: 8200,
        }
    }

    #[test]
    fn header_roundtrip() {
        let buf = encode_header(&sample_header());
        let back = decode_header_slot(&buf).unwrap();
        assert_eq!(back.epoch, 5);
        assert_eq!(back.root_record, 7);
        assert_eq!(back.catalog_first_page, 123);
        assert_eq!(back.catalog_len, 4567);
        assert_eq!(back.record_limit, 256);
        assert_eq!(back.journal_first_page, 130);
        assert_eq!(back.journal_len, 8200);
        assert_eq!(back.slot(), 1);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; PAGE_SIZE];
        assert!(decode_header_slot(&buf).is_none());
        let mut v1 = [0u8; PAGE_SIZE];
        v1[..8].copy_from_slice(b"NATIXST1");
        assert!(decode_header_slot(&v1).is_none());
    }

    #[test]
    fn torn_header_fails_checksum() {
        let mut buf = encode_header(&sample_header());
        // Any flipped byte in the covered region invalidates the slot.
        buf[17] ^= 0x01;
        assert!(decode_header_slot(&buf).is_none());
    }

    #[test]
    fn pick_header_prefers_higher_epoch_and_survives_a_bad_slot() {
        let mut old = sample_header();
        old.epoch = 4;
        let new = sample_header();
        let s0 = encode_header(&old);
        let s1 = encode_header(&new);
        assert_eq!(pick_header(&s0, &s1).unwrap().epoch, 5);
        assert_eq!(pick_header(&s1, &s0).unwrap().epoch, 5);
        let torn = [0xABu8; PAGE_SIZE];
        assert_eq!(pick_header(&s0, &torn).unwrap().epoch, 4);
        assert_eq!(pick_header(&torn, &s1).unwrap().epoch, 5);
        assert!(pick_header(&torn, &torn).is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let dir = vec![
            RecordLoc::InPage { page: 1, slot: 0 },
            RecordLoc::Overflow {
                first_page: 9,
                len: 20_000,
            },
            RecordLoc::Free,
            RecordLoc::InPage { page: 2, slot: 3 },
        ];
        let labels: Vec<Box<str>> = vec!["site".into(), "item".into(), "#text".into()];
        let bytes = encode_catalog(&dir, &labels);
        let cat = decode_catalog(&bytes, 0).unwrap();
        assert_eq!(cat.directory.len(), 4);
        assert!(matches!(cat.directory[2], RecordLoc::Free));
        assert_eq!(cat.labels.len(), 3);
        assert_eq!(&*cat.labels[1], "item");
        match cat.directory[1] {
            RecordLoc::Overflow { first_page, len } => {
                assert_eq!((first_page, len), (9, 20_000));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn truncated_catalog_rejected() {
        let dir = vec![RecordLoc::InPage { page: 1, slot: 0 }];
        let labels: Vec<Box<str>> = vec!["x".into()];
        let bytes = encode_catalog(&dir, &labels);
        for cut in [0, 3, bytes.len() - 1] {
            assert!(decode_catalog(&bytes[..cut], 0).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_root_record_rejected() {
        let bytes = encode_catalog(&[RecordLoc::InPage { page: 1, slot: 0 }], &[]);
        assert!(decode_catalog(&bytes, 5).is_err());
    }
}
