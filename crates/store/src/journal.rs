//! Redo journal for atomic multi-page commits.
//!
//! A commit appends full images of every dirty page as a journal blob at
//! the end of the page file, *then* publishes a header that points at it
//! (the commit point), *then* checkpoints the images in place. Recovery
//! replays the journal idempotently: every image is the post-commit state
//! of its page, so applying it any number of times converges.

use crate::page::{fnv64, PAGE_SIZE};
use crate::pager::{PageId, StoreError, StoreResult};

const MAGIC: &[u8; 4] = b"NJRL";

/// One journaled page: id + full post-commit image.
pub(crate) type JournalEntry = (PageId, Box<[u8; PAGE_SIZE]>);

/// Serialize journal entries (with trailing checksum).
pub(crate) fn encode(entries: &[JournalEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * (4 + PAGE_SIZE) + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (page, image) in entries {
        out.extend_from_slice(&page.to_le_bytes());
        out.extend_from_slice(&image[..]);
    }
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode and verify a journal blob.
pub(crate) fn decode(bytes: &[u8]) -> StoreResult<Vec<JournalEntry>> {
    if bytes.len() < 16 || &bytes[0..4] != MAGIC {
        return Err(StoreError::corrupt("journal header invalid"));
    }
    let body = &bytes[..bytes.len() - 8];
    let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv64(body) != sum {
        return Err(StoreError::corrupt("journal checksum mismatch"));
    }
    let count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if body.len() != 8 + count * (4 + PAGE_SIZE) {
        return Err(StoreError::corrupt("journal length mismatch"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut p = 8;
    for _ in 0..count {
        let page = u32::from_le_bytes(body[p..p + 4].try_into().expect("4 bytes"));
        p += 4;
        let mut image = Box::new([0u8; PAGE_SIZE]);
        image.copy_from_slice(&body[p..p + PAGE_SIZE]);
        p += PAGE_SIZE;
        entries.push((page, image));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_roundtrip() {
        let entries: Vec<JournalEntry> = vec![
            (3, Box::new([1u8; PAGE_SIZE])),
            (7, Box::new([2u8; PAGE_SIZE])),
        ];
        let bytes = encode(&entries);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, 3);
        assert_eq!(back[1].1[0], 2);
    }

    #[test]
    fn empty_journal_roundtrip() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn corrupted_journal_rejected() {
        let mut bytes = encode(&[(1, Box::new([9u8; PAGE_SIZE]))]);
        bytes[20] ^= 0xFF;
        assert!(decode(&bytes).is_err());
        let short = &bytes[..10];
        assert!(decode(short).is_err());
    }
}
