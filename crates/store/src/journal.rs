//! Redo journal for atomic multi-page commits.
//!
//! A commit appends full images of every dirty page as a journal blob at
//! the end of the page file, *then* publishes a header that points at it
//! (the commit point), *then* checkpoints the images in place. Recovery
//! replays the journal idempotently: every image is the post-commit state
//! of its page, so applying it any number of times converges.
//!
//! Two wire formats share one decoder:
//!
//! * `NJRL` — a flat entry list, written by single commits (and by every
//!   store before group commit existed).
//! * `NJB1` — a *segmented* list, written by group commit: one segment
//!   per batched logical commit, in batch order. Segments are purely
//!   diagnostic — the header flip covers the whole batch, so recovery
//!   always replays every segment (a page re-dirtied by a later op
//!   carries its final image wherever it appears, so full replay
//!   converges). `fsck` uses the boundaries to report how many logical
//!   commits one journal generation carries.

use crate::page::{fnv64, PAGE_SIZE};
use crate::pager::{PageId, StoreError, StoreResult};

const MAGIC: &[u8; 4] = b"NJRL";
const MAGIC_BATCH: &[u8; 4] = b"NJB1";

/// One journaled page: id + full post-commit image.
pub(crate) type JournalEntry = (PageId, Box<[u8; PAGE_SIZE]>);

/// Serialize journal entries (with trailing checksum).
pub(crate) fn encode(entries: &[JournalEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * (4 + PAGE_SIZE) + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (page, image) in entries {
        out.extend_from_slice(&page.to_le_bytes());
        out.extend_from_slice(&image[..]);
    }
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Serialize a group-commit batch: one segment per logical commit. A
/// single segment degenerates to the flat `NJRL` format so unbatched
/// commits stay byte-compatible with every existing store.
pub(crate) fn encode_batched(segments: &[Vec<JournalEntry>]) -> Vec<u8> {
    if segments.len() <= 1 {
        return encode(segments.first().map(Vec::as_slice).unwrap_or(&[]));
    }
    let total: usize = segments.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(8 + segments.len() * 4 + total * (4 + PAGE_SIZE) + 8);
    out.extend_from_slice(MAGIC_BATCH);
    out.extend_from_slice(&(segments.len() as u32).to_le_bytes());
    for seg in segments {
        out.extend_from_slice(&(seg.len() as u32).to_le_bytes());
        for (page, image) in seg {
            out.extend_from_slice(&page.to_le_bytes());
            out.extend_from_slice(&image[..]);
        }
    }
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode and verify a journal blob, flattened across segments (replay
/// order == batch order, so the flat list converges under full replay).
pub(crate) fn decode(bytes: &[u8]) -> StoreResult<Vec<JournalEntry>> {
    Ok(decode_segments(bytes)?.into_iter().flatten().collect())
}

/// Decode and verify a journal blob, preserving group-commit segment
/// boundaries. Flat `NJRL` blobs come back as one segment.
pub(crate) fn decode_segments(bytes: &[u8]) -> StoreResult<Vec<Vec<JournalEntry>>> {
    if bytes.len() < 16 {
        return Err(StoreError::corrupt("journal header invalid"));
    }
    let batched = match &bytes[0..4] {
        m if m == MAGIC => false,
        m if m == MAGIC_BATCH => true,
        _ => return Err(StoreError::corrupt("journal header invalid")),
    };
    let body = &bytes[..bytes.len() - 8];
    let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv64(body) != sum {
        return Err(StoreError::corrupt("journal checksum mismatch"));
    }
    if !batched {
        let count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if body.len() != 8 + count * (4 + PAGE_SIZE) {
            return Err(StoreError::corrupt("journal length mismatch"));
        }
        return Ok(vec![decode_entries(&body[8..], count)?]);
    }
    let seg_count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let mut segments = Vec::with_capacity(seg_count);
    let mut p = 8;
    for _ in 0..seg_count {
        if p + 4 > body.len() {
            return Err(StoreError::corrupt("journal length mismatch"));
        }
        let count = u32::from_le_bytes(body[p..p + 4].try_into().expect("4 bytes")) as usize;
        p += 4;
        let seg_len = count * (4 + PAGE_SIZE);
        if p + seg_len > body.len() {
            return Err(StoreError::corrupt("journal length mismatch"));
        }
        segments.push(decode_entries(&body[p..p + seg_len], count)?);
        p += seg_len;
    }
    if p != body.len() {
        return Err(StoreError::corrupt("journal length mismatch"));
    }
    Ok(segments)
}

fn decode_entries(body: &[u8], count: usize) -> StoreResult<Vec<JournalEntry>> {
    let mut entries = Vec::with_capacity(count);
    let mut p = 0;
    for _ in 0..count {
        let page = u32::from_le_bytes(body[p..p + 4].try_into().expect("4 bytes"));
        p += 4;
        let mut image = Box::new([0u8; PAGE_SIZE]);
        image.copy_from_slice(&body[p..p + PAGE_SIZE]);
        p += PAGE_SIZE;
        entries.push((page, image));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_roundtrip() {
        let entries: Vec<JournalEntry> = vec![
            (3, Box::new([1u8; PAGE_SIZE])),
            (7, Box::new([2u8; PAGE_SIZE])),
        ];
        let bytes = encode(&entries);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, 3);
        assert_eq!(back[1].1[0], 2);
    }

    #[test]
    fn empty_journal_roundtrip() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn corrupted_journal_rejected() {
        let mut bytes = encode(&[(1, Box::new([9u8; PAGE_SIZE]))]);
        bytes[20] ^= 0xFF;
        assert!(decode(&bytes).is_err());
        let short = &bytes[..10];
        assert!(decode(short).is_err());
    }

    #[test]
    fn batched_journal_roundtrips_with_boundaries() {
        let segments: Vec<Vec<JournalEntry>> = vec![
            vec![(3, Box::new([1u8; PAGE_SIZE]))],
            vec![],
            vec![
                (3, Box::new([4u8; PAGE_SIZE])),
                (9, Box::new([5u8; PAGE_SIZE])),
            ],
        ];
        let bytes = encode_batched(&segments);
        let segs = decode_segments(&bytes).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].len(), 1);
        assert!(segs[1].is_empty());
        assert_eq!(segs[2][1].0, 9);
        // Flat replay flattens in batch order: the later image of page 3
        // wins under in-order replay.
        let flat = decode(&bytes).unwrap();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0].1[0], 1);
        assert_eq!(flat[1].1[0], 4);
    }

    #[test]
    fn single_segment_batch_is_wire_compatible_with_flat_format() {
        let seg: Vec<JournalEntry> = vec![(5, Box::new([7u8; PAGE_SIZE]))];
        let batched = encode_batched(std::slice::from_ref(&seg));
        assert_eq!(batched, encode(&seg));
        let segs = decode_segments(&batched).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0][0].0, 5);
    }

    #[test]
    fn corrupted_batched_journal_rejected() {
        let segments: Vec<Vec<JournalEntry>> = vec![
            vec![(1, Box::new([9u8; PAGE_SIZE]))],
            vec![(2, Box::new([8u8; PAGE_SIZE]))],
        ];
        let mut bytes = encode_batched(&segments);
        bytes[30] ^= 0xFF;
        assert!(decode_segments(&bytes).is_err());
        // A truncated segment table must be caught by the length checks
        // even when the checksum is recomputed to match.
        let mut truncated = encode_batched(&segments);
        truncated[4..8].copy_from_slice(&5u32.to_le_bytes());
        let body_len = truncated.len() - 8;
        let sum = fnv64(&truncated[..body_len]);
        truncated[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode_segments(&truncated).is_err());
    }
}
