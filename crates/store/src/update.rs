//! Incremental maintenance: node-at-a-time insertion and subtree deletion
//! with record splitting.
//!
//! This is the counterpart of the bulkload path: Natix maintains its
//! clustered storage format under updates with a node-at-a-time algorithm
//! (Kanne & Moerkotte, ICDE 2000, cited as [9] by the VLDB'06 paper).
//! The essential move is the same here: an insertion grows a record's
//! fragment; when the fragment exceeds the weight limit `K`, the record is
//! **split** by evicting a subtree (KM-style, heaviest first, descending
//! until the candidate fits) into a fresh record behind a proxy — or, when
//! the fragment is only interval roots, by splitting the sibling interval
//! itself into two records.
//!
//! Updates rewrite whole records (they are ≤ K slots, i.e. small) and fix
//! the back-links of every child record whose parent moved. **Structural
//! updates invalidate outstanding [`NodeRef`]s into the touched records**;
//! the return values carry the fresh locations.

use natix_tree::Weight;
use natix_xml::{node_weight, NodeKind};

use crate::catalog::RecordLoc;
use crate::page::{PageClass, SlottedPage, MAX_IN_PAGE};
use crate::pager::{StoreError, StoreResult};
use crate::record::{self, ChildEntry, ImageNode, RecordImage, NONE_U16, NONE_U32};
use crate::store::{write_overflow_chain, NodeRef, XmlStore};

/// Where to place a newly inserted node.
enum InsertPos {
    /// As the last child entry of a local element.
    LastChildOf(u16),
    /// Immediately before a local, non-root node.
    BeforeLocal(u16),
    /// As a new fragment root at this position of the roots list.
    BeforeRoot(usize),
}

impl XmlStore {
    /// Run a structural update as one atomic transaction: on success the
    /// operation is committed durably; on failure every in-memory and
    /// on-disk effect is rolled back to the pre-operation state. (An error
    /// from the commit itself can leave the *post*-state durable — the
    /// journal was already published — which is the standard "either pre
    /// or post" crash contract.)
    fn transactional<T>(&mut self, r: StoreResult<T>) -> StoreResult<T> {
        // Inside a group-commit batch no commit happens here: a
        // successful op is staged (its pages become the next journal
        // segment) and a failed op rolls back to the previous op's
        // savepoint, so the batch's earlier operations survive.
        if self.batch.is_some() {
            return match r {
                Ok(v) => {
                    self.batch_op_staged()?;
                    Ok(v)
                }
                Err(e) => {
                    let _ = self.rollback_to_savepoint();
                    Err(e)
                }
            };
        }
        match r {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                let _ = self.rollback();
                Err(e)
            }
        }
    }

    /// Append a new childless node as the last child of `parent` (which
    /// must be an element).
    ///
    /// Returns the new node's location. May split the containing record;
    /// any previously obtained [`NodeRef`] into the touched records is
    /// invalidated. The operation commits atomically.
    pub fn append_child(
        &mut self,
        parent: NodeRef,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) -> StoreResult<NodeRef> {
        self.require_writable()?;
        let r = self.append_child_inner(parent, kind, name, content);
        self.transactional(r)
    }

    fn append_child_inner(
        &mut self,
        parent: NodeRef,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) -> StoreResult<NodeRef> {
        let rec = self.fetch(parent.record)?;
        let pk = rec.nodes[parent.node as usize].kind;
        if pk != NodeKind::Element {
            return Err(StoreError::InvalidUpdate("parent must be an element"));
        }
        drop(rec);
        self.insert_impl(
            parent.record,
            InsertPos::LastChildOf(parent.node),
            kind,
            name,
            content,
        )
    }

    /// Insert a new childless node immediately before `sibling` (which
    /// must not be the document root). The operation commits atomically.
    pub fn insert_before(
        &mut self,
        sibling: NodeRef,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) -> StoreResult<NodeRef> {
        self.require_writable()?;
        let r = self.insert_before_inner(sibling, kind, name, content);
        self.transactional(r)
    }

    fn insert_before_inner(
        &mut self,
        sibling: NodeRef,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) -> StoreResult<NodeRef> {
        let rec = self.fetch(sibling.record)?;
        let node = &rec.nodes[sibling.node as usize];
        let pos = if node.parent_local != NONE_U16 {
            InsertPos::BeforeLocal(sibling.node)
        } else if rec.parent_record == NONE_U32 {
            return Err(StoreError::InvalidUpdate(
                "the document root has no siblings",
            ));
        } else {
            let rp = rec.root_pos(sibling.node).ok_or_else(|| {
                StoreError::corrupt_record("fragment root not in root list", sibling.record)
            })?;
            InsertPos::BeforeRoot(rp)
        };
        drop(rec);
        self.insert_impl(sibling.record, pos, kind, name, content)
    }

    /// Delete the subtree rooted at `node` (all its descendants and their
    /// records included). The document root cannot be deleted. The
    /// operation commits atomically.
    pub fn delete_subtree(&mut self, node: NodeRef) -> StoreResult<()> {
        self.require_writable()?;
        let r = self.delete_subtree_inner(node);
        self.transactional(r)
    }

    fn delete_subtree_inner(&mut self, node: NodeRef) -> StoreResult<()> {
        let rec = self.fetch(node.record)?;
        if rec.parent_record == NONE_U32 && rec.root_pos(node.node).is_some() {
            return Err(StoreError::InvalidUpdate("cannot delete the document root"));
        }
        drop(rec);

        let mut img = self.fetch(node.record)?.to_image();
        let is_root = img.roots.contains(&node.node);

        if is_root && img.roots.len() == 1 {
            // The whole record goes away: unhook our proxy from the parent
            // record, then free this record and every descendant record.
            let (parent_record, parent_local, proxy_pos) =
                (img.parent_record, img.parent_local, img.proxy_pos);
            let mut parent_img = self.fetch(parent_record)?.to_image();
            parent_img.nodes[parent_local as usize]
                .entries
                .remove(proxy_pos as usize);
            sync_entry_positions(&mut parent_img, parent_local as usize);
            self.write_record(parent_record, &parent_img)?;
            self.resync_child_backlinks(parent_record)?;
            self.free_record_tree(node.record)?;
            return Ok(());
        }

        // Drop the subtree inside this record.
        let removed = collect_local_subtree(&img, node.node);
        // Free descendant records referenced from the removed region.
        let mut child_records = Vec::new();
        for &l in &removed {
            for e in &img.nodes[l as usize].entries {
                if let ChildEntry::Proxy(no) = *e {
                    child_records.push(no);
                }
            }
        }
        if is_root {
            let rp = img
                .roots
                .iter()
                .position(|&r| r == node.node)
                .expect("root");
            img.roots.remove(rp);
        } else {
            let p = img.nodes[node.node as usize].parent_local as usize;
            let e = img.nodes[node.node as usize].entry_pos as usize;
            img.nodes[p].entries.remove(e);
            sync_entry_positions(&mut img, p);
        }
        remove_and_renumber(&mut img, &removed);
        self.write_record(node.record, &img)?;
        self.resync_child_backlinks(node.record)?;
        for no in child_records {
            self.free_record_tree(no)?;
        }
        Ok(())
    }

    fn insert_impl(
        &mut self,
        record_no: u32,
        pos: InsertPos,
        kind: NodeKind,
        name: &str,
        content: Option<&str>,
    ) -> StoreResult<NodeRef> {
        let w = node_weight(kind, content.map_or(0, str::len));
        if w > self.record_limit {
            return Err(StoreError::InvalidUpdate(
                "node heavier than the record limit K",
            ));
        }
        let label = self.intern_label(name)?;
        let mut img = self.fetch(record_no)?.to_image();
        let new_local = u16::try_from(img.nodes.len())
            .map_err(|_| StoreError::InvalidUpdate("record has too many nodes"))?;
        img.nodes.push(ImageNode {
            kind,
            label,
            parent_local: NONE_U16,
            entry_pos: NONE_U16,
            content: content.map(Into::into),
            entries: Vec::new(),
        });

        match pos {
            InsertPos::LastChildOf(p) => {
                let e = img.nodes[p as usize].entries.len() as u16;
                img.nodes[p as usize]
                    .entries
                    .push(ChildEntry::Local(new_local));
                img.nodes[new_local as usize].parent_local = p;
                img.nodes[new_local as usize].entry_pos = e;
            }
            InsertPos::BeforeLocal(c) => {
                let p = img.nodes[c as usize].parent_local;
                let e = img.nodes[c as usize].entry_pos as usize;
                img.nodes[p as usize]
                    .entries
                    .insert(e, ChildEntry::Local(new_local));
                img.nodes[new_local as usize].parent_local = p;
                sync_entry_positions(&mut img, p as usize);
            }
            InsertPos::BeforeRoot(rp) => {
                img.roots.insert(rp, new_local);
            }
        }

        // Split until the fragment fits again, tracking where the new node
        // ends up.
        let mut location = NodeRef {
            record: record_no,
            node: new_local,
        };
        while image_weight(&img) > self.record_limit {
            location = self.split_once(record_no, &mut img, location)?;
        }
        self.write_record(record_no, &img)?;
        self.resync_child_backlinks(record_no)?;
        Ok(location)
    }

    /// One split step: evict a subtree (or split the root interval) from
    /// `img` into a fresh record. Returns the tracked node's new location.
    fn split_once(
        &mut self,
        record_no: u32,
        img: &mut RecordImage,
        tracked: NodeRef,
    ) -> StoreResult<NodeRef> {
        let weights = local_subtree_weights(img);

        // KM-style candidate: descend from the heaviest root through
        // heaviest local children until the subtree fits the limit.
        let mut cur: Option<u16> = None;
        let mut best = 0;
        for &r in &img.roots {
            // Roots themselves cannot be evicted; consider their local
            // children as starting points.
            for e in &img.nodes[r as usize].entries {
                if let ChildEntry::Local(c) = *e {
                    if weights[c as usize] > best {
                        best = weights[c as usize];
                        cur = Some(c);
                    }
                }
            }
        }
        if let Some(mut c) = cur {
            while weights[c as usize] > self.record_limit {
                // Too big to move whole: descend into the heaviest local
                // child (exists, because a single node weighs <= K).
                let mut next = None;
                let mut nb = 0;
                for e in &img.nodes[c as usize].entries {
                    if let ChildEntry::Local(cc) = *e {
                        if weights[cc as usize] >= nb {
                            nb = weights[cc as usize];
                            next = Some(cc);
                        }
                    }
                }
                c = next.expect("overweight subtree has local children");
            }
            return self.evict_subtree(record_no, img, c, tracked);
        }

        // No local child anywhere: the fragment is the interval roots
        // themselves. Split the interval: move a suffix of the roots.
        debug_assert!(
            img.roots.len() > 1,
            "a single node never exceeds K (checked on insert)"
        );
        self.split_roots(record_no, img, tracked)
    }

    /// Move the subtree rooted at local node `c` into a fresh record
    /// behind a proxy.
    fn evict_subtree(
        &mut self,
        record_no: u32,
        img: &mut RecordImage,
        c: u16,
        tracked: NodeRef,
    ) -> StoreResult<NodeRef> {
        let moved = collect_local_subtree(img, c);
        let new_no = self.reserve_record();

        // Build the new record image.
        let mut remap = vec![NONE_U16; img.nodes.len()];
        for (i, &l) in moved.iter().enumerate() {
            remap[l as usize] = i as u16;
        }
        let p = img.nodes[c as usize].parent_local;
        let e = img.nodes[c as usize].entry_pos;
        let mut new_nodes: Vec<ImageNode> = Vec::with_capacity(moved.len());
        for &l in &moved {
            let mut n = img.nodes[l as usize].clone();
            if l == c {
                n.parent_local = NONE_U16;
                n.entry_pos = NONE_U16;
            } else {
                n.parent_local = remap[n.parent_local as usize];
            }
            for entry in &mut n.entries {
                if let ChildEntry::Local(ref mut i) = entry {
                    *i = remap[*i as usize];
                }
            }
            new_nodes.push(n);
        }
        let new_img = RecordImage {
            parent_record: record_no,
            parent_local: p, // fixed up after renumbering below
            proxy_pos: e,
            roots: vec![0],
            nodes: new_nodes,
        };

        // Children records inside the moved region now hang off the new
        // record.
        let mut moved_fixes = Vec::new();
        for (ni, n) in new_img.nodes.iter().enumerate() {
            for (pos, entry) in n.entries.iter().enumerate() {
                if let ChildEntry::Proxy(no) = *entry {
                    moved_fixes.push((no, ni as u16, pos as u16));
                }
            }
        }

        // Remove the moved nodes from the old image, replacing the child
        // entry with a proxy.
        img.nodes[p as usize].entries[e as usize] = ChildEntry::Proxy(new_no);
        let parent_fixes = remove_and_renumber(img, &moved);

        // Parent of the evicted fragment may itself have been renumbered.
        let new_parent_local = parent_fixes
            .iter()
            .find(|&&(old, _)| old == p)
            .map(|&(_, new)| new)
            .unwrap_or(p);
        let mut new_img = new_img;
        new_img.parent_local = new_parent_local;

        self.write_record(new_no, &new_img)?;
        // The old image must be on disk before back-link fix-up reads it.
        self.write_record(record_no, img)?;
        for (no, parent_local, proxy_pos) in moved_fixes {
            self.fix_child_header(no, new_no, parent_local, proxy_pos)?;
        }
        self.resync_child_backlinks(record_no)?;

        // Track the location of the node of interest.
        if tracked.record == record_no {
            let r = remap[tracked.node as usize];
            if r != NONE_U16 {
                return Ok(NodeRef {
                    record: new_no,
                    node: r,
                });
            }
            let renumbered = parent_fixes
                .iter()
                .find(|&&(old, _)| old == tracked.node)
                .map(|&(_, new)| new)
                .unwrap_or(tracked.node);
            return Ok(NodeRef {
                record: record_no,
                node: renumbered,
            });
        }
        Ok(tracked)
    }

    /// Split the root interval: move the suffix half of the roots (and
    /// their local subtrees) into a fresh record, inserting its proxy right
    /// after ours in the parent record.
    fn split_roots(
        &mut self,
        record_no: u32,
        img: &mut RecordImage,
        tracked: NodeRef,
    ) -> StoreResult<NodeRef> {
        let mid = img.roots.len() / 2;
        let suffix: Vec<u16> = img.roots.split_off(mid);
        let mut moved: Vec<u16> = Vec::new();
        for &r in &suffix {
            moved.extend(collect_local_subtree(img, r));
        }
        let new_no = self.reserve_record();

        let mut remap = vec![NONE_U16; img.nodes.len()];
        for (i, &l) in moved.iter().enumerate() {
            remap[l as usize] = i as u16;
        }
        let mut new_nodes = Vec::with_capacity(moved.len());
        for &l in &moved {
            let mut n = img.nodes[l as usize].clone();
            if n.parent_local != NONE_U16 {
                n.parent_local = remap[n.parent_local as usize];
            }
            for entry in &mut n.entries {
                if let ChildEntry::Local(ref mut i) = entry {
                    *i = remap[*i as usize];
                }
            }
            new_nodes.push(n);
        }
        let new_img = RecordImage {
            parent_record: img.parent_record,
            parent_local: img.parent_local,
            proxy_pos: img.proxy_pos + 1,
            roots: suffix.iter().map(|&r| remap[r as usize]).collect(),
            nodes: new_nodes,
        };

        let mut moved_fixes = Vec::new();
        for (ni, n) in new_img.nodes.iter().enumerate() {
            for (pos, entry) in n.entries.iter().enumerate() {
                if let ChildEntry::Proxy(no) = *entry {
                    moved_fixes.push((no, ni as u16, pos as u16));
                }
            }
        }

        let parent_fixes = remove_and_renumber(img, &moved);

        // Both halves must be on disk before any back-link resync can read
        // them.
        self.write_record(new_no, &new_img)?;
        self.write_record(record_no, img)?;

        // Insert the new proxy right after ours in the (grand)parent
        // record's entry list; resyncing then fixes both halves' headers.
        let parent_record = img.parent_record;
        let parent_local = img.parent_local;
        let proxy_pos = img.proxy_pos;
        let mut parent_img = self.fetch(parent_record)?.to_image();
        parent_img.nodes[parent_local as usize]
            .entries
            .insert(proxy_pos as usize + 1, ChildEntry::Proxy(new_no));
        sync_entry_positions(&mut parent_img, parent_local as usize);
        self.write_record(parent_record, &parent_img)?;
        self.resync_child_backlinks(parent_record)?;

        for (no, pl, pp) in moved_fixes {
            self.fix_child_header(no, new_no, pl, pp)?;
        }
        self.resync_child_backlinks(record_no)?;

        if tracked.record == record_no {
            let r = remap[tracked.node as usize];
            if r != NONE_U16 {
                return Ok(NodeRef {
                    record: new_no,
                    node: r,
                });
            }
            let renumbered = parent_fixes
                .iter()
                .find(|&&(old, _)| old == tracked.node)
                .map(|&(_, new)| new)
                .unwrap_or(tracked.node);
            return Ok(NodeRef {
                record: record_no,
                node: renumbered,
            });
        }
        Ok(tracked)
    }

    /// Intern a label, growing the persistent label table.
    pub(crate) fn intern_label(&mut self, name: &str) -> StoreResult<u16> {
        if let Some(id) = self.label_id(name) {
            return Ok(id);
        }
        let id = u16::try_from(self.labels.len())
            .map_err(|_| StoreError::InvalidUpdate("label table full"))?;
        self.labels.push(name.into());
        self.label_ids.insert(name.into(), id);
        Ok(id)
    }

    /// Reserve a fresh record number.
    pub(crate) fn reserve_record(&mut self) -> u32 {
        let no = self.directory.len() as u32;
        self.directory.push(RecordLoc::Free);
        no
    }

    /// Re-encode and re-place a record, invalidating caches.
    pub(crate) fn write_record(&mut self, no: u32, img: &RecordImage) -> StoreResult<()> {
        // Stamp the record with its directory slot and the epoch of the
        // in-flight commit, so fsck repair can resolve duplicate claims
        // by recency.
        let bytes = record::encode(img, no, self.epoch + 1);
        // Release the old location.
        match self.directory[no as usize] {
            RecordLoc::InPage { page, slot } => {
                self.pool.with_page(page, true, |buf| {
                    SlottedPage::new(buf).delete(slot);
                })?;
            }
            RecordLoc::Overflow { .. } | RecordLoc::Free => {
                // Overflow pages are orphaned (no free-space reuse for
                // chains; acceptable for a bulkload-dominated store).
            }
        }
        let loc = if bytes.len() > MAX_IN_PAGE {
            let first_page = write_overflow_chain(&mut self.pool, &bytes)?;
            RecordLoc::Overflow {
                first_page,
                len: bytes.len() as u32,
            }
        } else {
            // Try the record's previous page, then the store's open page
            // hint, then a fresh page.
            let prev_page = match self.directory[no as usize] {
                RecordLoc::InPage { page, .. } => Some(page),
                _ => None,
            };
            let mut placed = None;
            for candidate in [prev_page, self.open_page].into_iter().flatten() {
                placed = self.pool.with_page(candidate, true, |buf| {
                    SlottedPage::new(buf)
                        .insert(&bytes)
                        .map(|slot| (candidate, slot))
                })?;
                if placed.is_some() {
                    break;
                }
            }
            let (page, slot) = match placed {
                Some(p) => p,
                None => {
                    let page = self.pool.allocate()?;
                    let slot = self.pool.with_page(page, true, |buf| {
                        SlottedPage::format(buf)
                            .insert(&bytes)
                            .expect("fresh page fits any in-page record")
                    })?;
                    self.open_page = Some(page);
                    (page, slot)
                }
            };
            RecordLoc::InPage { page, slot }
        };
        self.directory[no as usize] = loc;
        self.invalidate(no);
        Ok(())
    }

    pub(crate) fn invalidate(&mut self, no: u32) {
        self.cache.remove(no);
        if self.last_fetched == no {
            self.last_fetched = NONE_U32;
            self.hot = None;
        }
    }

    /// Update a child record's back-link header.
    fn fix_child_header(
        &mut self,
        no: u32,
        parent_record: u32,
        parent_local: u16,
        proxy_pos: u16,
    ) -> StoreResult<()> {
        let mut img = self.fetch(no)?.to_image();
        img.parent_record = parent_record;
        img.parent_local = parent_local;
        img.proxy_pos = proxy_pos;
        self.write_record(no, &img)
    }

    /// Bring the back-link headers (`parent_record`, `parent_local`,
    /// `proxy_pos`) of every child record of `record_no` in line with the
    /// record's current (already written) state. Robust against any
    /// combination of renumbering and entry-list surgery; children whose
    /// links are already correct are not rewritten.
    fn resync_child_backlinks(&mut self, record_no: u32) -> StoreResult<()> {
        let rec = self.fetch(record_no)?;
        let mut updates = Vec::new();
        for (li, n) in rec.nodes.iter().enumerate() {
            for (pos, e) in rec.entries(n).iter().enumerate() {
                if let ChildEntry::Proxy(no) = *e {
                    updates.push((no, li as u16, pos as u16));
                }
            }
        }
        drop(rec);
        for (no, parent_local, proxy_pos) in updates {
            let mut img = self.fetch(no)?.to_image();
            if img.parent_record == record_no
                && (img.parent_local != parent_local || img.proxy_pos != proxy_pos)
            {
                img.parent_local = parent_local;
                img.proxy_pos = proxy_pos;
                self.write_record(no, &img)?;
            }
        }
        Ok(())
    }

    /// Free a record and, recursively, every record its fragment links to.
    fn free_record_tree(&mut self, no: u32) -> StoreResult<()> {
        let mut stack = vec![no];
        while let Some(no) = stack.pop() {
            let rec = self.fetch(no)?;
            for n in &rec.nodes {
                for e in rec.entries(n) {
                    if let ChildEntry::Proxy(child) = *e {
                        stack.push(child);
                    }
                }
            }
            drop(rec);
            if let RecordLoc::InPage { page, slot } = self.directory[no as usize] {
                self.pool.with_page(page, true, |buf| {
                    SlottedPage::new(buf).delete(slot);
                })?;
            }
            self.directory[no as usize] = RecordLoc::Free;
            self.invalidate(no);
        }
        Ok(())
    }
}

impl XmlStore {
    /// Verify that every live record's fragment respects the weight limit
    /// `K` (test/diagnostic helper; the update path maintains this
    /// invariant by splitting).
    pub fn check_record_weights(&mut self) -> StoreResult<()> {
        for no in 0..self.directory.len() as u32 {
            if matches!(self.directory[no as usize], RecordLoc::Free) {
                continue;
            }
            let rec = self.fetch(no)?;
            let w: Weight = rec
                .nodes
                .iter()
                .map(|n| node_weight(n.kind, rec.content(n).map_or(0, str::len)))
                .sum();
            if w > self.record_limit {
                return Err(StoreError::InvalidUpdate("record exceeds the weight limit"));
            }
        }
        Ok(())
    }

    /// Full structural validation of the record graph, used by the crash
    /// harness after every recovery:
    ///
    /// * every record reachable from the root via proxies, exactly once;
    /// * every proxy's target carries a matching back-link
    ///   (`parent_record`, `parent_local`, `proxy_pos`);
    /// * local `parent_local` / `entry_pos` agree with the entry lists;
    /// * fragment roots have no local parent, and the root list is
    ///   non-empty;
    /// * no live directory entry is unreachable (leaked);
    /// * every fragment respects the weight limit `K`.
    pub fn check_consistency(&mut self) -> StoreResult<()> {
        let n = self.directory.len();
        let mut seen = vec![false; n];
        let root_no = self.root_record;
        {
            let rec = self.fetch(root_no)?;
            if rec.parent_record != NONE_U32 {
                return Err(StoreError::corrupt("root record has a parent back-link"));
            }
        }
        seen[root_no as usize] = true;
        let mut stack = vec![root_no];
        while let Some(no) = stack.pop() {
            let rec = self.fetch(no)?;
            if rec.roots.is_empty() {
                return Err(StoreError::corrupt("record has no fragment roots"));
            }
            for &r in &rec.roots {
                if rec.nodes[r as usize].parent_local != NONE_U16 {
                    return Err(StoreError::corrupt("fragment root has a local parent"));
                }
            }
            let mut proxies = Vec::new();
            for (li, node) in rec.nodes.iter().enumerate() {
                for (pos, e) in rec.entries(node).iter().enumerate() {
                    match *e {
                        ChildEntry::Local(c) => {
                            let child = &rec.nodes[c as usize];
                            if child.parent_local != li as u16 || child.entry_pos != pos as u16 {
                                return Err(StoreError::corrupt(
                                    "local child parent/entry position mismatch",
                                ));
                            }
                        }
                        ChildEntry::Proxy(child_no) => {
                            proxies.push((child_no, li as u16, pos as u16));
                        }
                    }
                }
            }
            drop(rec);
            for (child_no, li, pos) in proxies {
                let idx = child_no as usize;
                if idx >= n || matches!(self.directory[idx], RecordLoc::Free) {
                    return Err(StoreError::corrupt("proxy points at a free record"));
                }
                if seen[idx] {
                    return Err(StoreError::corrupt("record reachable via two proxies"));
                }
                seen[idx] = true;
                let child = self.fetch(child_no)?;
                if child.parent_record != no || child.parent_local != li || child.proxy_pos != pos {
                    return Err(StoreError::corrupt("child back-link does not match proxy"));
                }
                drop(child);
                stack.push(child_no);
            }
        }
        for (no, loc) in self.directory.iter().enumerate() {
            if !matches!(loc, RecordLoc::Free) && !seen[no] {
                return Err(StoreError::corrupt("live record unreachable from root"));
            }
        }
        self.check_record_weights()
    }
}

/// Total slot weight of a record image.
fn image_weight(img: &RecordImage) -> Weight {
    img.nodes
        .iter()
        .map(|n| node_weight(n.kind, n.content.as_deref().map_or(0, str::len)))
        .sum()
}

/// Per-node weight of the node plus its *local* descendants.
fn local_subtree_weights(img: &RecordImage) -> Vec<Weight> {
    let n = img.nodes.len();
    let mut w: Vec<Weight> = img
        .nodes
        .iter()
        .map(|n| node_weight(n.kind, n.content.as_deref().map_or(0, str::len)))
        .collect();
    // Parents precede children (preorder numbering is maintained by every
    // mutation path), so a reverse scan accumulates bottom-up.
    for i in (0..n).rev() {
        for e in &img.nodes[i].entries {
            if let ChildEntry::Local(c) = *e {
                w[i] += w[c as usize];
            }
        }
    }
    w
}

/// Local indices of the subtree rooted at `root` (preorder, `root` first).
fn collect_local_subtree(img: &RecordImage, root: u16) -> Vec<u16> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(l) = stack.pop() {
        out.push(l);
        for e in img.nodes[l as usize].entries.iter().rev() {
            if let ChildEntry::Local(c) = *e {
                stack.push(c);
            }
        }
    }
    out
}

/// Recompute the `entry_pos` of every local child of `p` and return
/// `(child_record, new_proxy_pos)` fixes for the proxies.
fn sync_entry_positions(img: &mut RecordImage, p: usize) -> Vec<(u32, u16)> {
    let entries = img.nodes[p].entries.clone();
    let mut fixes = Vec::new();
    for (pos, e) in entries.iter().enumerate() {
        match *e {
            ChildEntry::Local(c) => img.nodes[c as usize].entry_pos = pos as u16,
            ChildEntry::Proxy(no) => fixes.push((no, pos as u16)),
        }
    }
    fixes
}

/// Remove `removed` locals from the image and renumber the rest
/// (order-preserving, so the parent-before-child invariant survives).
/// Returns `(old_local, new_local)` pairs for nodes whose index changed.
fn remove_and_renumber(img: &mut RecordImage, removed: &[u16]) -> Vec<(u16, u16)> {
    let n = img.nodes.len();
    let mut drop_mark = vec![false; n];
    for &l in removed {
        drop_mark[l as usize] = true;
    }
    let mut remap = vec![NONE_U16; n];
    let mut kept: Vec<ImageNode> = Vec::with_capacity(n - removed.len());
    let mut fixes = Vec::new();
    for (i, mark) in drop_mark.iter().enumerate() {
        if !mark {
            let new = kept.len() as u16;
            remap[i] = new;
            if new != i as u16 {
                fixes.push((i as u16, new));
            }
            kept.push(img.nodes[i].clone());
        }
    }
    for node in &mut kept {
        if node.parent_local != NONE_U16 {
            node.parent_local = remap[node.parent_local as usize];
        }
        for e in &mut node.entries {
            if let ChildEntry::Local(ref mut c) = e {
                debug_assert_ne!(remap[*c as usize], NONE_U16, "dangling local child");
                *c = remap[*c as usize];
            }
        }
    }
    for r in &mut img.roots {
        *r = remap[*r as usize];
    }
    img.nodes = kept;
    fixes
}

impl XmlStore {
    /// Rewrite all live records into a fresh backend, reclaiming the space
    /// of deleted records, orphaned overflow chains and page fragmentation
    /// accumulated by updates. Record numbers are preserved (proxies keep
    /// working); the compacted store is returned with its catalog written.
    pub fn compact(
        &mut self,
        backend: Box<dyn crate::pager::Pager>,
        config: crate::store::StoreConfig,
    ) -> StoreResult<XmlStore> {
        use crate::pager::{BufferPool, ChecksummingPager};

        // The fresh backend is always written in the current (checksummed)
        // format — compact() doubles as the format-2 → format-3 migration.
        let backend: Box<dyn crate::pager::Pager> = Box::new(ChecksummingPager::new(backend));
        let mut pool = BufferPool::new(backend, config.buffer_pages);
        // Fresh backend, no committed state: dirty pages may be streamed
        // out by eviction, so migration never needs whole-store residency
        // (the source store's pool pages in and out independently).
        pool.set_writeback_floor(0);
        let header_slot0 = pool.allocate()?;
        let header_slot1 = pool.allocate()?;
        debug_assert_eq!((header_slot0, header_slot1), (0, 1));

        let mut directory = Vec::with_capacity(self.directory.len());
        let mut open_page: Option<u32> = None;
        for no in 0..self.directory.len() as u32 {
            if matches!(self.directory[no as usize], RecordLoc::Free) {
                directory.push(RecordLoc::Free);
                continue;
            }
            let bytes = record::encode(&self.fetch(no)?.to_image(), no, 1);
            if bytes.len() > MAX_IN_PAGE {
                let first_page = write_overflow_chain(&mut pool, &bytes)?;
                directory.push(RecordLoc::Overflow {
                    first_page,
                    len: bytes.len() as u32,
                });
                continue;
            }
            let placed = match open_page {
                Some(page) => pool.with_page(page, true, |buf| {
                    SlottedPage::new(buf)
                        .insert(&bytes)
                        .map(|slot| (page, slot))
                })?,
                None => None,
            };
            let (page, slot) = match placed {
                Some(p) => p,
                None => {
                    let page = pool.allocate()?;
                    let slot = pool.with_page(page, true, |buf| {
                        SlottedPage::format(buf)
                            .insert(&bytes)
                            .expect("fresh page fits any in-page record")
                    })?;
                    open_page = Some(page);
                    (page, slot)
                }
            };
            directory.push(RecordLoc::InPage { page, slot });
        }

        // Initial commit, as in bulkload: no pre-state in the fresh
        // backend, so the catalog and header are written without a journal.
        let quarantined: Vec<u32> = self.quarantined.iter().copied().collect();
        let catalog_bytes = crate::catalog::encode_catalog(
            &directory,
            &self.labels,
            &quarantined,
            self.root_record,
            self.record_limit,
            1,
        );
        let catalog_first_page = pool.append_chunked(&catalog_bytes, PageClass::Catalog)?;
        let header = crate::catalog::encode_header(&crate::catalog::Header {
            epoch: 1,
            root_record: self.root_record,
            catalog_first_page,
            catalog_len: catalog_bytes.len() as u64,
            record_limit: self.record_limit,
            journal_first_page: 0,
            journal_len: 0,
        });
        pool.with_page(header_slot1, true, |buf| buf.copy_from_slice(&header))?;
        pool.flush()?;
        pool.set_writeback_floor(pool.page_count());

        Ok(XmlStore {
            pool,
            directory,
            labels: self.labels.clone(),
            label_ids: self.label_ids.clone(),
            root_record: self.root_record,
            cache: crate::store::RecordCache::new(config.record_cache),
            nav: crate::store::NavStats::default(),
            last_fetched: crate::record::NONE_U32,
            record_limit: self.record_limit,
            open_page: None,
            hot: None,
            epoch: 1,
            committed_catalog: (catalog_first_page, catalog_bytes.len() as u64),
            committed_catalog_bytes: catalog_bytes,
            format: 3,
            mode: crate::store::OpenMode::Strict,
            quarantined: self.quarantined.clone(),
            defer_checkpoint: false,
            pending_checkpoint: false,
            committed_overlay: std::collections::HashMap::new(),
            last_commit_journal: (0, 0),
            batch: None,
            readahead_records: config.readahead_records,
        })
    }
}
